"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("circuits", "stats", "enumerate", "atpg", "enrich", "tables"):
            args = parser.parse_args(
                [command] + ([] if command in ("circuits", "tables") else ["s27"])
            )
            assert args.command == command


class TestCommands:
    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out and "s1423_proxy" in out

    def test_stats_registry(self, capsys):
        assert main(["stats", "s27"]) == 0
        assert "10 gates" in capsys.readouterr().out

    def test_stats_bench_file(self, tmp_path, capsys):
        bench = tmp_path / "mini.bench"
        bench.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert main(["stats", str(bench)]) == 0
        assert "1 PIs" in capsys.readouterr().out

    def test_enumerate(self, capsys):
        code = main(
            ["enumerate", "s27", "--max-faults", "100", "--p0-min-faults", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "N_p(L_i)" in out and "|P0|" in out

    def test_atpg(self, capsys):
        code = main(
            [
                "atpg",
                "s27",
                "--heuristic",
                "values",
                "--max-faults",
                "100",
                "--p0-min-faults",
                "20",
                "--show-tests",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tests" in out and "->" in out

    def test_enrich(self, capsys):
        code = main(
            ["enrich", "s27", "--max-faults", "100", "--p0-min-faults", "20"]
        )
        assert code == 0
        assert "P0" in capsys.readouterr().out

    def test_stats_flag_reports_engine_counters(self, capsys):
        code = main(
            [
                "--stats",
                "atpg",
                "s27",
                "--max-faults",
                "100",
                "--p0-min-faults",
                "20",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "tests" in captured.out
        assert "engine stats" in captured.err
        assert "enumerate.miss" in captured.err
        assert "justify.calls" in captured.err

    def test_stats_flag_off_by_default(self, capsys):
        assert main(["stats", "s27"]) == 0
        assert "engine stats" not in capsys.readouterr().err

    def test_tables_jobs_flag(self, tmp_path, capsys):
        """--jobs plumbs through to run_all; a --quick single-circuit
        sweep short-circuits to the in-process path at any job count and
        must match --jobs 1 on every deterministic field."""
        args = [
            "tables",
            "--scale",
            "smoke",
            "--quick",
            "--max-faults",
            "120",
            "--p0-min-faults",
            "30",
        ]
        outputs = {}
        for jobs in ("1", "2"):
            out_path = tmp_path / f"jobs{jobs}.json"
            code = main(args + ["--jobs", jobs, "--out", str(out_path)])
            assert code == 0
            capsys.readouterr()
            payload = json.loads(out_path.read_text())
            for entry in payload["basic"].values():
                for outcome in entry["outcomes"].values():
                    outcome["runtime_seconds"] = 0.0
            for row in payload["table6"]:
                row["runtime_seconds"] = 0.0
            outputs[jobs] = payload
        assert outputs["1"] == outputs["2"]

    def test_tables_rejects_bad_jobs(self, capsys):
        """--jobs 0 is a clean argparse usage error (exit code 2), not a
        raw ValueError traceback."""
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_tables_rejects_non_integer_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--jobs", "many"])
        assert excinfo.value.code == 2

    def test_tables_rejects_negative_retries(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--max-retries", "-1"])
        assert excinfo.value.code == 2

    def test_tables_rejects_nonpositive_timeout(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--timeout", "0"])
        assert excinfo.value.code == 2

    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--resume"])
        assert excinfo.value.code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_tables_checkpoint_resume_identity(self, tmp_path, capsys):
        """A checkpointed --quick run rerun with --resume recomputes
        nothing and produces identical deterministic output."""
        ckpt = tmp_path / "ckpt"
        base = [
            "tables",
            "--scale",
            "smoke",
            "--quick",
            "--max-faults",
            "120",
            "--p0-min-faults",
            "30",
            "--checkpoint-dir",
            str(ckpt),
        ]
        outputs = {}
        for label, extra in (("fresh", []), ("resumed", ["--resume"])):
            out_path = tmp_path / f"{label}.json"
            code = main(base + extra + ["--out", str(out_path)])
            assert code == 0
            capsys.readouterr()
            payload = json.loads(out_path.read_text())
            for entry in payload["basic"].values():
                for outcome in entry["outcomes"].values():
                    outcome["runtime_seconds"] = 0.0
            for row in payload["table6"]:
                row["runtime_seconds"] = 0.0
            outputs[label] = payload
        assert outputs["fresh"] == outputs["resumed"]
        assert ckpt.exists() and any(ckpt.glob("*.json"))

    def test_tables_failure_reports_aggregated_error(
        self, tmp_path, monkeypatch, capsys
    ):
        # s641_proxy is the --quick sweep's (only) circuit
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s641_proxy")
        code = main(
            [
                "tables",
                "--scale",
                "smoke",
                "--quick",
                "--max-faults",
                "120",
                "--p0-min-faults",
                "30",
                "--max-retries",
                "0",
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "s641_proxy" in err
        assert "--resume" in err

    def test_tables_journal_does_not_perturb_output(self, tmp_path, capsys):
        """The journaled run's results and rendered tables are identical
        to the unjournaled run's; the journal gains exactly one valid
        entry carrying the run's config and per-job records."""
        from repro.journal import read_journal

        journal = tmp_path / "journal.jsonl"
        base = [
            "tables",
            "--scale",
            "smoke",
            "--quick",
            "--max-faults",
            "120",
            "--p0-min-faults",
            "30",
        ]
        outputs = {}
        for label, extra in (
            ("plain", []),
            ("journaled", ["--journal", str(journal)]),
        ):
            out_path = tmp_path / f"{label}.json"
            assert main(base + extra + ["--out", str(out_path)]) == 0
            capsys.readouterr()
            # Zero the measured wall clocks (the only nondeterministic
            # fields); everything else must be byte-identical.
            payload = json.loads(out_path.read_text())
            for entry in payload["basic"].values():
                for outcome in entry["outcomes"].values():
                    outcome["runtime_seconds"] = 0.0
            for row in payload["table6"]:
                row["runtime_seconds"] = 0.0
            outputs[label] = payload
        assert outputs["plain"] == outputs["journaled"]
        read = read_journal(journal)
        assert read.problems == []
        [entry] = read.entries
        assert entry["kind"] == "tables"
        assert entry["config"]["scale"] == "smoke"
        assert entry["config"]["max_faults"] == 120
        assert entry["metrics"]["tables.wall_seconds"] > 0
        assert any(
            name.endswith(".enrich.seconds") for name in entry["metrics"]
        )
        assert entry["jobs"] and all("wall_seconds" in job for job in entry["jobs"])
        assert "enumerate" in entry["caches"]

    def test_tables_from_json_skips_journal(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        base = [
            "tables",
            "--scale",
            "smoke",
            "--quick",
            "--max-faults",
            "120",
            "--p0-min-faults",
            "30",
        ]
        assert main(base + ["--out", str(out_path)]) == 0
        capsys.readouterr()
        journal = tmp_path / "journal.jsonl"
        code = main(
            ["tables", "--from-json", str(out_path), "--journal", str(journal)]
        )
        assert code == 0
        # Cached renders measured nothing; journaling one would poison
        # the trajectory with zero-cost entries.
        assert not journal.exists()
        assert "nothing was measured" in capsys.readouterr().err

    def test_tables_quick_smoke_with_cache(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        code = main(
            [
                "tables",
                "--scale",
                "smoke",
                "--quick",
                "--max-faults",
                "120",
                "--p0-min-faults",
                "30",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        first = capsys.readouterr().out
        assert "Table 6" in first
        payload = json.loads(out_path.read_text())
        assert payload["scale"] == "smoke"
        # Re-render from the cache without recomputation.
        code = main(["tables", "--from-json", str(out_path)])
        assert code == 0
        second = capsys.readouterr().out
        assert second == first


class TestCacheCommands:
    @pytest.fixture(autouse=True)
    def clean_envflags(self, monkeypatch):
        from repro import envflags

        monkeypatch.delenv(envflags.ARTIFACT_CACHE_ENV, raising=False)
        envflags.reset()
        yield
        monkeypatch.undo()
        envflags.reset()

    @staticmethod
    def seed(tmp_path, capsys):
        """One cached ``enumerate`` run; returns (cache dir, stdout)."""
        cache = tmp_path / "cache"
        code = main(
            [
                "enumerate",
                "s27",
                "--max-faults",
                "100",
                "--p0-min-faults",
                "20",
                "--artifact-cache",
                str(cache),
            ]
        )
        assert code == 0
        return cache, capsys.readouterr().out

    def test_cache_requires_directory(self, capsys):
        assert main(["cache", "ls"]) == 2
        assert "no artifact cache directory" in capsys.readouterr().err

    def test_flag_seeds_store_and_ls_lists_it(self, tmp_path, capsys):
        cache, _ = self.seed(tmp_path, capsys)
        assert main(["cache", "ls", "--artifact-cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "enumeration" in out and "target_sets" in out
        assert "2 entries" in out

    def test_warm_run_hits_with_identical_output(self, tmp_path, capsys):
        cache, cold_out = self.seed(tmp_path, capsys)
        code = main(
            [
                "--stats",
                "enumerate",
                "s27",
                "--max-faults",
                "100",
                "--p0-min-faults",
                "20",
                "--artifact-cache",
                str(cache),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == cold_out
        assert "artifact.hit" in captured.err
        assert "artifact.miss" not in captured.err

    def test_cached_output_matches_uncached(self, tmp_path, capsys):
        plain_args = ["enumerate", "s27", "--max-faults", "100", "--p0-min-faults", "20"]
        assert main(plain_args) == 0
        uncached = capsys.readouterr().out
        _, cold = self.seed(tmp_path, capsys)
        assert cold == uncached

    def test_env_var_enables_cache(self, tmp_path, capsys, monkeypatch):
        from repro import envflags

        cache = tmp_path / "cache"
        monkeypatch.setenv(envflags.ARTIFACT_CACHE_ENV, str(cache))
        envflags.reset()
        code = main(
            ["enumerate", "s27", "--max-faults", "100", "--p0-min-faults", "20"]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0  # env names the store, no flag needed
        assert "2 entries" in capsys.readouterr().out

    def test_verify_clean_then_corrupt(self, tmp_path, capsys):
        cache, _ = self.seed(tmp_path, capsys)
        assert main(["cache", "verify", "--artifact-cache", str(cache)]) == 0
        assert "2 intact, 0 corrupt" in capsys.readouterr().out
        victim = sorted(cache.glob("*.npz"))[0]
        victim.write_bytes(b"garbage")
        assert main(["cache", "verify", "--artifact-cache", str(cache)]) == 1
        out = capsys.readouterr().out
        assert f"corrupt: {victim.name}" in out
        assert "1 intact, 1 corrupt" in out

    def test_verify_repair_heals_the_store(self, tmp_path, capsys):
        cache, _ = self.seed(tmp_path, capsys)
        victim = sorted(cache.glob("*.npz"))[0]
        victim.write_bytes(b"garbage")
        code = main(
            ["cache", "verify", "--repair", "--artifact-cache", str(cache)]
        )
        assert code == 0  # repair mode reports, it does not fail the build
        out = capsys.readouterr().out
        assert "1 intact, 1 corrupt" in out
        assert "repair: quarantined 1 entry" in out
        assert not victim.exists()
        assert not (cache / "quarantine").is_dir() or not list(
            (cache / "quarantine").iterdir()
        )
        # A second verify scan is clean.
        assert main(["cache", "verify", "--artifact-cache", str(cache)]) == 0
        assert "1 intact, 0 corrupt" in capsys.readouterr().out

    def test_gc_evicts_to_budget(self, tmp_path, capsys):
        cache, _ = self.seed(tmp_path, capsys)
        code = main(
            ["cache", "gc", "--max-bytes", "0", "--artifact-cache", str(cache)]
        )
        assert code == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert main(["cache", "ls", "--artifact-cache", str(cache)]) == 0
        assert "0 entries" in capsys.readouterr().out


class TestJournalCommands:
    @staticmethod
    def write_journal(path, values, metric="tables_s27"):
        from repro.journal import append_entry

        for i, value in enumerate(values):
            append_entry(
                path,
                {
                    "v": 1,
                    "kind": "bench",
                    "ts": f"2026-08-{i + 1:02d}T00:00:00+00:00",
                    "sha": f"{i:040x}",
                    "machine": {"python": "3.12", "platform": "test"},
                    "metrics": {metric: value},
                },
            )
        return path

    def test_validate_missing_file(self, tmp_path, capsys):
        code = main(["journal", "validate", "--journal", str(tmp_path / "no.jsonl")])
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_validate_clean_journal(self, tmp_path, capsys):
        journal = self.write_journal(tmp_path / "j.jsonl", [0.5, 0.4])
        assert main(["journal", "validate", "--journal", str(journal)]) == 0
        assert "2 valid entries, 0 problem line(s)" in capsys.readouterr().out

    def test_validate_flags_corrupt_line(self, tmp_path, capsys):
        journal = self.write_journal(tmp_path / "j.jsonl", [0.5])
        with journal.open("a") as handle:
            handle.write("{broken\n")
        assert main(["journal", "validate", "--journal", str(journal)]) == 1
        captured = capsys.readouterr()
        assert "1 problem line(s)" in captured.out
        assert "line 2" in captured.err

    def test_report_renders_and_writes_out(self, tmp_path, capsys):
        journal = self.write_journal(tmp_path / "j.jsonl", [0.5, 0.4])
        out = tmp_path / "report.txt"
        code = main(
            ["journal", "report", "--journal", str(journal), "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "kind bench: 2 entries" in text
        assert "tables_s27" in text
        assert out.read_text().strip() in text

    def test_gate_missing_file(self, tmp_path, capsys):
        assert main(["journal", "gate", "--journal", str(tmp_path / "no.jsonl")]) == 1
        assert "not found" in capsys.readouterr().err

    def test_gate_passes_stable_trajectory(self, tmp_path, capsys):
        journal = self.write_journal(tmp_path / "j.jsonl", [0.5, 0.52, 0.48])
        assert main(["journal", "gate", "--journal", str(journal)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_gate_fails_on_2x_slowdown(self, tmp_path, capsys):
        """The CI acceptance scenario: a synthetic 2x slowdown appended
        to a healthy trajectory must flip the gate to exit 1."""
        journal = self.write_journal(tmp_path / "j.jsonl", [0.5, 0.52, 1.04])
        assert main(["journal", "gate", "--journal", str(journal)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "1 trajectory regression(s)" in captured.err

    def test_gate_all_replays_whole_trajectory(self, tmp_path, capsys):
        # Slow entry in the middle, recovered since: only --all sees it.
        journal = self.write_journal(tmp_path / "j.jsonl", [0.5, 2.0, 0.5, 0.5])
        assert main(["journal", "gate", "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["journal", "gate", "--journal", str(journal), "--all"]) == 1

    def test_gate_tolerance_flag(self, tmp_path, capsys):
        journal = self.write_journal(tmp_path / "j.jsonl", [1.0, 1.4])
        assert main(["journal", "gate", "--journal", str(journal)]) == 1
        capsys.readouterr()
        code = main(
            ["journal", "gate", "--journal", str(journal), "--tolerance", "0.5"]
        )
        assert code == 0


class TestServiceCommands:
    """The serve/submit/status/cancel/logs verbs over a queue directory."""

    @staticmethod
    def submit(tmp_path, capsys, *extra):
        queue = tmp_path / "queue"
        code = main(
            [
                "submit",
                "--queue",
                str(queue),
                "--scale",
                "smoke",
                "--quick",
                "--max-faults",
                "60",
                "--p0-min-faults",
                "15",
                "--jobs",
                "1",
                *extra,
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        job_id = captured.out.strip().splitlines()[0]
        assert job_id.startswith("job-")
        return queue, job_id

    def test_submit_requires_queue(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["submit"])
        assert excinfo.value.code == 2

    def test_submit_enqueues_and_prints_job_id(self, tmp_path, capsys):
        queue, job_id = self.submit(tmp_path, capsys)
        assert (queue / "pending" / f"{job_id}.json").exists()
        stored = json.loads(
            (queue / "pending" / f"{job_id}.json").read_text()
        )
        assert stored["params"]["scale"] == "smoke"
        assert stored["params"]["quick"] is True
        assert stored["params"]["max_faults"] == 60
        assert stored["params"]["jobs"] == 1

    def test_submit_journals_queued_event(self, tmp_path, capsys):
        from repro.journal import read_journal

        queue, job_id = self.submit(tmp_path, capsys)
        read = read_journal(queue / "journal.jsonl")
        assert read.problems == []
        assert [(e["event"], e["job"]) for e in read.entries] == [
            ("queued", job_id)
        ]

    def test_submit_retry_flag_becomes_policy_spec(self, tmp_path, capsys):
        queue, job_id = self.submit(tmp_path, capsys, "--max-retries", "2")
        stored = json.loads(
            (queue / "pending" / f"{job_id}.json").read_text()
        )
        assert stored["params"]["retry"]["max_retries"] == 2

    def test_status_lists_daemon_and_jobs(self, tmp_path, capsys):
        queue, job_id = self.submit(tmp_path, capsys)
        assert main(["status", "--queue", str(queue)]) == 0
        out = capsys.readouterr().out
        assert "daemon: not running" in out
        assert f"{job_id}  queued" in out

    def test_status_single_job_and_unknown(self, tmp_path, capsys):
        queue, job_id = self.submit(tmp_path, capsys)
        assert main(["status", "--queue", str(queue), job_id]) == 0
        assert "queued" in capsys.readouterr().out
        assert main(["status", "--queue", str(queue), "job-nope"]) == 1
        assert "unknown job" in capsys.readouterr().err

    def test_cancel_pending_then_refuses_terminal(self, tmp_path, capsys):
        queue, job_id = self.submit(tmp_path, capsys)
        assert main(["cancel", "--queue", str(queue), job_id]) == 0
        assert "canceled" in capsys.readouterr().out
        # Now in canceled/: a second cancel reports the state, exit 1.
        assert main(["cancel", "--queue", str(queue), job_id]) == 1
        assert "is canceled" in capsys.readouterr().err

    def test_cancel_unknown_job(self, tmp_path, capsys):
        queue, _ = self.submit(tmp_path, capsys)
        assert main(["cancel", "--queue", str(queue), "job-nope"]) == 1
        assert "unknown job" in capsys.readouterr().err

    def test_logs_missing_then_present(self, tmp_path, capsys):
        queue, job_id = self.submit(tmp_path, capsys)
        assert main(["logs", "--queue", str(queue), job_id]) == 1
        assert "no log" in capsys.readouterr().err
        log = queue / "logs" / f"{job_id}.log"
        log.parent.mkdir(parents=True, exist_ok=True)
        log.write_text("hello from the daemon\n")
        assert main(["logs", "--queue", str(queue), job_id]) == 0
        assert "hello from the daemon" in capsys.readouterr().out

    def test_serve_drain_runs_submitted_job_to_done(self, tmp_path, capsys):
        """The whole loop through the CLI: submit -> serve --drain ->
        status shows done and the outputs exist."""
        queue, job_id = self.submit(tmp_path, capsys)
        assert main(["serve", "--queue", str(queue), "--drain"]) == 0
        capsys.readouterr()
        assert main(["status", "--queue", str(queue), job_id]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert (queue / "out" / job_id / "results.json").exists()
        assert (queue / "out" / job_id / "tables.txt").exists()
        # The per-job log is now served by `repro logs`.
        assert main(["logs", "--queue", str(queue), job_id]) == 0
        assert "done" in capsys.readouterr().out

    def test_serve_refuses_busy_queue(self, tmp_path, capsys):
        from repro.service import JobQueue, ServiceWAL

        queue = JobQueue(tmp_path / "queue")
        queue.ensure_layout()
        ServiceWAL(queue.wal_path).write("running", pid=1)
        code = main(["serve", "--queue", str(queue.root), "--drain"])
        assert code == 2
        assert "owned by live daemon" in capsys.readouterr().err

    def test_serve_rejects_bad_thresholds(self):
        for flag in ("--heartbeat-interval", "--stale-after", "--poll-interval"):
            with pytest.raises(SystemExit) as excinfo:
                main(["serve", "--queue", "q", flag, "0"])
            assert excinfo.value.code == 2
