"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("circuits", "stats", "enumerate", "atpg", "enrich", "tables"):
            args = parser.parse_args(
                [command] + ([] if command in ("circuits", "tables") else ["s27"])
            )
            assert args.command == command


class TestCommands:
    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out and "s1423_proxy" in out

    def test_stats_registry(self, capsys):
        assert main(["stats", "s27"]) == 0
        assert "10 gates" in capsys.readouterr().out

    def test_stats_bench_file(self, tmp_path, capsys):
        bench = tmp_path / "mini.bench"
        bench.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert main(["stats", str(bench)]) == 0
        assert "1 PIs" in capsys.readouterr().out

    def test_enumerate(self, capsys):
        code = main(
            ["enumerate", "s27", "--max-faults", "100", "--p0-min-faults", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "N_p(L_i)" in out and "|P0|" in out

    def test_atpg(self, capsys):
        code = main(
            [
                "atpg",
                "s27",
                "--heuristic",
                "values",
                "--max-faults",
                "100",
                "--p0-min-faults",
                "20",
                "--show-tests",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tests" in out and "->" in out

    def test_enrich(self, capsys):
        code = main(
            ["enrich", "s27", "--max-faults", "100", "--p0-min-faults", "20"]
        )
        assert code == 0
        assert "P0" in capsys.readouterr().out

    def test_stats_flag_reports_engine_counters(self, capsys):
        code = main(
            [
                "--stats",
                "atpg",
                "s27",
                "--max-faults",
                "100",
                "--p0-min-faults",
                "20",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "tests" in captured.out
        assert "engine stats" in captured.err
        assert "enumerate.miss" in captured.err
        assert "justify.calls" in captured.err

    def test_stats_flag_off_by_default(self, capsys):
        assert main(["stats", "s27"]) == 0
        assert "engine stats" not in capsys.readouterr().err

    def test_tables_jobs_flag(self, tmp_path, capsys):
        """--jobs plumbs through to run_all; a --quick single-circuit
        sweep short-circuits to the in-process path at any job count and
        must match --jobs 1 on every deterministic field."""
        args = [
            "tables",
            "--scale",
            "smoke",
            "--quick",
            "--max-faults",
            "120",
            "--p0-min-faults",
            "30",
        ]
        outputs = {}
        for jobs in ("1", "2"):
            out_path = tmp_path / f"jobs{jobs}.json"
            code = main(args + ["--jobs", jobs, "--out", str(out_path)])
            assert code == 0
            capsys.readouterr()
            payload = json.loads(out_path.read_text())
            for entry in payload["basic"].values():
                for outcome in entry["outcomes"].values():
                    outcome["runtime_seconds"] = 0.0
            for row in payload["table6"]:
                row["runtime_seconds"] = 0.0
            outputs[jobs] = payload
        assert outputs["1"] == outputs["2"]

    def test_tables_rejects_bad_jobs(self, capsys):
        """--jobs 0 is a clean argparse usage error (exit code 2), not a
        raw ValueError traceback."""
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_tables_rejects_non_integer_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--jobs", "many"])
        assert excinfo.value.code == 2

    def test_tables_rejects_negative_retries(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--max-retries", "-1"])
        assert excinfo.value.code == 2

    def test_tables_rejects_nonpositive_timeout(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--timeout", "0"])
        assert excinfo.value.code == 2

    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tables", "--resume"])
        assert excinfo.value.code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_tables_checkpoint_resume_identity(self, tmp_path, capsys):
        """A checkpointed --quick run rerun with --resume recomputes
        nothing and produces identical deterministic output."""
        ckpt = tmp_path / "ckpt"
        base = [
            "tables",
            "--scale",
            "smoke",
            "--quick",
            "--max-faults",
            "120",
            "--p0-min-faults",
            "30",
            "--checkpoint-dir",
            str(ckpt),
        ]
        outputs = {}
        for label, extra in (("fresh", []), ("resumed", ["--resume"])):
            out_path = tmp_path / f"{label}.json"
            code = main(base + extra + ["--out", str(out_path)])
            assert code == 0
            capsys.readouterr()
            payload = json.loads(out_path.read_text())
            for entry in payload["basic"].values():
                for outcome in entry["outcomes"].values():
                    outcome["runtime_seconds"] = 0.0
            for row in payload["table6"]:
                row["runtime_seconds"] = 0.0
            outputs[label] = payload
        assert outputs["fresh"] == outputs["resumed"]
        assert ckpt.exists() and any(ckpt.glob("*.json"))

    def test_tables_failure_reports_aggregated_error(
        self, tmp_path, monkeypatch, capsys
    ):
        # s641_proxy is the --quick sweep's (only) circuit
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s641_proxy")
        code = main(
            [
                "tables",
                "--scale",
                "smoke",
                "--quick",
                "--max-faults",
                "120",
                "--p0-min-faults",
                "30",
                "--max-retries",
                "0",
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "s641_proxy" in err
        assert "--resume" in err

    def test_tables_quick_smoke_with_cache(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        code = main(
            [
                "tables",
                "--scale",
                "smoke",
                "--quick",
                "--max-faults",
                "120",
                "--p0-min-faults",
                "30",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        first = capsys.readouterr().out
        assert "Table 6" in first
        payload = json.loads(out_path.read_text())
        assert payload["scale"] == "smoke"
        # Re-render from the cache without recomputation.
        code = main(["tables", "--from-json", str(out_path)])
        assert code == 0
        second = capsys.readouterr().out
        assert second == first
