"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("circuits", "stats", "enumerate", "atpg", "enrich", "tables"):
            args = parser.parse_args(
                [command] + ([] if command in ("circuits", "tables") else ["s27"])
            )
            assert args.command == command


class TestCommands:
    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out and "s1423_proxy" in out

    def test_stats_registry(self, capsys):
        assert main(["stats", "s27"]) == 0
        assert "10 gates" in capsys.readouterr().out

    def test_stats_bench_file(self, tmp_path, capsys):
        bench = tmp_path / "mini.bench"
        bench.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert main(["stats", str(bench)]) == 0
        assert "1 PIs" in capsys.readouterr().out

    def test_enumerate(self, capsys):
        code = main(
            ["enumerate", "s27", "--max-faults", "100", "--p0-min-faults", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "N_p(L_i)" in out and "|P0|" in out

    def test_atpg(self, capsys):
        code = main(
            [
                "atpg",
                "s27",
                "--heuristic",
                "values",
                "--max-faults",
                "100",
                "--p0-min-faults",
                "20",
                "--show-tests",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tests" in out and "->" in out

    def test_enrich(self, capsys):
        code = main(
            ["enrich", "s27", "--max-faults", "100", "--p0-min-faults", "20"]
        )
        assert code == 0
        assert "P0" in capsys.readouterr().out

    def test_stats_flag_reports_engine_counters(self, capsys):
        code = main(
            [
                "--stats",
                "atpg",
                "s27",
                "--max-faults",
                "100",
                "--p0-min-faults",
                "20",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "tests" in captured.out
        assert "engine stats" in captured.err
        assert "enumerate.miss" in captured.err
        assert "justify.calls" in captured.err

    def test_stats_flag_off_by_default(self, capsys):
        assert main(["stats", "s27"]) == 0
        assert "engine stats" not in capsys.readouterr().err

    def test_tables_jobs_flag(self, tmp_path, capsys):
        """--jobs plumbs through to run_all; a --quick single-circuit
        sweep short-circuits to the in-process path at any job count and
        must match --jobs 1 on every deterministic field."""
        args = [
            "tables",
            "--scale",
            "smoke",
            "--quick",
            "--max-faults",
            "120",
            "--p0-min-faults",
            "30",
        ]
        outputs = {}
        for jobs in ("1", "2"):
            out_path = tmp_path / f"jobs{jobs}.json"
            code = main(args + ["--jobs", jobs, "--out", str(out_path)])
            assert code == 0
            capsys.readouterr()
            payload = json.loads(out_path.read_text())
            for entry in payload["basic"].values():
                for outcome in entry["outcomes"].values():
                    outcome["runtime_seconds"] = 0.0
            for row in payload["table6"]:
                row["runtime_seconds"] = 0.0
            outputs[jobs] = payload
        assert outputs["1"] == outputs["2"]

    def test_tables_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            main(
                [
                    "tables",
                    "--scale",
                    "smoke",
                    "--quick",
                    "--max-faults",
                    "120",
                    "--p0-min-faults",
                    "30",
                    "--jobs",
                    "0",
                ]
            )

    def test_tables_quick_smoke_with_cache(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        code = main(
            [
                "tables",
                "--scale",
                "smoke",
                "--quick",
                "--max-faults",
                "120",
                "--p0-min-faults",
                "30",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        first = capsys.readouterr().out
        assert "Table 6" in first
        payload = json.loads(out_path.read_text())
        assert payload["scale"] == "smoke"
        # Re-render from the cache without recomputation.
        code = main(["tables", "--from-json", str(out_path)])
        assert code == 0
        second = capsys.readouterr().out
        assert second == first
