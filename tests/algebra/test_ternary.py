"""Unit and property tests for the ternary logic primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import ternary as t

values = st.sampled_from(t.VALUES)


class TestTables:
    def test_and_boolean_subset(self):
        assert t.t_and(0, 0) == 0
        assert t.t_and(0, 1) == 0
        assert t.t_and(1, 0) == 0
        assert t.t_and(1, 1) == 1

    def test_or_boolean_subset(self):
        assert t.t_or(0, 0) == 0
        assert t.t_or(0, 1) == 1
        assert t.t_or(1, 0) == 1
        assert t.t_or(1, 1) == 1

    def test_xor_boolean_subset(self):
        assert t.t_xor(0, 0) == 0
        assert t.t_xor(0, 1) == 1
        assert t.t_xor(1, 0) == 1
        assert t.t_xor(1, 1) == 0

    def test_not(self):
        assert t.t_not(0) == 1
        assert t.t_not(1) == 0
        assert t.t_not(t.X) == t.X

    def test_controlling_values_dominate_x(self):
        assert t.t_and(0, t.X) == 0
        assert t.t_and(t.X, 0) == 0
        assert t.t_or(1, t.X) == 1
        assert t.t_or(t.X, 1) == 1

    def test_non_controlling_with_x_is_x(self):
        assert t.t_and(1, t.X) == t.X
        assert t.t_or(0, t.X) == t.X
        assert t.t_xor(0, t.X) == t.X
        assert t.t_xor(1, t.X) == t.X

    def test_tables_are_read_only(self):
        with pytest.raises(ValueError):
            t.AND_TABLE[0, 0] = 1


class TestScalarHelpers:
    def test_and_all_identity(self):
        assert t.t_and_all([]) == t.ONE

    def test_or_all_identity(self):
        assert t.t_or_all([]) == t.ZERO

    def test_xor_all_parity(self):
        assert t.t_xor_all([1, 1, 1]) == 1
        assert t.t_xor_all([1, 1]) == 0

    def test_and_all_short_circuit_with_x(self):
        assert t.t_and_all([t.X, 0]) == 0

    def test_is_specified(self):
        assert t.is_specified(0)
        assert t.is_specified(1)
        assert not t.is_specified(t.X)

    def test_value_chars_roundtrip(self):
        for value in t.VALUES:
            assert t.value_from_char(t.value_to_char(value)) == value

    def test_value_from_char_aliases(self):
        assert t.value_from_char("-") == t.X
        assert t.value_from_char("X") == t.X

    def test_value_from_char_rejects_garbage(self):
        with pytest.raises(ValueError):
            t.value_from_char("2")

    def test_value_to_char_rejects_garbage(self):
        with pytest.raises(ValueError):
            t.value_to_char(5)


class TestOrdEncoding:
    def test_roundtrip(self):
        for value in t.VALUES:
            assert t.FROM_ORD[t.TO_ORD[value]] == value

    def test_and_is_min_in_ord(self):
        for a in t.VALUES:
            for b in t.VALUES:
                got = t.FROM_ORD[min(t.TO_ORD[a], t.TO_ORD[b])]
                assert got == t.t_and(a, b)

    def test_or_is_max_in_ord(self):
        for a in t.VALUES:
            for b in t.VALUES:
                got = t.FROM_ORD[max(t.TO_ORD[a], t.TO_ORD[b])]
                assert got == t.t_or(a, b)

    def test_not_is_2_minus_in_ord(self):
        for a in t.VALUES:
            got = t.FROM_ORD[2 - t.TO_ORD[a]]
            assert got == t.t_not(a)


class TestAlgebraicProperties:
    @given(values, values)
    def test_commutativity(self, a, b):
        assert t.t_and(a, b) == t.t_and(b, a)
        assert t.t_or(a, b) == t.t_or(b, a)
        assert t.t_xor(a, b) == t.t_xor(b, a)

    @given(values, values, values)
    def test_associativity(self, a, b, c):
        assert t.t_and(t.t_and(a, b), c) == t.t_and(a, t.t_and(b, c))
        assert t.t_or(t.t_or(a, b), c) == t.t_or(a, t.t_or(b, c))
        assert t.t_xor(t.t_xor(a, b), c) == t.t_xor(a, t.t_xor(b, c))

    @given(values, values)
    def test_de_morgan(self, a, b):
        assert t.t_not(t.t_and(a, b)) == t.t_or(t.t_not(a), t.t_not(b))
        assert t.t_not(t.t_or(a, b)) == t.t_and(t.t_not(a), t.t_not(b))

    @given(values)
    def test_double_negation(self, a):
        assert t.t_not(t.t_not(a)) == a

    @given(values, values)
    def test_monotone_in_information_order(self, a, b):
        """Refining x to a concrete value never flips an already-known output."""
        for op in (t.t_and, t.t_or, t.t_xor):
            if op(a, t.X) != t.X:
                for refined in (t.ZERO, t.ONE):
                    assert op(a, refined) == op(a, t.X) or op(a, t.X) == t.X
            # when the x-output is specified, every refinement must agree
            out_with_x = op(a, t.X)
            if out_with_x != t.X:
                assert op(a, t.ZERO) == out_with_x
                assert op(a, t.ONE) == out_with_x
