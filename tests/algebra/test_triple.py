"""Unit and property tests for waveform triples."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import (
    FALL,
    ONE,
    RISE,
    STABLE0,
    STABLE1,
    UNKNOWN,
    X,
    ZERO,
    Triple,
    all_triples,
)

triples = st.sampled_from(list(all_triples()))


class TestConstruction:
    def test_interning(self):
        assert Triple.of(0, X, 1) is RISE
        assert Triple.of(1, X, 0) is FALL
        assert Triple.of(0, 0, 0) is STABLE0
        assert Triple.of(1, 1, 1) is STABLE1
        assert Triple.of(X, X, X) is UNKNOWN

    def test_direct_constructor_blocked(self):
        with pytest.raises(TypeError):
            Triple(0, 0, 0)

    def test_of_rejects_bad_components(self):
        with pytest.raises((ValueError, IndexError)):
            Triple.of(0, 0, 9)

    def test_parse_three_char(self):
        assert Triple.parse("0x1") is RISE
        assert Triple.parse("1x0") is FALL
        assert Triple.parse("111") is STABLE1
        assert Triple.parse("xx0").components() == (X, X, 0)

    def test_parse_two_char_shorthand(self):
        assert Triple.parse("01") is RISE
        assert Triple.parse("10") is FALL
        assert Triple.parse("00") is STABLE0

    def test_parse_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Triple.parse("0")
        with pytest.raises(ValueError):
            Triple.parse("0101")

    def test_stable(self):
        assert Triple.stable(0) is STABLE0
        assert Triple.stable(1) is STABLE1
        with pytest.raises(ValueError):
            Triple.stable(X)

    def test_transition(self):
        assert Triple.transition(0, 1) is RISE
        assert Triple.transition(1, 0) is FALL
        assert Triple.transition(0, 0) is STABLE0
        assert Triple.transition(X, X) is UNKNOWN

    def test_from_code_roundtrip(self):
        for triple in all_triples():
            assert Triple.from_code(triple.code) is triple

    def test_immutability(self):
        with pytest.raises(AttributeError):
            RISE.v1 = 1

    def test_str(self):
        assert str(RISE) == "0x1"
        assert str(STABLE0) == "000"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(RISE)) is RISE


class TestPredicates:
    def test_is_fully_specified(self):
        assert STABLE0.is_fully_specified()
        assert not RISE.is_fully_specified()  # intermediate is x
        assert not UNKNOWN.is_fully_specified()

    def test_is_stable(self):
        assert STABLE0.is_stable()
        assert STABLE1.is_stable()
        assert not RISE.is_stable()
        assert not UNKNOWN.is_stable()

    def test_is_transition(self):
        assert RISE.is_transition()
        assert FALL.is_transition()
        assert not STABLE0.is_transition()
        assert not Triple.parse("0x0").is_transition()

    def test_specified_count(self):
        assert STABLE0.specified_count() == 3
        assert RISE.specified_count() == 2
        assert UNKNOWN.specified_count() == 0
        assert Triple.parse("xx1").specified_count() == 1


class TestCoversAndConsistency:
    def test_covers_exact(self):
        assert STABLE0.covers(STABLE0)
        assert RISE.covers(Triple.parse("xx1"))
        assert RISE.covers(Triple.parse("0xx"))

    def test_x_simulated_never_covers_specified(self):
        # A hazard-possible intermediate (x) fails a steady requirement.
        assert not Triple.parse("0x0").covers(STABLE0)
        assert not UNKNOWN.covers(Triple.parse("xx1"))

    def test_consistent_allows_x(self):
        assert UNKNOWN.consistent_with(STABLE0)
        assert Triple.parse("0xx").consistent_with(STABLE0)
        assert Triple.parse("0x0").consistent_with(STABLE0)

    def test_consistent_rejects_contradiction(self):
        assert not Triple.parse("1xx").consistent_with(STABLE0)
        assert not RISE.consistent_with(FALL)

    @given(triples, triples)
    def test_covers_implies_consistent(self, sim, req):
        if sim.covers(req):
            assert sim.consistent_with(req)

    @given(triples)
    def test_everything_covers_unknown_requirement(self, sim):
        assert sim.covers(UNKNOWN)

    @given(triples)
    def test_fully_specified_consistency_equals_covering(self, req):
        for sim in all_triples():
            if sim.is_fully_specified():
                assert sim.covers(req) == sim.consistent_with(req)


class TestMerge:
    def test_merge_disjoint(self):
        merged = Triple.parse("0xx").merge(Triple.parse("xx1"))
        assert merged is Triple.parse("0x1")

    def test_merge_conflict(self):
        assert STABLE0.merge(STABLE1) is None
        assert RISE.merge(FALL) is None

    def test_merge_with_unknown_is_identity(self):
        for triple in all_triples():
            assert triple.merge(UNKNOWN) is triple
            assert UNKNOWN.merge(triple) is triple

    @given(triples, triples)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) is b.merge(a)

    @given(triples)
    def test_merge_idempotent(self, a):
        assert a.merge(a) is a

    @given(triples, triples, triples)
    def test_merge_associative(self, a, b, c):
        left = a.merge(b)
        left = left.merge(c) if left is not None else None
        right = b.merge(c)
        right = a.merge(right) if right is not None else None
        assert left is right

    @given(triples, triples)
    def test_merged_requirement_is_stronger(self, a, b):
        merged = a.merge(b)
        if merged is None:
            return
        for sim in all_triples():
            if sim.covers(merged):
                assert sim.covers(a) and sim.covers(b)

    @given(triples, triples)
    def test_covering_both_iff_covering_merge(self, a, b):
        merged = a.merge(b)
        for sim in all_triples():
            both = sim.covers(a) and sim.covers(b)
            if merged is None:
                assert not both or not sim.is_fully_specified() or True
                # unmergeable requirements cannot both be covered
                assert not both
            else:
                assert both == sim.covers(merged)


class TestDeltaAndInversion:
    def test_new_components_vs(self):
        assert STABLE0.new_components_vs(UNKNOWN) == 3
        assert Triple.parse("xx1").new_components_vs(Triple.parse("xx1")) == 0
        assert Triple.parse("0x1").new_components_vs(Triple.parse("xxx")) == 2
        assert STABLE1.new_components_vs(Triple.parse("1xx")) == 2

    def test_inverted(self):
        assert RISE.inverted() is FALL
        assert STABLE0.inverted() is STABLE1
        assert UNKNOWN.inverted() is UNKNOWN

    @given(triples)
    def test_double_inversion(self, a):
        assert a.inverted().inverted() is a
