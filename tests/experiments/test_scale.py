"""Tests for experiment scaling presets."""

import pytest

from repro.experiments import SCALES, ExperimentScale, get_scale


class TestScales:
    def test_presets_exist(self):
        assert {"paper", "default", "smoke"} <= set(SCALES)

    def test_paper_scale_matches_publication(self):
        paper = SCALES["paper"]
        assert paper.max_faults == 10_000
        assert paper.p0_min_faults == 1_000
        assert paper.max_secondary_attempts is None

    def test_scales_ordered(self):
        assert (
            SCALES["smoke"].max_faults
            < SCALES["default"].max_faults
            < SCALES["paper"].max_faults
        )

    def test_get_scale_by_name(self):
        assert get_scale("default") is SCALES["default"]

    def test_get_scale_passthrough(self):
        custom = ExperimentScale(
            name="custom", max_faults=100, p0_min_faults=10, max_secondary_attempts=2
        )
        assert get_scale(custom) is custom

    def test_get_scale_unknown(self):
        with pytest.raises(KeyError):
            get_scale("gigantic")
