"""Tests for per-length coverage profiles."""

from repro.experiments import (
    coverage_by_length,
    format_coverage_profile,
)
from repro.faults import build_target_sets


class TestCoverageByLength:
    def test_totals_match_population(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        profile = coverage_by_length(targets.all_records, [])
        assert sum(entry.total for entry in profile) == len(targets.all_records)
        assert all(entry.detected == 0 for entry in profile)

    def test_detected_records_counted(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        detected = targets.all_records[:5]
        profile = coverage_by_length(targets.all_records, detected)
        assert sum(entry.detected for entry in profile) == 5

    def test_accepts_keys(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        keys = [record.fault.key() for record in targets.all_records[:3]]
        profile = coverage_by_length(targets.all_records, keys)
        assert sum(entry.detected for entry in profile) == 3

    def test_sorted_longest_first(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        profile = coverage_by_length(targets.all_records, [])
        lengths = [entry.length for entry in profile]
        assert lengths == sorted(lengths, reverse=True)

    def test_fraction(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        profile = coverage_by_length(targets.all_records, targets.all_records)
        assert all(entry.fraction == 1.0 for entry in profile)

    def test_format(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        text = format_coverage_profile(
            coverage_by_length(targets.all_records, []), title="profile"
        )
        assert "profile" in text
        assert "0%" in text
