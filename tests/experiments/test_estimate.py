"""Tests for sampling-based coverage estimation."""

import pytest

from repro import enrich_circuit, prepare_targets
from repro.experiments import CoverageEstimate, estimate_coverage


class TestCoverageEstimate:
    def test_empty_test_set_detects_nothing(self, s27):
        estimate = estimate_coverage(s27, [], samples=50, seed=1)
        assert estimate.detected == 0
        assert estimate.detected_fraction == 0.0
        assert estimate.sampled_faults == 100

    def test_fractions_bounded(self, s27):
        targets = prepare_targets(s27, max_faults=1000, p0_min_faults=20)
        report = enrich_circuit(s27, targets=targets, seed=2)
        estimate = estimate_coverage(
            s27, report.result.test_vectors, samples=100, seed=1
        )
        assert 0.0 <= estimate.detected_fraction <= 1.0
        assert 0.0 <= estimate.undetectable_fraction <= 1.0
        assert estimate.detectable_coverage >= estimate.detected_fraction
        assert estimate.total_paths == 28

    def test_enrichment_improves_population_estimate(self, s27):
        """The enriched test set's whole-population coverage estimate must
        be at least the basic set's (same sampled faults, superset-ish
        detection)."""
        from repro import basic_atpg_circuit

        targets = prepare_targets(s27, max_faults=1000, p0_min_faults=20)
        basic = basic_atpg_circuit(s27, heuristic="values", targets=targets, seed=2)
        enriched = enrich_circuit(s27, targets=targets, seed=2)
        base = estimate_coverage(s27, basic.test_vectors, samples=150, seed=9)
        enr = estimate_coverage(
            s27, enriched.result.test_vectors, samples=150, seed=9
        )
        assert enr.detected >= base.detected - 5  # same sample, small slack

    def test_confidence_interval(self):
        estimate = CoverageEstimate(
            sampled_faults=400, detected=100, undetectable=40, total_paths=1000
        )
        low, high = estimate.confidence_interval()
        assert low < 0.25 < high
        assert 0.0 <= low and high <= 1.0

    def test_str_mentions_population(self, s27):
        estimate = estimate_coverage(s27, [], samples=20, seed=0)
        assert "28 paths" in str(estimate)

    def test_zero_samples(self, s27):
        estimate = estimate_coverage(s27, [], samples=0, seed=0)
        assert estimate.detected_fraction == 0.0
        assert estimate.confidence_interval() == (0.0, 0.0)
