"""Tests for the table renderer."""

from repro.experiments.report import render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ["circuit", "n"],
            [("s27", 5), ("longername", 123)],
        )
        lines = text.splitlines()
        assert lines[0].startswith("circuit")
        # numbers right-aligned in the second column
        assert lines[2].endswith("  5")
        assert lines[3].endswith("123")

    def test_title(self):
        text = render_table(["a"], [(1,)], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_separator_row(self):
        text = render_table(["ab", "cd"], [("x", "y")])
        assert "--" in text.splitlines()[1]

    def test_wide_values_expand_columns(self):
        text = render_table(["a"], [("wide-value",)])
        header = text.splitlines()[0]
        assert len(header) >= len("wide-value")

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
