"""Tests for the experiment workload definitions."""

from repro.circuit import available_circuits
from repro.experiments import (
    HEURISTICS,
    TABLE3_CIRCUITS,
    TABLE6_CIRCUITS,
    TABLE6_EXTRA_CIRCUITS,
)


class TestWorkloads:
    def test_table3_has_eight_circuits(self):
        assert len(TABLE3_CIRCUITS) == 8

    def test_table6_adds_three_resynthesized(self):
        assert len(TABLE6_EXTRA_CIRCUITS) == 3
        assert TABLE6_CIRCUITS == TABLE3_CIRCUITS + TABLE6_EXTRA_CIRCUITS
        assert all(name.startswith("s") for name in TABLE6_EXTRA_CIRCUITS)
        assert all("r_proxy" in name for name in TABLE6_EXTRA_CIRCUITS)

    def test_all_workload_circuits_loadable(self):
        registry = set(available_circuits())
        for name in TABLE6_CIRCUITS:
            assert name in registry, name

    def test_heuristics_order_matches_paper_columns(self):
        assert HEURISTICS == ("uncomp", "arbit", "length", "values")

    def test_workload_names_mirror_paper_circuits(self):
        paper_names = {"s641", "s953", "s1196", "s1423", "s1488", "b03", "b04", "b09"}
        got = {name.replace("_proxy", "") for name in TABLE3_CIRCUITS}
        assert got == paper_names
