"""Tests for the table drivers (tiny scale for speed)."""

import pytest

from repro.experiments import (
    ExperimentResults,
    ExperimentScale,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    format_table7,
    run_all,
    run_basic_experiments,
    run_table1,
    run_table2,
    run_table6,
)

TINY = ExperimentScale(
    name="tiny", max_faults=120, p0_min_faults=30, max_secondary_attempts=4, seed=1
)
CIRCUITS = ("b03_proxy",)


@pytest.fixture(scope="module")
def results():
    return run_all(TINY, circuits=CIRCUITS, table6_circuits=CIRCUITS)


class TestTable1:
    def test_run(self):
        result = run_table1(max_paths=20)
        assert result.circuit == "s27"
        assert 0 < len(result.kept_paths) <= 20
        assert result.max_length == 7

    def test_format(self):
        text = format_table1(run_table1(max_paths=20))
        assert "Table 1" in text
        assert "G17" in text or "G10" in text


class TestTable2:
    def test_run(self):
        result = run_table2(TINY, circuit="s1423_proxy", max_rows=10)
        assert len(result.rows) <= 10
        indices = [row[0] for row in result.rows]
        assert indices == sorted(indices)
        cumulative = [row[2] for row in result.rows]
        assert cumulative == sorted(cumulative)

    def test_format(self):
        text = format_table2(run_table2(TINY, max_rows=5))
        assert "N_p(L_i)" in text


class TestBasicExperiments:
    def test_all_heuristics_present(self, results):
        entry = results.basic[CIRCUITS[0]]
        assert set(entry.outcomes) == {"uncomp", "arbit", "length", "values"}

    def test_detected_within_totals(self, results):
        entry = results.basic[CIRCUITS[0]]
        for outcome in entry.outcomes.values():
            assert 0 <= outcome.detected_p0 <= entry.p0_total
            assert outcome.detected_p0 <= outcome.detected_p01 <= entry.p01_total
            assert outcome.tests > 0
            assert outcome.runtime_seconds > 0

    def test_formatters(self, results):
        assert "Table 3" in format_table3(results.basic)
        assert "Table 4" in format_table4(results.basic)
        assert "Table 5" in format_table5(results.basic)

    def test_subset_of_heuristics(self):
        partial = run_basic_experiments(
            TINY, circuits=CIRCUITS, heuristics=("uncomp",)
        )
        assert set(partial[CIRCUITS[0]].outcomes) == {"uncomp"}


class TestTable6:
    def test_rows(self, results):
        assert len(results.table6) == 1
        row = results.table6[0]
        assert row.p0_detected <= row.p0_total
        assert row.p01_detected <= row.p01_total
        assert row.tests > 0

    def test_format(self, results):
        text = format_table6(results.table6)
        assert "Table 6" in text and CIRCUITS[0] in text


class TestTable7:
    def test_format(self, results):
        text = format_table7(results.basic, results.table6)
        assert "Table 7" in text
        assert CIRCUITS[0] in text


class TestSerialization:
    def test_json_roundtrip(self, results):
        text = results.to_json()
        back = ExperimentResults.from_json(text)
        assert back.scale == results.scale
        assert back.basic.keys() == results.basic.keys()
        entry = back.basic[CIRCUITS[0]]
        original = results.basic[CIRCUITS[0]]
        assert entry.outcomes["values"].tests == original.outcomes["values"].tests
        assert back.table6[0].tests == results.table6[0].tests
        # Formatting the round-tripped data reproduces the same tables.
        assert back.format_all() == results.format_all()

    def test_format_all_contains_every_table(self, results):
        text = results.format_all()
        for n in range(1, 8):
            assert f"Table {n}" in text
