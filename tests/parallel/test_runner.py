"""Tests for the process-pool experiment runner.

The determinism contract: ``jobs=N`` must produce results byte-identical
to ``jobs=1`` for every deterministic field (``canonical_json`` strips the
wall-clock ``runtime_seconds`` measurements, which differ run to run even
at a fixed job count).
"""

import pytest

from repro.engine import Engine, EngineStats
from repro.experiments import ExperimentScale, run_all, run_basic_experiments
from repro.parallel import (
    CircuitJob,
    CircuitJobResult,
    ParallelRunner,
    execute_job,
    resolve_jobs,
    run_circuit_job,
)

TINY = ExperimentScale(
    name="tiny", max_faults=120, p0_min_faults=30, max_secondary_attempts=4, seed=1
)
CIRCUITS = ("s27", "b03_proxy")


class TestResolveJobs:
    def test_none_means_all_cpus(self):
        assert resolve_jobs(None) >= 1

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


@pytest.fixture(scope="module")
def serial_results():
    return run_all(TINY, circuits=CIRCUITS, table6_circuits=CIRCUITS, jobs=1)


@pytest.fixture(scope="module")
def parallel_results():
    return run_all(TINY, circuits=CIRCUITS, table6_circuits=CIRCUITS, jobs=4)


class TestDeterminism:
    def test_jobs4_matches_jobs1_byte_identical(
        self, serial_results, parallel_results
    ):
        assert (
            parallel_results.canonical_json() == serial_results.canonical_json()
        )

    def test_circuit_order_preserved(self, parallel_results):
        assert tuple(parallel_results.basic) == CIRCUITS
        assert tuple(r.circuit for r in parallel_results.table6) == CIRCUITS

    def test_run_basic_experiments_parallel_identity(self):
        serial = run_basic_experiments(TINY, CIRCUITS, jobs=1)
        parallel = run_basic_experiments(TINY, CIRCUITS, jobs=2)
        assert list(serial) == list(parallel)
        for name in serial:
            a, b = serial[name], parallel[name]
            assert a.i0 == b.i0
            assert a.p0_total == b.p0_total
            assert a.p01_total == b.p01_total
            for heuristic, outcome in a.outcomes.items():
                other = b.outcomes[heuristic]
                assert outcome.detected_p0 == other.detected_p0
                assert outcome.tests == other.tests
                assert outcome.detected_p01 == other.detected_p01


class TestRunner:
    def test_in_process_path_uses_caller_engine(self):
        engine = Engine()
        runner = ParallelRunner(jobs=1, engine=engine)
        results = runner.run(
            [CircuitJob("s27", TINY, ("values",), run_basic=True)]
        )
        assert len(results) == 1
        assert results[0].stats is None  # recorded directly on `engine`
        assert engine.stats.misses("enumerate") >= 1

    def test_pool_path_merges_worker_stats(self):
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine)
        jobs = [
            CircuitJob(name, TINY, ("values",), run_basic=True)
            for name in CIRCUITS
        ]
        results = runner.run(jobs)
        assert [r.circuit for r in results] == list(CIRCUITS)
        assert all(r.stats is not None for r in results)
        # Both workers' events landed on the parent engine.
        assert engine.stats.misses("enumerate") >= len(CIRCUITS)
        assert engine.stats.counter("simulator.build") >= len(CIRCUITS)

    def test_single_job_never_spawns_pool(self):
        engine = Engine()
        runner = ParallelRunner(jobs=8, engine=engine)
        results = runner.run(
            [CircuitJob("s27", TINY, ("values",), run_basic=True)]
        )
        assert results[0].stats is None  # in-process short-circuit

    def test_combined_job_runs_both_sweeps(self):
        result = execute_job(
            CircuitJob("s27", TINY, ("values",), run_basic=True, run_table6=True)
        )
        assert isinstance(result, CircuitJobResult)
        assert result.basic is not None
        assert result.table6 is not None
        assert result.basic.circuit == "s27"
        assert result.table6.circuit == "s27"
        # One worker session: the enrichment run reused the basic sweep's
        # target sets instead of rebuilding them.
        assert result.stats.hits("target_sets") >= 1

    def test_worker_result_matches_in_process(self):
        job = CircuitJob("s27", TINY, ("values",), run_basic=True)
        in_process = run_circuit_job(job, Engine())
        shipped = execute_job(job)
        assert in_process.basic.p0_total == shipped.basic.p0_total
        outcome_a = in_process.basic.outcomes["values"]
        outcome_b = shipped.basic.outcomes["values"]
        assert outcome_a.detected_p0 == outcome_b.detected_p0
        assert outcome_a.tests == outcome_b.tests


class TestStatsMerge:
    def test_merge_sums_counters_and_timers(self):
        parent, worker1, worker2 = EngineStats(), EngineStats(), EngineStats()
        parent.count("enumerate.miss")
        parent.add_time("generate", 1.0)
        worker1.count("enumerate.miss", 2)
        worker1.add_time("generate", 0.5)
        worker1.add_time("enumerate", 0.25)
        worker2.count("batch.runs", 7)
        worker2.add_time("generate", 0.25)
        parent.merge(worker1)
        parent.merge(worker2)
        assert parent.counter("enumerate.miss") == 3
        assert parent.counter("batch.runs") == 7
        assert parent.timers["generate"] == pytest.approx(1.75)
        assert parent.timers["enumerate"] == pytest.approx(0.25)

    def test_merge_empty_is_noop(self):
        parent = EngineStats()
        parent.count("x")
        snapshot = parent.snapshot()
        parent.merge(EngineStats())
        assert parent.snapshot() == snapshot
