"""Tests for the process-pool experiment runner.

The determinism contract: ``jobs=N`` must produce results byte-identical
to ``jobs=1`` for every deterministic field (``canonical_json`` strips the
wall-clock ``runtime_seconds`` measurements, which differ run to run even
at a fixed job count).
"""

import pytest

from repro.engine import Engine, EngineStats
from repro.experiments import ExperimentScale, run_all, run_basic_experiments
from repro.experiments.results import (
    CircuitBasicResult,
    HeuristicOutcome,
    Table6Row,
)
from repro.parallel import (
    CircuitJob,
    CircuitJobResult,
    JobFailure,
    ParallelRunError,
    ParallelRunner,
    RunCheckpoint,
    execute_job,
    resolve_jobs,
    run_circuit_job,
)
from repro.robustness import RetryPolicy

TINY = ExperimentScale(
    name="tiny", max_faults=120, p0_min_faults=30, max_secondary_attempts=4, seed=1
)
CIRCUITS = ("s27", "b03_proxy")


class TestResolveJobs:
    def test_none_means_all_cpus(self):
        assert resolve_jobs(None) >= 1

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


@pytest.fixture(scope="module")
def serial_results():
    return run_all(TINY, circuits=CIRCUITS, table6_circuits=CIRCUITS, jobs=1)


@pytest.fixture(scope="module")
def parallel_results():
    return run_all(TINY, circuits=CIRCUITS, table6_circuits=CIRCUITS, jobs=4)


class TestDeterminism:
    def test_jobs4_matches_jobs1_byte_identical(
        self, serial_results, parallel_results
    ):
        assert (
            parallel_results.canonical_json() == serial_results.canonical_json()
        )

    def test_circuit_order_preserved(self, parallel_results):
        assert tuple(parallel_results.basic) == CIRCUITS
        assert tuple(r.circuit for r in parallel_results.table6) == CIRCUITS

    def test_run_basic_experiments_parallel_identity(self):
        serial = run_basic_experiments(TINY, CIRCUITS, jobs=1)
        parallel = run_basic_experiments(TINY, CIRCUITS, jobs=2)
        assert list(serial) == list(parallel)
        for name in serial:
            a, b = serial[name], parallel[name]
            assert a.i0 == b.i0
            assert a.p0_total == b.p0_total
            assert a.p01_total == b.p01_total
            for heuristic, outcome in a.outcomes.items():
                other = b.outcomes[heuristic]
                assert outcome.detected_p0 == other.detected_p0
                assert outcome.tests == other.tests
                assert outcome.detected_p01 == other.detected_p01


class TestRunner:
    def test_in_process_path_uses_caller_engine(self):
        engine = Engine()
        runner = ParallelRunner(jobs=1, engine=engine)
        results = runner.run(
            [CircuitJob("s27", TINY, ("values",), run_basic=True)]
        )
        assert len(results) == 1
        assert results[0].stats is None  # recorded directly on `engine`
        assert engine.stats.misses("enumerate") >= 1

    def test_pool_path_merges_worker_stats(self):
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine)
        jobs = [
            CircuitJob(name, TINY, ("values",), run_basic=True)
            for name in CIRCUITS
        ]
        results = runner.run(jobs)
        assert [r.circuit for r in results] == list(CIRCUITS)
        assert all(r.stats is not None for r in results)
        # Both workers' events landed on the parent engine.
        assert engine.stats.misses("enumerate") >= len(CIRCUITS)
        assert engine.stats.counter("simulator.build") >= len(CIRCUITS)

    def test_single_job_never_spawns_pool(self):
        engine = Engine()
        runner = ParallelRunner(jobs=8, engine=engine)
        results = runner.run(
            [CircuitJob("s27", TINY, ("values",), run_basic=True)]
        )
        assert results[0].stats is None  # in-process short-circuit

    def test_combined_job_runs_both_sweeps(self):
        result = execute_job(
            CircuitJob("s27", TINY, ("values",), run_basic=True, run_table6=True)
        )
        assert isinstance(result, CircuitJobResult)
        assert result.basic is not None
        assert result.table6 is not None
        assert result.basic.circuit == "s27"
        assert result.table6.circuit == "s27"
        # One worker session: the enrichment run reused the basic sweep's
        # target sets instead of rebuilding them.
        assert result.stats.hits("target_sets") >= 1

    def test_worker_result_matches_in_process(self):
        job = CircuitJob("s27", TINY, ("values",), run_basic=True)
        in_process = run_circuit_job(job, Engine())
        shipped = execute_job(job)
        assert in_process.basic.p0_total == shipped.basic.p0_total
        outcome_a = in_process.basic.outcomes["values"]
        outcome_b = shipped.basic.outcomes["values"]
        assert outcome_a.detected_p0 == outcome_b.detected_p0
        assert outcome_a.tests == outcome_b.tests


def _values_jobs(circuits=CIRCUITS):
    return [
        CircuitJob(name, TINY, ("values",), run_basic=True) for name in circuits
    ]


class TestFailurePaths:
    """Injected worker failures (via the REPRO_INJECT_* chaos hooks, which
    cross process boundaries where monkeypatching cannot)."""

    def test_injected_failure_retried_then_salvaged(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27:1")  # fail 1st attempt only
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine, max_retries=1)
        results = runner.run(_values_jobs())
        assert [r.circuit for r in results] == list(CIRCUITS)
        assert all(r.basic is not None for r in results)
        assert engine.stats.counter("parallel.retries") == 1
        assert engine.stats.counter("parallel.failures") == 0

    def test_exhausted_retries_aggregate_and_salvage(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27")  # fail every attempt
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine, max_retries=1)
        with pytest.raises(ParallelRunError) as excinfo:
            runner.run(_values_jobs())
        error = excinfo.value
        assert "s27" in str(error)
        assert [f.circuit for f in error.failures] == ["s27"]
        failure = error.failures[0]
        assert isinstance(failure, JobFailure)
        assert failure.phase == "inject"
        assert failure.error == "RuntimeError"
        assert "injected failure" in failure.message
        assert "RuntimeError" in failure.traceback
        # the healthy circuit's finished result is salvaged, not discarded
        assert [r.circuit for r in error.results] == ["b03_proxy"]
        assert error.results[0].basic is not None
        assert engine.stats.counter("parallel.failures") == 1
        assert "s27" in error.details()

    def test_in_process_path_applies_same_retry_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27:1")
        engine = Engine()
        runner = ParallelRunner(jobs=1, engine=engine, max_retries=1)
        results = runner.run(_values_jobs(("s27",)))
        assert results[0].basic is not None
        assert engine.stats.counter("parallel.retries") == 1

    def test_broken_pool_falls_back_in_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_EXIT", "s27")  # worker dies mid-job
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine)
        results = runner.run(_values_jobs())
        assert [r.circuit for r in results] == list(CIRCUITS)
        assert all(r.basic is not None for r in results)
        assert engine.stats.counter("parallel.pool_broken") >= 1
        assert engine.stats.counter("parallel.fallback") >= 1
        # the dead circuit was re-run in-process on the caller's engine
        assert results[0].stats is None

    def test_timeout_marks_outstanding_jobs_failed(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_SLEEP", "c17:30")
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine, max_retries=0, timeout=2.0)
        # no run flags: the healthy job only builds a session, so the only
        # slow job is the injected sleeper
        jobs = [CircuitJob("s27", TINY), CircuitJob("c17", TINY)]
        with pytest.raises(ParallelRunError) as excinfo:
            runner.run(jobs)
        assert [f.circuit for f in excinfo.value.failures] == ["c17"]
        assert excinfo.value.failures[0].phase == "timeout"
        assert [r.circuit for r in excinfo.value.results] == ["s27"]
        assert engine.stats.counter("parallel.timeouts") == 1

    def test_timeout_kills_stuck_workers(self, monkeypatch):
        """Declaring a worker stuck must also terminate it: an abandoned
        pool is still joined at interpreter exit, so a 600s sleeper left
        alive would keep the parent process hanging long after the run
        reported its timeout failure."""
        import multiprocessing
        import time as _time

        monkeypatch.setenv("REPRO_INJECT_SLEEP", "c17:600")
        runner = ParallelRunner(jobs=2, max_retries=0, timeout=2.0)
        jobs = [CircuitJob("s27", TINY), CircuitJob("c17", TINY)]
        before = {p.pid for p in multiprocessing.active_children()}
        with pytest.raises(ParallelRunError):
            runner.run(jobs)
        leftover = [
            p for p in multiprocessing.active_children() if p.pid not in before
        ]
        deadline = _time.monotonic() + 5.0
        while leftover and _time.monotonic() < deadline:
            _time.sleep(0.1)
            leftover = [p for p in leftover if p.is_alive()]
        assert leftover == []  # the 600s sleeper was killed, not abandoned

    def test_constructor_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1, max_retries=-1)
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1, timeout=0.0)
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1, heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1, stale_after=0.0)


class TestBackoff:
    """Retries wait under the RetryPolicy, and the waits leave evidence
    on the ``parallel.retry_wait_seconds`` timer."""

    def test_serial_retry_records_backoff_wait(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27:1")
        engine = Engine()
        policy = RetryPolicy(max_retries=1, base_delay=0.01, jitter=0.0)
        runner = ParallelRunner(jobs=1, engine=engine, retry_policy=policy)
        results = runner.run(_values_jobs(("s27",)))
        assert results[0].basic is not None
        assert engine.stats.counter("parallel.retries") == 1
        assert engine.stats.timers["parallel.retry_wait_seconds"] == (
            pytest.approx(0.01)
        )
        [record] = engine.job_records
        assert record["retries"] == 1  # the journal sees the retry

    def test_pool_retry_records_backoff_wait(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27:1")
        engine = Engine()
        policy = RetryPolicy(max_retries=1, base_delay=0.01, jitter=0.0)
        runner = ParallelRunner(jobs=2, engine=engine, retry_policy=policy)
        results = runner.run(_values_jobs())
        assert [r.circuit for r in results] == list(CIRCUITS)
        assert engine.stats.counter("parallel.retries") == 1
        assert engine.stats.timers["parallel.retry_wait_seconds"] >= 0.01

    def test_retry_policy_takes_precedence_over_max_retries(self):
        runner = ParallelRunner(
            jobs=1, max_retries=5, retry_policy=RetryPolicy(max_retries=2)
        )
        assert runner.max_retries == 2


class TestHardCrashRecovery:
    """SIGKILL a pool worker mid-job: the hardest crash.  The run must
    still finish with canonical output identical to a serial run, and
    the journal must record that the killed job was retried."""

    def test_sigkill_recovered_and_output_identical(
        self, monkeypatch, tmp_path, serial_results
    ):
        monkeypatch.setenv("REPRO_INJECT_EXIT_SIGKILL", "s27:1")
        engine = Engine()
        results = run_all(
            TINY,
            circuits=CIRCUITS,
            table6_circuits=CIRCUITS,
            jobs=4,
            engine=engine,
            heartbeat_dir=str(tmp_path / "hb"),
        )
        assert results.canonical_json() == serial_results.canonical_json()
        assert engine.stats.counter("parallel.pool_broken") >= 1
        assert engine.stats.counter("parallel.retries") >= 1
        records = {r["key"]: r for r in engine.job_records}
        assert records["s27"].get("retries", 0) >= 1

    def test_sigkill_without_heartbeats_still_recovers(self, monkeypatch):
        # Pre-supervision behaviour: the crash is survived via the
        # in-process fallback, just without retry attribution.
        monkeypatch.setenv("REPRO_INJECT_EXIT_SIGKILL", "s27:1")
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine)
        results = runner.run(_values_jobs())
        assert [r.circuit for r in results] == list(CIRCUITS)
        assert all(r.basic is not None for r in results)
        assert engine.stats.counter("parallel.pool_broken") >= 1


class TestWatchdogPath:
    """A worker that starts beating and then goes silent is *stuck*:
    killed, charged an attempt, and distinguishable (phase="stuck")
    from the completion-free hard timeout.

    The sleeper chaos job beats synchronously once on entry; with a
    60s beat interval the beat then goes silent, which is exactly the
    stuck signature (a frozen process stops beating too)."""

    def test_stuck_worker_flagged_and_neighbour_salvaged(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_INJECT_SLEEP", "c17:600")
        engine = Engine()
        runner = ParallelRunner(
            jobs=2,
            engine=engine,
            max_retries=0,
            heartbeat_dir=tmp_path,
            heartbeat_interval=60.0,
            stale_after=1.0,
        )
        jobs = [CircuitJob("s27", TINY), CircuitJob("c17", TINY)]
        with pytest.raises(ParallelRunError) as excinfo:
            runner.run(jobs)
        [failure] = excinfo.value.failures
        assert failure.circuit == "c17"
        assert failure.phase == "stuck"
        assert "no heartbeat" in failure.message
        assert engine.stats.counter("parallel.stuck") == 1
        assert engine.stats.counter("parallel.timeouts") == 0
        assert [r.circuit for r in excinfo.value.results] == ["s27"]

    def test_stuck_job_consumes_attempt_and_is_retried(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_INJECT_SLEEP", "c17:600")
        engine = Engine()
        policy = RetryPolicy(max_retries=1, base_delay=0.05, jitter=0.0)
        runner = ParallelRunner(
            jobs=2,
            engine=engine,
            retry_policy=policy,
            heartbeat_dir=tmp_path,
            heartbeat_interval=60.0,
            stale_after=1.0,
        )
        jobs = [CircuitJob("s27", TINY), CircuitJob("c17", TINY)]
        with pytest.raises(ParallelRunError) as excinfo:
            runner.run(jobs)
        [failure] = excinfo.value.failures
        assert failure.phase == "stuck"
        assert failure.attempt == 1  # second attempt also went silent
        assert engine.stats.counter("parallel.stuck") == 2
        assert engine.stats.counter("parallel.retries") == 1
        # the retry was paced, not hot-looped
        assert engine.stats.timers["parallel.retry_wait_seconds"] == (
            pytest.approx(0.05)
        )


def _fake_result(circuit="s27"):
    stats = EngineStats()
    stats.count("batch.runs", 2)
    stats.add_time("generate", 1.5)
    return CircuitJobResult(
        circuit=circuit,
        basic=CircuitBasicResult(
            circuit=circuit,
            i0=1,
            p0_total=2,
            p01_total=3,
            outcomes={"values": HeuristicOutcome(1, 2, 3, 0.5)},
        ),
        table6=Table6Row(
            circuit=circuit,
            i0=1,
            p0_total=2,
            p0_detected=1,
            p01_total=3,
            p01_detected=2,
            tests=4,
            runtime_seconds=0.25,
        ),
        stats=stats,
    )


class TestRunCheckpoint:
    JOB = CircuitJob("s27", TINY, ("values",), run_basic=True, run_table6=True)

    def test_roundtrip(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "ckpt")
        result = _fake_result()
        path = checkpoint.save(result, self.JOB)
        assert path.name == "s27.json"
        assert checkpoint.completed() == {"s27"}
        loaded = checkpoint.load(self.JOB)
        assert loaded is not None
        assert loaded.to_payload() == result.to_payload()
        assert loaded.basic.outcomes["values"].tests == 2
        assert loaded.stats.counter("batch.runs") == 2
        assert loaded.stats.timers["generate"] == pytest.approx(1.5)

    def test_missing_file_is_none(self, tmp_path):
        assert RunCheckpoint(tmp_path).load(self.JOB) is None

    def test_corrupt_file_is_none(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.path_for("s27").write_text('{"version": 1, "circ')  # truncated
        assert checkpoint.load(self.JOB) is None

    def test_scale_mismatch_is_none(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.save(_fake_result(), self.JOB)
        other_scale = ExperimentScale(
            name="tiny",  # same name, different working point
            max_faults=99,
            p0_min_faults=30,
            max_secondary_attempts=4,
            seed=1,
        )
        other = CircuitJob("s27", other_scale, ("values",), run_basic=True)
        assert checkpoint.load(other) is None

    def test_missing_sweep_is_none(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        basic_only = CircuitJob("s27", TINY, ("values",), run_basic=True)
        result = _fake_result()
        result.table6 = None
        checkpoint.save(result, basic_only)
        assert checkpoint.load(basic_only) is not None
        assert checkpoint.load(self.JOB) is None  # also wants table6

    def test_heuristics_mismatch_is_none(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.save(_fake_result(), self.JOB)
        wider = CircuitJob(
            "s27", TINY, ("values", "arbit"), run_basic=True, run_table6=True
        )
        assert checkpoint.load(wider) is None

    def test_clear_drops_everything(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        checkpoint.save(_fake_result(), self.JOB)
        checkpoint.clear()
        assert checkpoint.completed() == set()


class TestCheckpointResume:
    def test_runner_skips_checkpointed_jobs(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        jobs = _values_jobs(("s27",))
        engine = Engine()
        first = ParallelRunner(jobs=1, engine=engine).run(
            jobs, checkpoint=checkpoint
        )
        assert engine.stats.counter("parallel.checkpointed") == 1
        resumed_engine = Engine()
        second = ParallelRunner(jobs=1, engine=resumed_engine).run(
            jobs, checkpoint=checkpoint
        )
        assert resumed_engine.stats.counter("parallel.resumed") == 1
        assert resumed_engine.stats.counter("parallel.jobs") == 0
        # no generation work happened on the resumed engine
        assert resumed_engine.stats.counter("justify.calls") == 0
        assert (
            second[0].basic.outcomes["values"].tests
            == first[0].basic.outcomes["values"].tests
        )

    def test_killed_run_resumes_identically(
        self, tmp_path, monkeypatch, serial_results
    ):
        """The acceptance scenario: a --jobs 4 run dies after the first
        circuit completes; rerunning with resume=True yields canonical
        output byte-identical to an uninterrupted run."""
        ckpt = tmp_path / "ckpt"
        monkeypatch.setenv("REPRO_INJECT_FAIL", "b03_proxy")
        with pytest.raises(ParallelRunError) as excinfo:
            run_all(
                TINY,
                circuits=CIRCUITS,
                table6_circuits=CIRCUITS,
                jobs=4,
                checkpoint_dir=str(ckpt),
                max_retries=0,
            )
        assert "b03_proxy" in str(excinfo.value)
        assert (ckpt / "s27.json").exists()
        assert not (ckpt / "b03_proxy.json").exists()
        monkeypatch.delenv("REPRO_INJECT_FAIL")
        engine = Engine()
        resumed = run_all(
            TINY,
            circuits=CIRCUITS,
            table6_circuits=CIRCUITS,
            jobs=4,
            checkpoint_dir=str(ckpt),
            resume=True,
            engine=engine,
        )
        assert engine.stats.counter("parallel.resumed") == 1
        assert resumed.canonical_json() == serial_results.canonical_json()

    def test_fresh_run_clears_stale_checkpoints(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "bogus.json").write_text("{}")
        run_all(
            TINY,
            circuits=("s27",),
            table6_circuits=("s27",),
            jobs=1,
            checkpoint_dir=str(ckpt),
        )
        assert not (ckpt / "bogus.json").exists()
        assert (ckpt / "s27.json").exists()

    def test_resume_without_dir_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_all(TINY, circuits=("s27",), table6_circuits=(), resume=True)


class TestJobRecords:
    """The journal seam: every completed job leaves a record on the
    engine with its identity and wall clock."""

    def test_records_key_kind_and_wall_seconds(self):
        engine = Engine()
        ParallelRunner(jobs=1, engine=engine).run(_values_jobs())
        assert [r["key"] for r in engine.job_records] == list(CIRCUITS)
        assert all(r["kind"] == "circuit" for r in engine.job_records)
        assert all(r["wall_seconds"] > 0 for r in engine.job_records)

    def test_pool_path_also_records(self):
        engine = Engine()
        ParallelRunner(jobs=2, engine=engine).run(_values_jobs())
        assert sorted(r["key"] for r in engine.job_records) == sorted(CIRCUITS)

    def test_resumed_jobs_flagged(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        jobs = _values_jobs(("s27",))
        ParallelRunner(jobs=1, engine=Engine()).run(jobs, checkpoint=checkpoint)
        engine = Engine()
        ParallelRunner(jobs=1, engine=engine).run(jobs, checkpoint=checkpoint)
        [record] = engine.job_records
        assert record["resumed"] is True
        assert "wall_seconds" not in record

    def test_engines_without_the_attribute_tolerated(self):
        class BareEngine(Engine):
            def __init__(self):
                super().__init__()
                del self.job_records

        engine = BareEngine()
        results = ParallelRunner(jobs=1, engine=engine).run(_values_jobs(("s27",)))
        assert results[0].basic is not None


class TestStatsMerge:
    def test_merge_sums_counters_and_timers(self):
        parent, worker1, worker2 = EngineStats(), EngineStats(), EngineStats()
        parent.count("enumerate.miss")
        parent.add_time("generate", 1.0)
        worker1.count("enumerate.miss", 2)
        worker1.add_time("generate", 0.5)
        worker1.add_time("enumerate", 0.25)
        worker2.count("batch.runs", 7)
        worker2.add_time("generate", 0.25)
        parent.merge(worker1)
        parent.merge(worker2)
        assert parent.counter("enumerate.miss") == 3
        assert parent.counter("batch.runs") == 7
        assert parent.timers["generate"] == pytest.approx(1.75)
        assert parent.timers["enumerate"] == pytest.approx(0.25)

    def test_merge_empty_is_noop(self):
        parent = EngineStats()
        parent.count("x")
        snapshot = parent.snapshot()
        parent.merge(EngineStats())
        assert parent.snapshot() == snapshot
