"""Heartbeat writer and watchdog classification."""

import os
import time

import pytest

from repro.parallel.heartbeat import (
    HeartbeatWriter,
    Watchdog,
    heartbeat_path,
)


class TestHeartbeatPath:
    def test_plain_key(self, tmp_path):
        assert heartbeat_path(tmp_path, "s27") == tmp_path / "s27.hb"

    def test_shard_key_matches_checkpoint_mapping(self, tmp_path):
        assert (
            heartbeat_path(tmp_path, "b03_proxy#2")
            == tmp_path / "b03_proxy.shard2.hb"
        )


class TestHeartbeatWriter:
    def test_first_beat_is_synchronous(self, tmp_path):
        path = tmp_path / "job.hb"
        with HeartbeatWriter(path, interval=60.0):
            assert path.exists()  # no waiting for the thread

    def test_beats_advance_mtime(self, tmp_path):
        path = tmp_path / "job.hb"
        with HeartbeatWriter(path, interval=0.05):
            first = path.stat().st_mtime
            deadline = time.time() + 5.0
            while path.stat().st_mtime <= first:
                assert time.time() < deadline, "no second beat arrived"
                time.sleep(0.02)

    def test_stops_beating_after_exit(self, tmp_path):
        path = tmp_path / "job.hb"
        with HeartbeatWriter(path, interval=0.05):
            pass
        last = path.stat().st_mtime
        time.sleep(0.2)
        assert path.stat().st_mtime == last

    def test_rejects_nonpositive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            HeartbeatWriter(tmp_path / "x.hb", interval=0)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "job.hb"
        HeartbeatWriter(path).beat()
        assert path.exists()


class TestWatchdog:
    def test_never_started_is_not_stuck(self, tmp_path):
        dog = Watchdog(tmp_path, stale_after=0.1)
        assert dog.age("ghost", time.time()) is None
        assert not dog.is_stuck("ghost", time.time())

    def test_fresh_beat_is_alive(self, tmp_path):
        HeartbeatWriter(heartbeat_path(tmp_path, "s27")).beat()
        dog = Watchdog(tmp_path, stale_after=30.0)
        assert not dog.is_stuck("s27", time.time())

    def test_silent_beat_is_stuck(self, tmp_path):
        path = heartbeat_path(tmp_path, "s27")
        HeartbeatWriter(path).beat()
        old = time.time() - 100.0
        os.utime(path, (old, old))
        dog = Watchdog(tmp_path, stale_after=30.0)
        assert dog.is_stuck("s27", time.time())

    def test_classify_splits_three_ways(self, tmp_path):
        stale = heartbeat_path(tmp_path, "stuck#0")
        HeartbeatWriter(stale).beat()
        old = time.time() - 100.0
        os.utime(stale, (old, old))
        HeartbeatWriter(heartbeat_path(tmp_path, "alive")).beat()
        dog = Watchdog(tmp_path, stale_after=30.0)
        alive, stuck = dog.classify(["alive", "stuck#0", "unstarted"], time.time())
        assert alive == ["alive", "unstarted"]
        assert stuck == ["stuck#0"]

    def test_rejects_nonpositive_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            Watchdog(tmp_path, stale_after=0)
