"""Tests for intra-circuit fault sharding and its deterministic merge.

The determinism contract: with sharding enabled, the merged output is
byte-identical (under ``canonical_json``) for **every** combination of
shard count and worker count -- ``shards=1, jobs=1`` is the serial
reference.  Awkward geometry (shard counts that do not divide the pool,
empty shards, plans collapsed by ``min_faults``) must change nothing but
the wall clock.
"""

from dataclasses import asdict

import pytest

from repro.atpg import PrimaryOutcome
from repro.engine import Engine
from repro.experiments import ExperimentScale, run_all
from repro.faults.universe import effective_shard_count, shard_slice
from repro.parallel import (
    CircuitJob,
    FaultShardJob,
    ParallelRunError,
    ParallelRunner,
    RunCheckpoint,
    ShardJobResult,
    ShardSweep,
    merge_shard_results,
)

TINY = ExperimentScale(
    name="tiny", max_faults=120, p0_min_faults=30, max_secondary_attempts=4, seed=1
)
CIRCUITS = ("s27", "b03_proxy")


# ----------------------------------------------------------------------
# Shard planning helpers
# ----------------------------------------------------------------------


class TestShardPlan:
    def test_effective_count_caps_at_pool_size(self):
        assert effective_shard_count(5, 8) == 5
        assert effective_shard_count(8, 8) == 8

    def test_min_faults_collapses_plan(self):
        assert effective_shard_count(32, 8, min_faults=10) == 3
        assert effective_shard_count(32, 8, min_faults=1000) == 1

    def test_empty_pool_still_one_shard(self):
        assert effective_shard_count(0, 4) == 1

    def test_slices_partition_the_pool(self):
        for n in (0, 1, 7, 32):
            for k in (1, 2, 3, 5, 64):
                slices = [list(shard_slice(n, i, k)) for i in range(k)]
                flat = sorted(x for s in slices for x in s)
                assert flat == list(range(n))

    def test_collapsed_plan_empties_high_shards(self):
        # k_eff = 3: shards 3.. own nothing.
        assert list(shard_slice(32, 3, 8, min_faults=10)) == []
        assert len(list(shard_slice(32, 0, 8, min_faults=10))) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_slice(10, 2, 2)  # index out of range
        with pytest.raises(ValueError):
            effective_shard_count(10, 0)
        with pytest.raises(ValueError):
            FaultShardJob("s27", TINY, shard_index=2, shard_count=2)
        with pytest.raises(ValueError):
            FaultShardJob("s27", TINY, shard_index=0, shard_count=1, min_faults=0)

    def test_job_key(self):
        job = FaultShardJob("s27", TINY, shard_index=1, shard_count=4)
        assert job.key == "s27#1"


# ----------------------------------------------------------------------
# Deterministic merge (pure unit tests on hand-built outcomes)
# ----------------------------------------------------------------------


def _outcome(index, uid, status="found", detected=(), reason=None, phase=None):
    return PrimaryOutcome(
        index=index,
        uid=uid,
        status=status,
        detected=list(detected),
        reason=reason,
        phase=phase,
        fault=f"f{uid}",
    )


def _shard_result(index, count, outcomes, p0_total=4, p01_total=6):
    return ShardJobResult(
        circuit="s27",
        shard_index=index,
        shard_count=count,
        meta={
            "i0": 2,
            "p0_total": p0_total,
            "p01_total": p01_total,
            "universe": "abc",
        },
        basic={"values": ShardSweep(outcomes=outcomes, seconds=0.5)},
    )


class TestMergeSemantics:
    def test_accidental_detection_skips_later_primary(self):
        # Primary 0 accidentally detects uid 1; primary 1's own test must
        # be discarded even though its shard computed one.
        a = _shard_result(0, 2, [
            _outcome(0, 0, detected=[0, 1, 5]),
            _outcome(2, 2, detected=[2]),
        ])
        b = _shard_result(1, 2, [
            _outcome(1, 1, detected=[1, 3]),
            _outcome(3, 3, detected=[3]),
        ])
        basic, table6 = merge_shard_results([a, b])
        assert table6 is None
        outcome = basic.outcomes["values"]
        assert outcome.tests == 3  # primaries 0, 2, 3; primary 1 skipped
        assert outcome.detected_p01 == 5  # {0,1,5,2,3}
        assert outcome.detected_p0 == 4  # uids < p0_total=4
        assert outcome.runtime_seconds == pytest.approx(1.0)

    def test_merge_is_shard_order_independent(self):
        a = _shard_result(0, 2, [_outcome(0, 0, detected=[0, 1]),
                                 _outcome(2, 2, detected=[2])])
        b = _shard_result(1, 2, [_outcome(1, 1, detected=[1]),
                                 _outcome(3, 3, status="failed")])
        first, _ = merge_shard_results([a, b])
        second, _ = merge_shard_results([b, a])
        assert asdict(first) == asdict(second)

    def test_abort_of_already_dead_primary_is_moot(self):
        a = _shard_result(0, 2, [
            _outcome(0, 0, detected=[0, 1]),
            _outcome(2, 2, status="aborted", reason="DEADLINE", phase="generate"),
        ])
        b = _shard_result(1, 2, [
            _outcome(1, 1, status="aborted", reason="DEADLINE", phase="generate"),
            _outcome(3, 3, status="failed"),
        ])
        basic, _ = merge_shard_results([a, b])
        outcome = basic.outcomes["values"]
        assert outcome.tests == 1
        assert outcome.aborted == 1  # uid 1 was already dead; only uid 2 counts

    def test_global_abort_cap_enforced_at_merge(self):
        # Budget.split floors every share at 1, so 4 shards under
        # abort_limit=2 may abort up to 4 faults together.  The merge
        # re-applies the parent cap: only the first two aborts in
        # canonical pool order are counted and listed.
        shards = [
            _shard_result(
                i,
                4,
                [_outcome(i, i, status="aborted", reason="node_limit",
                          phase="justify")],
            )
            for i in range(4)
        ]
        basic, _ = merge_shard_results(shards, abort_limit=2)
        outcome = basic.outcomes["values"]
        assert outcome.aborted == 2

    def test_abort_cap_truncates_table6_rows_in_pool_order(self):
        shards = []
        for i in range(3):
            shard = _shard_result(i, 3, [], p0_total=3)
            shard.basic = {}
            shard.table6 = ShardSweep(
                outcomes=[
                    _outcome(i, i, status="aborted", reason="node_limit",
                             phase="justify")
                ],
                seconds=0.1,
            )
            shards.append(shard)
        _, table6 = merge_shard_results(shards[::-1], abort_limit=2)
        assert table6.aborted == 2
        assert [row[0] for row in table6.aborted_faults] == ["f0", "f1"]

    def test_no_cap_keeps_every_abort(self):
        shards = [
            _shard_result(
                i,
                3,
                [_outcome(i, i, status="aborted", reason="node_limit",
                          phase="justify")],
                p0_total=3,
            )
            for i in range(3)
        ]
        basic, _ = merge_shard_results(shards)
        assert basic.outcomes["values"].aborted == 3

    def test_duplicate_index_rejected(self):
        a = _shard_result(0, 2, [_outcome(0, 0), _outcome(1, 1)])
        b = _shard_result(1, 2, [_outcome(1, 1), _outcome(2, 2),
                                 _outcome(3, 3)])
        with pytest.raises(ValueError, match="partition"):
            merge_shard_results([a, b])

    def test_missing_index_rejected(self):
        a = _shard_result(0, 2, [_outcome(0, 0)])
        b = _shard_result(1, 2, [_outcome(1, 1), _outcome(3, 3)])
        with pytest.raises(ValueError, match="partition"):
            merge_shard_results([a, b])

    def test_missing_shard_rejected(self):
        a = _shard_result(0, 3, [_outcome(i, i) for i in range(4)])
        c = _shard_result(2, 3, [])
        with pytest.raises(ValueError, match="expected shards"):
            merge_shard_results([a, c])

    def test_universe_disagreement_rejected(self):
        a = _shard_result(0, 2, [_outcome(0, 0), _outcome(1, 1)])
        b = _shard_result(1, 2, [_outcome(2, 2), _outcome(3, 3)])
        b.meta = dict(b.meta, universe="different")
        with pytest.raises(ValueError, match="metadata"):
            merge_shard_results([a, b])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_shard_results([])


class TestPayloadRoundtrip:
    def test_primary_outcome_roundtrip(self):
        outcome = _outcome(3, 7, status="aborted", detected=[1, 2],
                           reason="DEADLINE", phase="generate")
        rebuilt = PrimaryOutcome.from_payload(outcome.to_payload())
        assert rebuilt == outcome

    def test_primary_outcome_rejects_unknown_status(self):
        payload = _outcome(0, 0).to_payload()
        payload[2] = "exploded"
        with pytest.raises(ValueError):
            PrimaryOutcome.from_payload(payload)

    def test_shard_result_roundtrip(self):
        result = _shard_result(1, 2, [_outcome(1, 1, detected=[1, 4])])
        result.table6 = ShardSweep(outcomes=[_outcome(3, 3)], seconds=0.25)
        result.wall_seconds = 1.5
        rebuilt = ShardJobResult.from_payload(result.to_payload())
        assert rebuilt.to_payload() == result.to_payload()
        assert rebuilt.key == "s27#1"


# ----------------------------------------------------------------------
# End-to-end identity matrix
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sharded_reference():
    """The sharded serial reference: ``shards=1, jobs=1``."""
    return run_all(
        TINY, circuits=CIRCUITS, table6_circuits=CIRCUITS, jobs=1, shards=1
    )


class TestShardIdentity:
    @pytest.mark.parametrize("shards,jobs", [(2, 2), (3, 1), (1, 2)])
    def test_output_independent_of_geometry(
        self, sharded_reference, shards, jobs
    ):
        result = run_all(
            TINY,
            circuits=CIRCUITS,
            table6_circuits=CIRCUITS,
            jobs=jobs,
            shards=shards,
        )
        assert result.canonical_json() == sharded_reference.canonical_json()

    def test_circuit_order_preserved(self, sharded_reference):
        assert tuple(sharded_reference.basic) == CIRCUITS
        assert tuple(r.circuit for r in sharded_reference.table6) == CIRCUITS

    def test_rejects_bad_shard_arguments(self):
        with pytest.raises(ValueError):
            run_all(TINY, circuits=("s27",), table6_circuits=(), shards=0)
        with pytest.raises(ValueError):
            run_all(
                TINY,
                circuits=("s27",),
                table6_circuits=(),
                shards=1,
                shard_min_faults=0,
            )


def _shard_jobs(k, circuit="s27", min_faults=1, **kwargs):
    kwargs.setdefault("heuristics", ("values",))
    kwargs.setdefault("run_basic", True)
    return [
        FaultShardJob(
            circuit=circuit,
            scale=TINY,
            shard_index=index,
            shard_count=k,
            min_faults=min_faults,
            **kwargs,
        )
        for index in range(k)
    ]


def _merged_basic(results):
    basic, _ = merge_shard_results(results)
    payload = asdict(basic)
    for outcome in payload["outcomes"].values():
        outcome["runtime_seconds"] = 0.0
    return payload


@pytest.fixture(scope="module")
def s27_values_reference():
    results = ParallelRunner(jobs=1, engine=Engine()).run(_shard_jobs(1))
    return _merged_basic(results)


class TestAwkwardGeometry:
    def test_more_shards_than_faults(self, s27_values_reference):
        # |P0| = 32 at this scale; with min_faults=10 only 3 of the 8
        # shards own any primaries and the other 5 ship empty sweeps.
        results = ParallelRunner(jobs=1, engine=Engine()).run(
            _shard_jobs(8, min_faults=10)
        )
        empty = [r for r in results if not r.basic["values"].outcomes]
        assert len(empty) == 5
        assert _merged_basic(results) == s27_values_reference

    def test_huge_min_faults_collapses_to_single_shard(
        self, s27_values_reference
    ):
        results = ParallelRunner(jobs=1, engine=Engine()).run(
            _shard_jobs(4, min_faults=10_000)
        )
        # shard 0 owns everything, the rest are empty
        assert len(results[0].basic["values"].outcomes) > 0
        assert all(not r.basic["values"].outcomes for r in results[1:])
        assert _merged_basic(results) == s27_values_reference

    def test_indivisible_shard_count(self, s27_values_reference):
        results = ParallelRunner(jobs=1, engine=Engine()).run(_shard_jobs(5))
        sizes = [len(r.basic["values"].outcomes) for r in results]
        assert sum(sizes) == 32 and max(sizes) - min(sizes) <= 1
        assert _merged_basic(results) == s27_values_reference


# ----------------------------------------------------------------------
# Chaos: shard-targeted failures
# ----------------------------------------------------------------------


class TestShardChaos:
    def test_killed_shard_retried_without_disturbing_siblings(
        self, monkeypatch, s27_values_reference
    ):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27#1:1")  # 1st attempt only
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine, max_retries=1)
        results = runner.run(_shard_jobs(2))
        assert engine.stats.counter("parallel.retries") == 1
        assert engine.stats.counter("parallel.failures") == 0
        assert _merged_basic(results) == s27_values_reference

    def test_exhausted_shard_failure_names_the_shard(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27#1")  # every attempt
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine, max_retries=1)
        with pytest.raises(ParallelRunError) as excinfo:
            runner.run(_shard_jobs(2))
        assert [f.circuit for f in excinfo.value.failures] == ["s27#1"]
        # the sibling shard's finished result is salvaged
        assert [r.key for r in excinfo.value.results] == ["s27#0"]

    def test_dead_shard_worker_salvaged_in_process(
        self, monkeypatch, s27_values_reference
    ):
        monkeypatch.setenv("REPRO_INJECT_EXIT", "s27#1")  # worker dies
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine)
        results = runner.run(_shard_jobs(2))
        assert engine.stats.counter("parallel.pool_broken") >= 1
        assert _merged_basic(results) == s27_values_reference

    def test_bare_circuit_name_targets_every_shard(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27")
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine, max_retries=0)
        with pytest.raises(ParallelRunError) as excinfo:
            runner.run(_shard_jobs(2))
        assert sorted(f.circuit for f in excinfo.value.failures) == [
            "s27#0",
            "s27#1",
        ]


# ----------------------------------------------------------------------
# Shard checkpoints
# ----------------------------------------------------------------------


class TestShardCheckpoints:
    def test_shard_files_are_disjoint_from_circuit_files(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        assert checkpoint.path_for("s27").name == "s27.json"
        assert checkpoint.path_for("s27#2").name == "s27.shard2.json"

    def test_roundtrip_and_resume(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        jobs = _shard_jobs(2)
        engine = Engine()
        first = ParallelRunner(jobs=1, engine=engine).run(
            jobs, checkpoint=checkpoint
        )
        assert engine.stats.counter("parallel.checkpointed") == 2
        assert checkpoint.completed() == {"s27#0", "s27#1"}
        resumed_engine = Engine()
        second = ParallelRunner(jobs=1, engine=resumed_engine).run(
            jobs, checkpoint=checkpoint
        )
        assert resumed_engine.stats.counter("parallel.resumed") == 2
        assert resumed_engine.stats.counter("parallel.jobs") == 0
        assert _merged_basic(second) == _merged_basic(first)

    def test_geometry_change_reads_as_stale(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        ParallelRunner(jobs=1, engine=Engine()).run(
            _shard_jobs(2), checkpoint=checkpoint
        )
        for job in _shard_jobs(3):
            assert checkpoint.load(job) is None
        for job in _shard_jobs(2, min_faults=5):
            assert checkpoint.load(job) is None
        for job in _shard_jobs(2):  # unchanged geometry still resumes
            assert checkpoint.load(job) is not None

    def test_kind_marker_separates_formats(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path)
        (job,) = _shard_jobs(1)
        result = _shard_result(0, 1, [_outcome(i, i) for i in range(4)])
        path = checkpoint.save(result, job)
        # A circuit job keyed like the shard file's stem must not load it.
        import json

        payload = json.loads(path.read_text())
        assert payload["kind"] == "shard"
        circuit_job = CircuitJob("s27", TINY, ("values",), run_basic=True)
        shard_style = checkpoint.path_for(circuit_job.key)
        shard_style.write_text(path.read_text())
        assert checkpoint.load(circuit_job) is None

    def test_killed_sharded_run_resumes_at_shard_granularity(
        self, tmp_path, monkeypatch, sharded_reference
    ):
        ckpt = tmp_path / "ckpt"
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s27#1")
        with pytest.raises(ParallelRunError):
            run_all(
                TINY,
                circuits=("s27",),
                table6_circuits=(),
                jobs=2,
                shards=2,
                checkpoint_dir=str(ckpt),
                max_retries=0,
            )
        assert (ckpt / "s27.shard0.json").exists()
        assert not (ckpt / "s27.shard1.json").exists()
        monkeypatch.delenv("REPRO_INJECT_FAIL")
        engine = Engine()
        resumed = run_all(
            TINY,
            circuits=("s27",),
            table6_circuits=(),
            jobs=2,
            shards=2,
            checkpoint_dir=str(ckpt),
            resume=True,
            engine=engine,
        )
        assert engine.stats.counter("parallel.resumed") == 1
        expected = asdict(sharded_reference.basic["s27"])
        got = asdict(resumed.basic["s27"])
        for payload in (expected, got):
            for outcome in payload["outcomes"].values():
                outcome["runtime_seconds"] = 0.0
        assert got == expected
