"""Property tests: bounded enumeration against a brute-force oracle.

A tiny recursive enumerator (exponential, fine for small circuits) serves
as ground truth for random synthetic circuits: uncapped enumeration must
return exactly the oracle's path set, and capped enumeration must return a
longest-first subset that always contains every critical path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.analysis import distance_to_outputs
from repro.circuit.synth import SynthProfile, generate
from repro.faults import Path
from repro.paths import enumerate_paths


def oracle_paths(netlist):
    """All complete paths by plain recursion."""
    is_output = set(netlist.output_indices)
    results = []

    def extend(prefix):
        node = prefix[-1]
        if node in is_output:
            results.append(tuple(prefix))
        for successor in netlist.fanout(node):
            prefix.append(successor)
            extend(prefix)
            prefix.pop()

    for pi in netlist.input_indices:
        extend([pi])
    return sorted(results)


def tiny_circuit(seed, style):
    if style == "mesh":
        profile = SynthProfile(
            name="oracle", seed=seed, n_inputs=5, n_gates=14, style="mesh", window=6.0
        )
    else:
        profile = SynthProfile(
            name="oracle", seed=seed, n_inputs=6, style="chain", rails=3, depth=5
        )
    return generate(profile)


class TestAgainstOracle:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), style=st.sampled_from(["mesh", "chain"]))
    def test_uncapped_matches_oracle(self, seed, style):
        netlist = tiny_circuit(seed, style)
        expected = oracle_paths(netlist)
        result = enumerate_paths(netlist, max_faults=10_000_000)
        got = sorted(path.nodes for path in result.paths)
        assert got == expected

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        style=st.sampled_from(["mesh", "chain"]),
        cap_paths=st.integers(2, 12),
    )
    def test_capped_keeps_critical_paths(self, seed, style, cap_paths):
        netlist = tiny_circuit(seed, style)
        expected = oracle_paths(netlist)
        if not expected:
            return
        longest = max(len(path) for path in expected)
        critical = {path for path in expected if len(path) == longest}
        result = enumerate_paths(
            netlist, max_faults=2 * cap_paths, use_distances=True
        )
        got = {path.nodes for path in result.paths}
        assert critical <= got
        # Everything returned is a real path.
        assert got <= set(expected)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_reach_estimate_is_exact_upper_bound(self, seed):
        """len(p) = |p| + d(sink) equals the length of the longest oracle
        path extending p (soundness and tightness of Figure 2)."""
        netlist = tiny_circuit(seed, "mesh")
        expected = oracle_paths(netlist)
        if not expected:
            return
        distance = distance_to_outputs(netlist)
        by_prefix = {}
        for path in expected:
            for cut in range(1, len(path) + 1):
                prefix = path[:cut]
                best = by_prefix.get(prefix, 0)
                by_prefix[prefix] = max(best, len(path))
        for prefix, longest_completion in by_prefix.items():
            sink = prefix[-1]
            if distance[sink] < 0:
                continue
            reach = len(prefix) + distance[sink]
            assert reach == longest_completion, prefix
