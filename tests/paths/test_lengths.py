"""Tests for the length table (Table 2 machinery)."""

import pytest

from repro.faults import Path, build_target_sets, faults_of_paths
from repro.paths import (
    LengthTable,
    enumerate_paths,
    length_table_for_faults,
    length_table_for_paths,
)


def make_table(lengths_with_counts):
    """Build a table from {length: n_paths} via synthetic fault lists."""

    class FakeFault:
        def __init__(self, length):
            self.length = length

    faults = []
    for length, count in lengths_with_counts.items():
        faults.extend(FakeFault(length) for _ in range(count))
    return length_table_for_faults(faults)


class TestTableShape:
    def test_rows_sorted_descending(self):
        table = make_table({5: 4, 9: 2, 7: 6})
        assert [row.length for row in table] == [9, 7, 5]
        assert [row.index for row in table] == [0, 1, 2]

    def test_cumulative_counts(self):
        table = make_table({9: 4, 8: 8, 7: 10})
        assert [row.faults for row in table] == [4, 8, 10]
        assert [row.cumulative for row in table] == [4, 12, 22]
        assert table.total_faults == 22

    def test_paper_table2_shape(self):
        # The paper's Table 2 for s1423: N_p grows monotonically as the
        # length bound decreases; mirror the first rows qualitatively.
        table = make_table({96: 4, 95: 8, 94: 10, 93: 14})
        assert [row.cumulative for row in table] == [4, 12, 22, 36]

    def test_empty_table(self):
        table = make_table({})
        assert len(table) == 0
        assert table.total_faults == 0
        assert table.select_index(10) == 0

    def test_format(self):
        table = make_table({9: 4, 8: 8})
        text = table.format()
        assert "L_i" in text and "N_p" in text
        assert "9" in text and "12" in text

    def test_format_truncates(self):
        table = make_table({length: 1 for length in range(1, 40)})
        assert len(table.format(max_rows=5).splitlines()) == 6


class TestSelectIndex:
    def test_paper_selection_rule(self):
        # First index whose cumulative reaches the bound.
        table = make_table({9: 4, 8: 8, 7: 10, 6: 30})
        assert table.select_index(1) == 0
        assert table.select_index(5) == 1
        assert table.select_index(12) == 1
        assert table.select_index(13) == 2
        assert table.select_index(23) == 3

    def test_bound_beyond_population_selects_last(self):
        table = make_table({9: 4, 8: 8})
        assert table.select_index(1000) == 1

    def test_length_at(self):
        table = make_table({9: 4, 8: 8})
        assert table.length_at(0) == 9
        assert table.length_at(1) == 8


class TestFromRealCircuits:
    def test_two_faults_per_path(self, s27):
        result = enumerate_paths(s27, max_faults=10_000)
        by_paths = length_table_for_paths(result.paths)
        by_faults = length_table_for_faults(faults_of_paths(result.paths))
        assert [(r.length, r.cumulative) for r in by_paths] == [
            (r.length, r.cumulative) for r in by_faults
        ]
        assert by_paths.total_faults == 2 * len(result.paths)

    def test_matches_target_sets_i0(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        assert targets.length_table.select_index(20) == targets.i0
