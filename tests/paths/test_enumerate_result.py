"""Tests for EnumerationResult bookkeeping fields."""

from repro.paths import FAULTS_PER_PATH, enumerate_paths


class TestResultFields:
    def test_faults_per_path_constant(self):
        assert FAULTS_PER_PATH == 2

    def test_num_faults(self, s27):
        result = enumerate_paths(s27, max_faults=10_000)
        assert result.num_faults == FAULTS_PER_PATH * len(result.paths)

    def test_uncapped_has_no_pruning(self, s27):
        result = enumerate_paths(s27, max_faults=10_000)
        assert not result.cap_hit
        assert result.pruned_complete == 0
        assert result.pruned_partial == 0

    def test_expansions_counted(self, s27):
        result = enumerate_paths(s27, max_faults=10_000)
        # At least one expansion per non-trivial complete path.
        assert result.expansions >= len(result.paths) - len(s27.input_names)

    def test_empty_length_fields_default(self, s27):
        result = enumerate_paths(s27, max_faults=10_000)
        assert result.min_kept_length <= result.max_kept_length

    def test_capped_prunes_something(self, s27):
        result = enumerate_paths(s27, max_faults=20, use_distances=True)
        assert result.cap_hit
        assert result.pruned_complete + result.pruned_partial > 0
