"""Tests for uniform path sampling."""

import math
import random
from collections import Counter

import pytest

from repro.circuit import count_paths
from repro.paths import PathSampler, enumerate_paths, sample_paths


class TestSampler:
    def test_total_paths_matches_count(self, s27):
        sampler = PathSampler(s27)
        assert sampler.total_paths == count_paths(s27) == 28

    def test_samples_are_valid_complete_paths(self, s27):
        for path in sample_paths(s27, 100, seed=3):
            path.validate(s27)
            assert path.is_complete(s27)

    def test_uniformity_chi_square(self, s27):
        """Empirical distribution over s27's 28 paths is consistent with
        uniform (generous chi-square bound)."""
        sampler = PathSampler(s27)
        rng = random.Random(7)
        draws = 5600  # 200 expected per path
        counts = Counter(
            sampler.sample(rng).nodes for _ in range(draws)
        )
        assert len(counts) == 28  # every path seen
        expected = draws / 28
        chi2 = sum(
            (observed - expected) ** 2 / expected for observed in counts.values()
        )
        # 27 degrees of freedom; the 0.999 quantile is ~55.5.
        assert chi2 < 56, chi2

    def test_unique_sampling(self, s27):
        paths = sample_paths(s27, 20, seed=1, unique=True)
        assert len({p.nodes for p in paths}) == len(paths) == 20

    def test_unique_cannot_exceed_population(self, s27):
        paths = sample_paths(s27, 100, seed=1, unique=True)
        assert len(paths) <= 28

    def test_deterministic_by_seed(self, tiny_chain):
        assert sample_paths(tiny_chain, 10, seed=5) == sample_paths(
            tiny_chain, 10, seed=5
        )

    def test_sampled_paths_exist_in_enumeration(self, s27):
        full = {p.nodes for p in enumerate_paths(s27, max_faults=10_000).paths}
        for path in sample_paths(s27, 50, seed=2):
            assert path.nodes in full

    def test_no_paths_raises(self):
        from repro.circuit import GateType, Netlist

        netlist = Netlist("nopaths")
        netlist.add_input("a")
        netlist.add_gate("dead", GateType.NOT, ["a"])
        netlist.add_gate("g", GateType.CONST1, [])
        netlist.add_output("g")  # output unreachable from any input
        netlist.freeze()
        sampler = PathSampler(netlist)
        assert sampler.total_paths == 0
        with pytest.raises(ValueError):
            sampler.sample(random.Random(0))

    def test_huge_population_no_overflow(self):
        # Path counts beyond float range must still sample fine (bigints).
        from repro.circuit import load_circuit

        netlist = load_circuit("mesh_deep")  # ~1e11 paths
        sampler = PathSampler(netlist)
        assert sampler.total_paths > 10**9
        paths = sampler.sample_many(5, random.Random(0))
        for path in paths:
            path.validate(netlist)
