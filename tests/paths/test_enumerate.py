"""Tests for bounded path enumeration."""

import pytest

from repro.circuit import GateType, build_netlist, count_paths
from repro.paths import EnumerationOverflow, enumerate_paths


class TestFullEnumeration:
    def test_s27_complete(self, s27):
        result = enumerate_paths(s27, max_faults=10_000)
        assert len(result.paths) == count_paths(s27) == 28
        assert not result.cap_hit
        assert result.num_faults == 56

    def test_paths_are_valid_and_complete(self, s27):
        result = enumerate_paths(s27, max_faults=10_000)
        for path in result.paths:
            path.validate(s27)
            assert path.is_complete(s27)

    def test_sorted_longest_first(self, s27):
        result = enumerate_paths(s27, max_faults=10_000)
        lengths = [p.length for p in result.paths]
        assert lengths == sorted(lengths, reverse=True)
        assert result.max_kept_length == 7
        assert result.min_kept_length == 2

    def test_no_duplicates(self, tiny_chain):
        result = enumerate_paths(tiny_chain, max_faults=10_000_000)
        assert len(set(result.paths)) == len(result.paths)

    @pytest.mark.parametrize("use_distances", [False, True])
    def test_both_variants_find_everything_uncapped(self, s27, use_distances):
        result = enumerate_paths(
            s27, max_faults=10_000, use_distances=use_distances
        )
        assert len(result.paths) == 28


class TestCapping:
    @pytest.mark.parametrize("use_distances", [False, True])
    def test_cap_respected(self, s27, use_distances):
        result = enumerate_paths(s27, max_faults=40, use_distances=use_distances)
        assert result.cap_hit
        assert result.num_faults < 40

    @pytest.mark.parametrize("use_distances", [False, True])
    def test_longest_paths_never_dropped(self, s27, use_distances):
        capped = enumerate_paths(s27, max_faults=40, use_distances=use_distances)
        full = enumerate_paths(s27, max_faults=10_000)
        longest = [p for p in full.paths if p.length == 7]
        for path in longest:
            assert path in capped.paths

    def test_distance_variant_prunes_partials(self, tiny_chain):
        result = enumerate_paths(tiny_chain, max_faults=60, use_distances=True)
        assert result.cap_hit
        # The distance-based variant may prune partial paths too.
        assert result.pruned_partial + result.pruned_complete > 0

    def test_capped_set_is_longest_subset(self, tiny_chain):
        """Distance-based capping keeps a top slice of the length ordering:
        every kept path must be at least as long as the (max_faults/2)-th
        longest path of the full population."""
        full = enumerate_paths(tiny_chain, max_faults=100_000_000)
        capped = enumerate_paths(tiny_chain, max_faults=80, use_distances=True)
        assert capped.paths, "cap should leave something"
        lengths = sorted((p.length for p in full.paths), reverse=True)
        threshold = lengths[min(40, len(lengths)) - 1]
        assert all(p.length >= threshold for p in capped.paths)

    def test_tiny_cap_keeps_critical_paths(self, s27):
        result = enumerate_paths(s27, max_faults=10, use_distances=True)
        assert result.paths
        assert all(p.length == 7 for p in result.paths)

    def test_invalid_cap_rejected(self, s27):
        with pytest.raises(ValueError):
            enumerate_paths(s27, max_faults=1)

    def test_basic_variant_overflow_guard(self, tiny_chain):
        with pytest.raises(EnumerationOverflow):
            enumerate_paths(
                tiny_chain,
                max_faults=4,
                use_distances=False,
                max_expansions=20,
            )


class TestEdgeCases:
    def test_input_that_is_output(self):
        netlist = build_netlist(
            "wire",
            inputs=["a"],
            gates=[("g", GateType.NOT, ["a"])],
            outputs=["a", "g"],
        )
        result = enumerate_paths(netlist, max_faults=100)
        lengths = sorted(p.length for p in result.paths)
        assert lengths == [1, 2]  # (a) itself and (a, g)

    def test_dead_logic_ignored(self):
        netlist = build_netlist(
            "dead",
            inputs=["a", "b"],
            gates=[
                ("live", GateType.AND, ["a", "b"]),
                ("dead", GateType.NOT, ["b"]),
            ],
            outputs=["live"],
        )
        result = enumerate_paths(netlist, max_faults=100)
        for path in result.paths:
            assert netlist.index_of("dead") not in path.nodes
        assert len(result.paths) == 2

    def test_pseudo_output_continuation(self):
        # Output node with fanout: both the path ending there and the
        # longer continuation must be enumerated.
        netlist = build_netlist(
            "pseudo",
            inputs=["a"],
            gates=[
                ("g1", GateType.NOT, ["a"]),
                ("g2", GateType.NOT, ["g1"]),
            ],
            outputs=["g1", "g2"],
        )
        result = enumerate_paths(netlist, max_faults=100)
        lengths = sorted(p.length for p in result.paths)
        assert lengths == [2, 3]
