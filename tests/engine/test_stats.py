"""Tests for the EngineStats instrumentation object."""

from repro.engine import EngineStats


class TestCounters:
    def test_count_and_read(self):
        stats = EngineStats()
        assert stats.counter("x") == 0
        stats.count("x")
        stats.count("x", 4)
        assert stats.counter("x") == 5

    def test_hit_miss_convention(self):
        stats = EngineStats()
        stats.miss("enumerate")
        stats.hit("enumerate")
        stats.hit("enumerate")
        assert stats.hits("enumerate") == 2
        assert stats.misses("enumerate") == 1
        assert stats.counter("enumerate.hit") == 2


class TestTimers:
    def test_timer_accumulates(self):
        stats = EngineStats()
        with stats.timer("work"):
            pass
        first = stats.timers["work"]
        assert first >= 0.0
        with stats.timer("work"):
            pass
        assert stats.timers["work"] >= first

    def test_timer_records_on_exception(self):
        stats = EngineStats()
        try:
            with stats.timer("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in stats.timers


class TestReporting:
    def test_merge(self):
        a, b = EngineStats(), EngineStats()
        a.count("x", 2)
        b.count("x", 3)
        b.count("y")
        b.add_time("t", 1.5)
        a.merge(b)
        assert a.counter("x") == 5
        assert a.counter("y") == 1
        assert a.timers["t"] == 1.5

    def test_snapshot_is_plain_and_sorted(self):
        stats = EngineStats()
        stats.count("b")
        stats.count("a")
        stats.add_time("t", 0.25)
        snap = stats.snapshot()
        assert snap == {
            "counters": {"a": 1, "b": 1},
            "timers": {"t": 0.25},
            "origin": stats.origin,
        }
        assert list(snap["counters"]) == ["a", "b"]

    def test_from_snapshot_roundtrip(self):
        stats = EngineStats()
        stats.count("parallel.jobs", 3)
        stats.count("justify.calls", 7)
        stats.add_time("session", 1.25)
        stats.max_time("shard.wall", 2.0)
        rebuilt = EngineStats.from_snapshot(stats.snapshot())
        assert rebuilt.snapshot() == stats.snapshot()
        assert rebuilt.origin == stats.origin
        # the rebuilt object is live, not a frozen view
        rebuilt.count("parallel.jobs")
        assert rebuilt.counter("parallel.jobs") == 4

    def test_from_snapshot_empty(self):
        rebuilt = EngineStats.from_snapshot({})
        snap = rebuilt.snapshot()
        assert snap["counters"] == {}
        assert snap["timers"] == {}
        assert "maxima" not in snap

    def test_format_empty(self):
        assert "no activity" in EngineStats().format()

    def test_format_lists_maxima(self):
        stats = EngineStats()
        stats.max_time("shard.wall", 1.5)
        assert "maxima (s):" in stats.format()
        assert "shard.wall" in stats.format()

    def test_format_lists_counters_and_timers(self):
        stats = EngineStats()
        stats.count("enumerate.miss")
        stats.add_time("enumerate", 0.5)
        text = stats.format()
        assert "enumerate.miss" in text
        assert "timers (s):" in text


class TestMaxTimers:
    def test_max_time_keeps_largest(self):
        stats = EngineStats()
        stats.max_time("shard.wall", 1.0)
        stats.max_time("shard.wall", 3.0)
        stats.max_time("shard.wall", 2.0)
        assert stats.maxima["shard.wall"] == 3.0

    def test_merge_takes_max_not_sum(self):
        parent, worker = EngineStats(), EngineStats()
        parent.max_time("shard.wall", 2.0)
        worker.max_time("shard.wall", 1.0)
        worker.max_time("shard.other", 4.0)
        parent.merge(worker)
        assert parent.maxima["shard.wall"] == 2.0
        assert parent.maxima["shard.other"] == 4.0


class TestMergeIdempotency:
    """Regression: folding worker snapshots must never double-count.

    The parallel runner folds every worker result's stats into the parent
    engine; a seam that re-folds a snapshot (e.g. on retry bookkeeping or
    a checkpoint reload) must be a no-op for counters, sum-semantics
    timers and max-semantics timers alike.
    """

    @staticmethod
    def _worker(n):
        worker = EngineStats()
        worker.count("justify.calls", 10 * n)
        worker.add_time("generate", 0.5 * n)
        worker.max_time("shard.wall", float(n))
        return worker

    def test_refolding_workers_is_idempotent(self):
        parent = EngineStats()
        workers = [self._worker(n) for n in (1, 2, 3)]
        for worker in workers:
            parent.merge(worker)
        reference = parent.snapshot()
        for worker in workers:  # second fold of the same objects
            parent.merge(worker)
        assert parent.snapshot() == reference
        assert parent.counter("justify.calls") == 60
        assert parent.maxima["shard.wall"] == 3.0

    def test_refolding_snapshot_roundtrips_is_idempotent(self):
        parent = EngineStats()
        workers = [self._worker(n) for n in (1, 2)]
        for worker in workers:
            parent.merge(EngineStats.from_snapshot(worker.snapshot()))
        reference = parent.snapshot()
        for worker in workers:  # snapshots carry the origin token
            parent.merge(EngineStats.from_snapshot(worker.snapshot()))
        assert parent.snapshot() == reference

    def test_merging_the_merged_snapshot_back_is_noop(self):
        parent = EngineStats()
        for worker in (self._worker(1), self._worker(2)):
            parent.merge(worker)
        reference = parent.snapshot()
        parent.merge(EngineStats.from_snapshot(parent.snapshot()))
        assert parent.snapshot() == reference

    def test_self_merge_is_noop(self):
        stats = EngineStats()
        stats.count("x", 2)
        stats.merge(stats)
        assert stats.counter("x") == 2

    def test_transitively_merged_origins_are_deduplicated(self):
        # parent <- mid <- leaf, then parent <- leaf directly: the leaf's
        # events must land exactly once.
        leaf = self._worker(1)
        mid = EngineStats()
        mid.merge(leaf)
        parent = EngineStats()
        parent.merge(mid)
        parent.merge(leaf)
        assert parent.counter("justify.calls") == 10

    def test_distinct_objects_still_accumulate(self):
        parent = EngineStats()
        parent.merge(self._worker(1))
        parent.merge(self._worker(1))  # same shape, different origin
        assert parent.counter("justify.calls") == 20
