"""Tests for the EngineStats instrumentation object."""

from repro.engine import EngineStats


class TestCounters:
    def test_count_and_read(self):
        stats = EngineStats()
        assert stats.counter("x") == 0
        stats.count("x")
        stats.count("x", 4)
        assert stats.counter("x") == 5

    def test_hit_miss_convention(self):
        stats = EngineStats()
        stats.miss("enumerate")
        stats.hit("enumerate")
        stats.hit("enumerate")
        assert stats.hits("enumerate") == 2
        assert stats.misses("enumerate") == 1
        assert stats.counter("enumerate.hit") == 2


class TestTimers:
    def test_timer_accumulates(self):
        stats = EngineStats()
        with stats.timer("work"):
            pass
        first = stats.timers["work"]
        assert first >= 0.0
        with stats.timer("work"):
            pass
        assert stats.timers["work"] >= first

    def test_timer_records_on_exception(self):
        stats = EngineStats()
        try:
            with stats.timer("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in stats.timers


class TestReporting:
    def test_merge(self):
        a, b = EngineStats(), EngineStats()
        a.count("x", 2)
        b.count("x", 3)
        b.count("y")
        b.add_time("t", 1.5)
        a.merge(b)
        assert a.counter("x") == 5
        assert a.counter("y") == 1
        assert a.timers["t"] == 1.5

    def test_snapshot_is_plain_and_sorted(self):
        stats = EngineStats()
        stats.count("b")
        stats.count("a")
        stats.add_time("t", 0.25)
        snap = stats.snapshot()
        assert snap == {"counters": {"a": 1, "b": 1}, "timers": {"t": 0.25}}
        assert list(snap["counters"]) == ["a", "b"]

    def test_from_snapshot_roundtrip(self):
        stats = EngineStats()
        stats.count("parallel.jobs", 3)
        stats.count("justify.calls", 7)
        stats.add_time("session", 1.25)
        rebuilt = EngineStats.from_snapshot(stats.snapshot())
        assert rebuilt.snapshot() == stats.snapshot()
        # the rebuilt object is live, not a frozen view
        rebuilt.count("parallel.jobs")
        assert rebuilt.counter("parallel.jobs") == 4

    def test_from_snapshot_empty(self):
        rebuilt = EngineStats.from_snapshot({})
        assert rebuilt.snapshot() == {"counters": {}, "timers": {}}

    def test_format_empty(self):
        assert "no activity" in EngineStats().format()

    def test_format_lists_counters_and_timers(self):
        stats = EngineStats()
        stats.count("enumerate.miss")
        stats.add_time("enumerate", 0.5)
        text = stats.format()
        assert "enumerate.miss" in text
        assert "timers (s):" in text
