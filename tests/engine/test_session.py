"""Tests for the CircuitSession/Engine layer: cache-hit semantics,
cross-entry-point reuse, and EngineStats counter correctness."""

import pytest

from repro.api import basic_atpg_circuit, enrich_circuit, prepare_targets
from repro.engine import CircuitSession, Engine, EngineStats
from repro.experiments import ExperimentScale, run_basic_experiments, run_table6
from repro.sim import FaultSimulator, detected_count, detection_matrix

TINY = ExperimentScale(
    name="tiny", max_faults=120, p0_min_faults=30, max_secondary_attempts=4, seed=1
)


class TestArtifactMemoization:
    def test_simulator_is_memoized(self):
        session = CircuitSession("c17")
        assert session.simulator is session.simulator
        assert session.stats.counter("simulator.build") == 1

    def test_justifier_is_memoized_and_shares_simulator(self):
        session = CircuitSession("c17")
        justifier = session.justifier
        assert justifier is session.justifier
        assert justifier.simulator is session.simulator
        assert session.stats.counter("justifier.build") == 1

    def test_enumeration_cache_same_key_same_object(self):
        session = CircuitSession("s27")
        first = session.enumeration(100)
        assert session.enumeration(100) is first
        assert session.stats.misses("enumerate") == 1
        assert session.stats.hits("enumerate") == 1

    def test_enumeration_cache_key_includes_variant(self):
        session = CircuitSession("s27")
        with_distances = session.enumeration(40, use_distances=True)
        without = session.enumeration(40, use_distances=False)
        assert with_distances is not without
        assert session.stats.misses("enumerate") == 2

    def test_target_sets_same_key_same_object(self, s27):
        session = CircuitSession(s27)
        first = session.target_sets(max_faults=100, p0_min_faults=20)
        second = session.target_sets(max_faults=100, p0_min_faults=20)
        assert first is second
        assert session.stats.misses("target_sets") == 1
        assert session.stats.hits("target_sets") == 1
        # The single path enumeration backs both calls.
        assert session.stats.misses("enumerate") == 1

    def test_target_sets_different_key_is_miss(self, s27):
        session = CircuitSession(s27)
        base = session.target_sets(max_faults=100, p0_min_faults=20)
        other = session.target_sets(
            max_faults=100, p0_min_faults=20, filter_implications=False
        )
        assert base is not other
        assert session.stats.misses("target_sets") == 2
        # Same enumeration cap: the second build reuses the cached paths.
        assert session.stats.misses("enumerate") == 1
        assert session.stats.hits("enumerate") == 1

    def test_fault_simulator_keyed_by_population(self, s27):
        session = CircuitSession(s27)
        targets = session.target_sets(max_faults=100, p0_min_faults=20)
        all_sim = session.fault_simulator(targets.all_records)
        assert session.fault_simulator(targets.all_records) is all_sim
        # An equal list (different object) still hits: keys are fault
        # identities, not list identity.
        assert session.fault_simulator(list(targets.all_records)) is all_sim
        p0_sim = session.fault_simulator(targets.p0)
        assert p0_sim is not all_sim
        assert session.stats.misses("fault_simulator") == 2
        assert session.stats.hits("fault_simulator") == 2

    def test_matches_uncached_pipeline(self, s27):
        """The session-built artifacts equal the historical direct path."""
        from repro.faults import build_target_sets

        session = CircuitSession(s27)
        cached = session.target_sets(
            max_faults=100, p0_min_faults=20, filter_implications=False
        )
        direct = build_target_sets(s27, max_faults=100, p0_min_faults=20)
        assert [r.fault.key() for r in cached.all_records] == [
            r.fault.key() for r in direct.all_records
        ]
        assert cached.i0 == direct.i0


class TestStatsCorrectness:
    def test_batch_and_justify_counters_on_c17(self):
        session = CircuitSession("c17")
        targets = session.target_sets(max_faults=50, p0_min_faults=5)
        result = session.generate_basic(targets.p0)
        assert result.num_tests > 0
        # Every recorded justification ran at least one batch simulation,
        # and the implication filter simulates too.
        assert session.stats.counter("justify.calls") > 0
        assert (
            session.stats.counter("batch.runs")
            >= session.stats.counter("justify.calls")
        )
        assert (
            session.stats.counter("batch.columns")
            >= session.stats.counter("batch.runs")
        )
        assert session.stats.timers["generate"] > 0
        assert session.stats.timers["justify"] >= 0

    def test_generation_reuses_compiled_simulator(self, s27):
        session = CircuitSession(s27)
        targets = session.target_sets(max_faults=100, p0_min_faults=20)
        session.generate_basic(targets.p0)
        session.generate_enriched(targets)
        assert session.stats.counter("simulator.build") == 1
        assert session.stats.counter("justifier.build") == 1


class TestApiSessionReuse:
    def test_api_calls_share_one_enumeration(self, s27):
        """api entry points accept a session and reuse its artifacts."""
        session = CircuitSession(s27)
        targets = prepare_targets(
            s27, max_faults=100, p0_min_faults=20, session=session
        )
        result = basic_atpg_circuit(
            s27, max_faults=100, p0_min_faults=20, seed=2, session=session
        )
        report = enrich_circuit(
            s27, max_faults=100, p0_min_faults=20, seed=2, session=session
        )
        assert result.num_tests > 0 and report.num_tests > 0
        assert targets is session.target_sets(max_faults=100, p0_min_faults=20)
        assert session.stats.misses("enumerate") == 1
        assert session.stats.misses("target_sets") == 1
        assert session.stats.hits("target_sets") >= 2

    def test_api_without_session_unchanged(self, s27):
        """Old signatures keep working with no session argument."""
        targets = prepare_targets(s27, max_faults=100, p0_min_faults=20)
        result = basic_atpg_circuit(
            s27, max_faults=100, p0_min_faults=20, seed=2, targets=targets
        )
        assert result.num_tests > 0

    def test_api_results_identical_with_and_without_session(self, s27):
        session = CircuitSession(s27)
        with_session = basic_atpg_circuit(
            s27, max_faults=100, p0_min_faults=20, seed=3, session=session
        )
        without = basic_atpg_circuit(s27, max_faults=100, p0_min_faults=20, seed=3)
        assert with_session.num_tests == without.num_tests
        assert [t.test.assignment for t in with_session.tests] == [
            t.test.assignment for t in without.tests
        ]


class TestEnginePool:
    def test_sessions_pooled_by_name(self):
        engine = Engine()
        assert engine.session("s27") is engine.session("s27")
        assert engine.session("c17") is not engine.session("s27")
        assert len(engine.sessions()) == 2

    def test_sessions_pooled_by_netlist_identity(self, s27):
        engine = Engine()
        assert engine.session(s27) is engine.session(s27)

    def test_sessions_share_engine_stats(self):
        stats = EngineStats()
        engine = Engine(stats=stats)
        assert engine.session("s27").stats is stats
        assert engine.session("c17").stats is stats


class TestCrossExperimentReuse:
    def test_two_table_experiments_enumerate_once(self):
        """Acceptance criterion: basic tables + enrichment against one
        engine perform path enumeration exactly once per circuit."""
        engine = Engine()
        basic = run_basic_experiments(TINY, circuits=("s27",), engine=engine)
        table6 = run_table6(TINY, circuits=("s27",), engine=engine)
        assert basic["s27"].outcomes and table6[0].tests > 0
        assert engine.stats.misses("enumerate") == 1
        assert engine.stats.misses("target_sets") == 1
        assert engine.stats.hits("target_sets") == 1

    def test_heuristics_share_one_enumeration(self):
        engine = Engine()
        run_basic_experiments(
            TINY, circuits=("s27",), heuristics=("uncomp", "values"), engine=engine
        )
        assert engine.stats.misses("enumerate") == 1

    def test_results_match_engineless_runs(self):
        shared = Engine()
        with_engine = run_basic_experiments(
            TINY, circuits=("s27",), heuristics=("values",), engine=shared
        )
        without = run_basic_experiments(
            TINY, circuits=("s27",), heuristics=("values",)
        )
        a = with_engine["s27"].outcomes["values"]
        b = without["s27"].outcomes["values"]
        assert (a.detected_p0, a.tests, a.detected_p01) == (
            b.detected_p0,
            b.tests,
            b.detected_p01,
        )


class TestOneShotWrappers:
    def test_wrappers_share_one_fault_simulator(self, s27, monkeypatch):
        """detection_matrix + detected_count on the same population build
        the FaultSimulator once (module-level sharing)."""
        import repro.sim.faultsim as faultsim

        targets = prepare_targets(s27, max_faults=100, p0_min_faults=20)
        records = targets.all_records
        built = []
        original = faultsim.FaultSimulator.__init__

        def counting(self, *args, **kwargs):
            built.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(faultsim.FaultSimulator, "__init__", counting)
        monkeypatch.setattr(faultsim, "_shared", type(faultsim._shared)())
        matrix = detection_matrix(s27, records, [])
        count = detected_count(s27, records, [])
        assert matrix.shape == (len(records), 0)
        assert count == 0
        assert len(built) == 1

    def test_wrappers_accept_session(self, s27):
        session = CircuitSession(s27)
        targets = session.target_sets(max_faults=100, p0_min_faults=20)
        records = targets.all_records
        detection_matrix(s27, records, [], sim=session)
        detected_count(s27, records, [], sim=session)
        assert session.stats.misses("fault_simulator") == 1
        assert session.stats.hits("fault_simulator") == 1

    def test_wrappers_accept_explicit_simulator(self, s27):
        targets = prepare_targets(s27, max_faults=100, p0_min_faults=20)
        records = targets.all_records
        simulator = FaultSimulator(s27, records)
        matrix = detection_matrix(s27, records, [], sim=simulator)
        assert matrix.shape == (len(records), 0)


class TestSessionConstruction:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            CircuitSession("does_not_exist")

    def test_netlist_made_pdf_ready(self):
        from repro.circuit import GateType, build_netlist

        netlist = build_netlist(
            "x",
            inputs=["a", "b"],
            gates=[("y", GateType.XOR, ["a", "b"])],
            outputs=["y"],
        )
        session = CircuitSession(netlist)
        assert session.netlist is not netlist
        assert session.netlist.is_pdf_ready()

    def test_preseeded_simulator_adopted(self, s27):
        from repro.sim import BatchSimulator

        simulator = BatchSimulator(s27)
        session = CircuitSession(s27, simulator=simulator)
        assert session.simulator is simulator
        assert simulator.stats is session.stats
        assert session.stats.counter("simulator.build") == 0
