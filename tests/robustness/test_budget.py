"""Unit tests for the resource-budget primitives."""

import time

import pytest

from repro.robustness import (
    ABORT_REASONS,
    BUDGET_PROFILES,
    DEADLINE,
    FAULT_STATUSES,
    NODE_LIMIT,
    AbortedFault,
    Budget,
    BudgetExceeded,
    InternalInvariantError,
    ReproError,
    budget_from_profile,
)


class TestBudgetSpec:
    def test_default_is_null(self):
        assert Budget().is_null

    def test_any_cap_makes_it_non_null(self):
        assert not Budget(node_limit=5).is_null
        assert not Budget(deadline_seconds=1.0).is_null

    def test_spec_roundtrip(self):
        budget = Budget(deadline_seconds=2.5, node_limit=10, abort_limit=3)
        assert Budget.from_spec(budget.spec()).spec() == budget.spec()

    def test_spec_excludes_clock_state(self):
        budget = Budget(deadline_seconds=100.0).start()
        assert set(budget.spec()) == {
            "deadline_seconds",
            "node_limit",
            "attempt_limit",
            "enumeration_cap",
            "abort_limit",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(deadline_seconds=0)
        with pytest.raises(ValueError):
            Budget(node_limit=0)
        with pytest.raises(ValueError):
            Budget(abort_limit=-1)


class TestDeadline:
    def test_unstarted_deadline_never_expires(self):
        assert not Budget(deadline_seconds=1e-9).deadline_expired()

    def test_started_tiny_deadline_expires(self):
        budget = Budget(deadline_seconds=1e-9).start()
        time.sleep(0.01)
        assert budget.deadline_expired()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check_deadline("generate", faults_done=3)
        assert excinfo.value.reason == DEADLINE
        assert excinfo.value.phase == "generate"
        assert excinfo.value.progress == {"faults_done": 3}

    def test_start_is_idempotent(self):
        budget = Budget(deadline_seconds=100.0).start()
        anchor = budget._deadline_at
        budget.start()
        assert budget._deadline_at == anchor

    def test_cancel_expires_immediately(self):
        budget = Budget(deadline_seconds=1000.0).start()
        assert not budget.deadline_expired()
        budget.cancel()
        assert budget.deadline_expired()
        assert budget.remaining_seconds() == 0.0

    def test_cancel_works_without_deadline(self):
        budget = Budget(node_limit=5)
        budget.cancel()
        assert budget.deadline_expired()

    def test_no_deadline_never_expires(self):
        assert not Budget(node_limit=5).start().deadline_expired()


class TestDerivedBudgets:
    def test_forked_carries_remaining_unstarted(self):
        budget = Budget(deadline_seconds=1000.0, node_limit=7).start()
        child = budget.forked()
        assert child._deadline_at is None  # child re-anchors on its clock
        assert child.node_limit == 7
        assert 0 < child.deadline_seconds <= 1000.0

    def test_forked_expired_budget_trips_on_first_check(self):
        budget = Budget(deadline_seconds=1e-9).start()
        time.sleep(0.01)
        child = budget.forked().start()
        time.sleep(0.01)
        assert child.deadline_expired()

    def test_limited_tightens_deadline(self):
        budget = Budget(deadline_seconds=1000.0, node_limit=7)
        tight = budget.limited(5.0)
        assert tight.deadline_seconds == 5.0
        assert tight.node_limit == 7

    def test_limited_keeps_tighter_existing_deadline(self):
        assert Budget(deadline_seconds=2.0).limited(50.0).deadline_seconds == 2.0

    def test_limited_none_is_identity(self):
        budget = Budget(deadline_seconds=3.0)
        assert budget.limited(None) is budget

    def test_limited_sets_deadline_on_deadline_free_budget(self):
        assert Budget(node_limit=5).limited(4.0).deadline_seconds == 4.0


class TestSplit:
    """``Budget.split(n)``: shard-local shares of a run budget."""

    def test_deadline_shares_sum_to_total(self):
        shares = Budget(deadline_seconds=12.0).split(4)
        assert len(shares) == 4
        assert sum(s.deadline_seconds for s in shares) == pytest.approx(12.0)

    def test_abort_limit_distributed_with_remainder_low(self):
        shares = Budget(abort_limit=7).split(3)
        assert [s.abort_limit for s in shares] == [3, 2, 2]
        assert sum(s.abort_limit for s in shares) == 7

    def test_abort_limit_never_below_one(self):
        shares = Budget(abort_limit=2).split(4)
        assert all(s.abort_limit >= 1 for s in shares)

    def test_oversplit_shares_sum_past_cap(self):
        # The documented leak of the >=1 floor: 4 shards under a cap of 2
        # may together abort 4 faults.  The merge re-applies the parent
        # cap (see merge_shard_results), so split itself is allowed to
        # hand out the extra headroom.
        shares = Budget(abort_limit=2).split(4)
        assert [s.abort_limit for s in shares] == [1, 1, 1, 1]
        assert sum(s.abort_limit for s in shares) > 2

    def test_per_fault_caps_copied_unchanged(self):
        budget = Budget(node_limit=9, attempt_limit=3, enumeration_cap=50)
        for share in budget.split(3):
            assert share.node_limit == 9
            assert share.attempt_limit == 3
            assert share.enumeration_cap == 50
            assert share.deadline_seconds is None

    def test_split_of_started_budget_uses_remaining(self):
        budget = Budget(deadline_seconds=1000.0).start()
        shares = budget.split(2)
        assert all(s._deadline_at is None for s in shares)  # re-anchored
        assert sum(s.deadline_seconds for s in shares) <= 1000.0

    def test_split_one_equals_forked(self):
        budget = Budget(deadline_seconds=8.0, abort_limit=5)
        (share,) = budget.split(1)
        assert share.deadline_seconds == pytest.approx(8.0)
        assert share.abort_limit == 5

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            Budget().split(0)


class TestCaps:
    def test_check_nodes(self):
        budget = Budget(node_limit=10)
        budget.check_nodes(10, "bnb")  # at the limit: fine
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check_nodes(11, "bnb")
        assert excinfo.value.reason == NODE_LIMIT
        assert excinfo.value.progress["nodes"] == 11

    def test_check_nodes_unlimited(self):
        Budget().check_nodes(10**9, "bnb")

    def test_attempts_allowed(self):
        assert Budget(attempt_limit=2).attempts_allowed(5) == 2
        assert Budget(attempt_limit=9).attempts_allowed(5) == 5
        assert Budget().attempts_allowed(5) == 5

    def test_abort_limit_reached(self):
        budget = Budget(abort_limit=3)
        assert not budget.abort_limit_reached(2)
        assert budget.abort_limit_reached(3)
        assert not Budget().abort_limit_reached(10**6)


class TestErrors:
    def test_budget_exceeded_message_and_fields(self):
        exc = BudgetExceeded("node_limit", "bnb", progress={"nodes": 42})
        assert exc.reason == "node_limit"
        assert exc.phase == "bnb"
        assert "bnb" in str(exc)
        assert "nodes=42" in str(exc)

    def test_hierarchy(self):
        assert issubclass(BudgetExceeded, ReproError)
        assert issubclass(BudgetExceeded, RuntimeError)
        assert issubclass(InternalInvariantError, ReproError)
        # callers catching the historical AssertionError still work
        assert issubclass(InternalInvariantError, AssertionError)

    def test_reasons_and_statuses_are_stable(self):
        assert "deadline" in ABORT_REASONS
        assert "node_limit" in ABORT_REASONS
        assert FAULT_STATUSES == ("detected", "untestable", "aborted", "undetected")


class TestAbortedFault:
    def test_row_roundtrip(self):
        fault = AbortedFault("(G1, G2) slow-to-rise", 1, "node_limit", "bnb")
        assert fault.as_row() == ["(G1, G2) slow-to-rise", 1, "node_limit", "bnb"]
        assert AbortedFault.from_row(fault.as_row()) == fault


class TestProfiles:
    def test_known_profiles_build(self):
        for name in BUDGET_PROFILES:
            budget = budget_from_profile(name)
            assert not budget.is_null
            # profiles are deliberately deadline-free (determinism)
            assert budget.deadline_seconds is None

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="unknown budget profile"):
            budget_from_profile("nope")
