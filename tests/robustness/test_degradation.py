"""Graceful degradation end to end: budgets trip, runs still finish.

Covers the cross-layer contract of :mod:`repro.robustness`:

* byte-identity -- a null budget changes nothing anywhere;
* per-fault degradation -- node/attempt caps record aborted faults with
  machine-readable reasons instead of raising;
* run-level degradation -- deadline/abort-limit stops keep partial
  results and the run exits normally;
* determinism -- same seed + same (deadline-free) budget means an
  identical aborted-fault set and identical ``canonical_json``;
* the parallel runner and checkpoint store honour the budget.

Deadline tests only use *pre-expired* deadlines (started, then checked
after the allowance passed) so they cannot flake on slow hosts.
"""

import json
import time

import pytest

from repro.engine import Engine
from repro.experiments import ExperimentScale, run_all
from repro.parallel import CircuitJob, ParallelRunner, RunCheckpoint
from repro.robustness import (
    ABORT_REASONS,
    AbortedFault,
    Budget,
    budget_from_profile,
)

TINY = ExperimentScale(
    name="tiny", max_faults=120, p0_min_faults=30, max_secondary_attempts=4, seed=1
)
CIRCUITS = ("s27", "b03_proxy")


def _expired_budget(**caps) -> Budget:
    budget = Budget(deadline_seconds=1e-9, **caps).start()
    time.sleep(0.01)
    return budget


@pytest.fixture(scope="module")
def baseline():
    """Unbudgeted reference run shared by the identity tests."""
    return run_all(TINY, circuits=CIRCUITS, table6_circuits=CIRCUITS, jobs=1)


class TestNullBudgetIdentity:
    def test_null_budget_output_is_byte_identical(self, baseline):
        nulled = run_all(
            TINY,
            circuits=CIRCUITS,
            table6_circuits=CIRCUITS,
            jobs=1,
            budget=Budget(),
        )
        assert nulled.canonical_json() == baseline.canonical_json()

    def test_unbudgeted_json_has_no_taxonomy_keys(self, baseline):
        payload = json.loads(baseline.to_json())
        for row in payload["table6"]:
            assert "aborted" not in row
            assert "aborted_faults" not in row
        for entry in payload["basic"].values():
            for outcome in entry["outcomes"].values():
                assert "aborted" not in outcome

    def test_unbudgeted_tables_have_no_aborted_column(self, baseline):
        text = baseline.format_all()
        assert "aborted" not in text


class TestPerFaultDegradation:
    def test_node_limit_records_aborted_faults(self):
        engine = Engine(budget=Budget(node_limit=1))
        session = engine.session("s27")
        targets = session.target_sets(max_faults=120, p0_min_faults=30)
        result = session.generate_basic(targets.p0)
        assert result.num_aborted > 0
        for fault in result.aborted_faults:
            assert isinstance(fault, AbortedFault)
            assert fault.reason in ABORT_REASONS
            assert fault.pool == 0
        assert engine.stats.counter("budget.aborted") == result.num_aborted

    def test_enrichment_reports_aborted_faults(self):
        engine = Engine(budget=Budget(node_limit=1))
        session = engine.session("s27")
        targets = session.target_sets(max_faults=120, p0_min_faults=30)
        report = session.generate_enriched(targets)
        assert report.aborted == len(report.aborted_faults)
        assert report.num_tests >= 0  # partial test set survives

    def test_abort_limit_stops_the_run(self):
        engine = Engine(budget=Budget(node_limit=1, abort_limit=2))
        session = engine.session("s27")
        targets = session.target_sets(max_faults=120, p0_min_faults=30)
        result = session.generate_basic(targets.p0)
        assert result.num_aborted == 2
        assert result.budget_exhausted == "abort_limit"
        assert engine.stats.counter("budget.run_stops") == 1


class TestDeadlineDegradation:
    def test_expired_deadline_aborts_everything_but_finishes(self):
        # Budget only the generation call: target sets are built normally,
        # then the expired deadline denies every P0 fault a verdict.
        engine = Engine()
        session = engine.session("s27")
        targets = session.target_sets(max_faults=120, p0_min_faults=30)
        result = session.generate_basic(targets.p0, budget=_expired_budget())
        assert result.budget_exhausted == "deadline"
        assert result.num_aborted == len(targets.p0) > 0
        assert all(f.reason == "deadline" for f in result.aborted_faults)
        assert all(f.phase == "generate" for f in result.aborted_faults)
        assert result.num_tests == 0  # nothing got generated, nothing crashed

    def test_expired_deadline_during_target_sets_degrades_to_empty(self):
        engine = Engine(budget=_expired_budget())
        targets = engine.session("s27").target_sets(max_faults=120, p0_min_faults=30)
        assert targets.budget_exhausted in ("deadline", "enumeration_cap")
        assert targets.p0 == []  # cut before any fault was enumerated


class TestBudgetDeterminism:
    """Same seed + same (deadline-free) budget => identical output."""

    BUDGET_CAPS = dict(node_limit=1, attempt_limit=1)

    def _run(self):
        return run_all(
            TINY,
            circuits=CIRCUITS,
            table6_circuits=CIRCUITS,
            jobs=1,
            budget=Budget(**self.BUDGET_CAPS),
        )

    def test_two_runs_are_byte_identical(self):
        first, second = self._run(), self._run()
        assert first.canonical_json() == second.canonical_json()

    def test_aborted_fault_set_is_identical_and_serialized(self):
        first, second = self._run(), self._run()
        rows_first = [row.aborted_faults for row in first.table6]
        rows_second = [row.aborted_faults for row in second.table6]
        assert rows_first == rows_second
        assert any(rows_first)  # the budget actually tripped
        payload = json.loads(first.to_json())
        for row, expected in zip(payload["table6"], rows_first):
            if expected:
                assert row["aborted_faults"] == expected
            else:
                assert "aborted_faults" not in row

    def test_degraded_tables_render_the_taxonomy(self):
        text = self._run().format_all()
        assert "aborted" in text
        assert "Aborted faults" in text

    def test_budgeted_json_roundtrips(self):
        from repro.experiments import ExperimentResults

        first = self._run()
        again = ExperimentResults.from_json(first.to_json())
        assert again.canonical_json() == first.canonical_json()
        assert again.format_all() == first.format_all()


class TestParallelBudget:
    def test_pool_workers_degrade_and_salvage(self):
        """The run budget forks to every pool worker; jobs degrade (abort
        faults) but still return results instead of failing."""
        engine = Engine()
        runner = ParallelRunner(
            jobs=2, engine=engine, budget=Budget(node_limit=1)
        )
        results = runner.run(
            [CircuitJob(name, TINY, ("values",), run_basic=True) for name in CIRCUITS]
        )
        assert [r.circuit for r in results] == list(CIRCUITS)
        for result in results:
            assert result.basic.outcomes["values"].aborted > 0
        # worker budget counters merged back into the parent engine
        assert engine.stats.counter("budget.aborted") > 0

    def test_engine_budget_is_the_runner_default(self):
        engine = Engine(budget=Budget(node_limit=1))
        runner = ParallelRunner(jobs=1, engine=engine)
        results = runner.run(
            [CircuitJob("s27", TINY, ("values",), run_basic=True)]
        )
        assert results[0].basic.outcomes["values"].aborted > 0

    def test_expired_run_budget_still_salvages_results(self):
        """Fully expired wall clock: every job comes back (degraded to
        zero work) rather than raising or hanging."""
        engine = Engine()
        runner = ParallelRunner(jobs=2, engine=engine, budget=_expired_budget())
        results = runner.run(
            [CircuitJob(name, TINY, ("values",), run_basic=True) for name in CIRCUITS]
        )
        assert [r.circuit for r in results] == list(CIRCUITS)
        for result in results:
            outcome = result.basic.outcomes["values"]
            assert outcome.detected_p0 == 0
            assert outcome.tests == 0


class TestCheckpointBudgetEnvelope:
    JOB = CircuitJob("s27", TINY, ("values",), run_basic=True)

    def _result(self):
        engine = Engine()
        runner = ParallelRunner(jobs=1, engine=engine)
        return runner.run([self.JOB])[0]

    def test_budget_mismatch_reads_as_stale(self, tmp_path):
        result = self._result()
        unbudgeted = RunCheckpoint(tmp_path)
        unbudgeted.save(result, self.JOB)
        budgeted = RunCheckpoint(tmp_path, budget=Budget(node_limit=1))
        assert budgeted.load(self.JOB) is None  # different envelope
        assert unbudgeted.load(self.JOB) is not None

    def test_matching_budget_envelope_roundtrips(self, tmp_path):
        result = self._result()
        budget = budget_from_profile("strict")
        checkpoint = RunCheckpoint(tmp_path, budget=budget, timeout=9.0)
        checkpoint.save(result, self.JOB)
        assert checkpoint.load(self.JOB) is not None
        payload = json.loads(checkpoint.path_for("s27").read_text())
        assert payload["budget"] == budget.spec()
        assert payload["timeout"] == 9.0

    def test_timeout_mismatch_reads_as_stale(self, tmp_path):
        result = self._result()
        RunCheckpoint(tmp_path, timeout=5.0).save(result, self.JOB)
        assert RunCheckpoint(tmp_path, timeout=6.0).load(self.JOB) is None

    def test_corrupt_checkpoint_is_counted(self, tmp_path):
        from repro.engine import EngineStats

        stats = EngineStats()
        checkpoint = RunCheckpoint(tmp_path, stats=stats)
        checkpoint.path_for("s27").write_text('{"version": 1, "circ')  # truncated
        assert checkpoint.load(self.JOB) is None
        assert stats.counter("checkpoint.corrupt") == 1

    def test_missing_checkpoint_is_not_counted(self, tmp_path):
        from repro.engine import EngineStats

        stats = EngineStats()
        checkpoint = RunCheckpoint(tmp_path, stats=stats)
        assert checkpoint.load(self.JOB) is None
        assert stats.counter("checkpoint.corrupt") == 0


class TestCli:
    def test_budget_profile_run_exits_zero(self, capsys):
        from repro.cli import main

        code = main(
            [
                "atpg",
                "s27",
                "--max-faults",
                "120",
                "--p0-min-faults",
                "30",
                "--budget-profile",
                "strict",
            ]
        )
        assert code == 0

    def test_degraded_run_exits_zero_and_reports_aborts(self, capsys):
        from repro.cli import main

        code = main(
            [
                "enrich",
                "s27",
                "--max-faults",
                "120",
                "--p0-min-faults",
                "30",
                "--node-limit",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "aborted" in captured.err
        assert "node_limit" in captured.err

    def test_deadline_validation(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--deadline", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--abort-limit", "-3"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--node-limit", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--budget-profile", "nope"])
