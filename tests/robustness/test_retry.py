"""RetryPolicy: exponential backoff, deterministic jitter, caps, specs."""

import pytest

from repro.robustness import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 1
        assert policy.base_delay > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"max_delay": -1.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestDelays:
    def test_first_attempt_never_waits(self):
        assert RetryPolicy().delay(0) == 0.0

    def test_exponential_growth(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, jitter=0.0, max_delay=100.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 4.0

    def test_cap_bounds_every_delay(self):
        policy = RetryPolicy(
            max_retries=20, base_delay=1.0, multiplier=3.0, max_delay=5.0, jitter=0.1
        )
        for attempt in range(1, 21):
            assert policy.delay(attempt, "job") <= 5.0

    def test_jitter_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        assert policy.delay(1, "a") == policy.delay(1, "a")
        # Different keys decorrelate (thundering-herd avoidance).
        assert policy.delay(1, "a") != policy.delay(1, "b")

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.1, max_delay=10.0)
        for key in ("s27", "b03_proxy#0", "x"):
            assert 0.9 <= policy.delay(1, key) <= 1.1

    def test_immediate_restores_hot_retry_semantics(self):
        policy = RetryPolicy.immediate(3)
        assert policy.max_retries == 3
        assert policy.total_delay("any") == 0.0

    def test_total_delay_sums_all_retries(self):
        policy = RetryPolicy(
            max_retries=3, base_delay=1.0, multiplier=2.0, jitter=0.0, max_delay=100.0
        )
        assert policy.total_delay() == pytest.approx(1.0 + 2.0 + 4.0)


class TestSpecRoundTrip:
    def test_spec_round_trips(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=0.5, multiplier=1.5, max_delay=9.0, jitter=0.2
        )
        assert RetryPolicy.from_spec(policy.spec()) == policy

    def test_from_spec_ignores_unknown_keys(self):
        assert RetryPolicy.from_spec(
            {"max_retries": 2, "someday": True}
        ) == RetryPolicy(max_retries=2)
