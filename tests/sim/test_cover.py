"""Tests for compiled requirement checking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Triple, X, all_triples
from repro.sim import CompiledRequirements

ALL_TRIPLES = list(all_triples())


def sim_array(triples):
    """Build a (n_nodes, 3, 1) code array from a list of triples."""
    data = np.array([t.components() for t in triples], dtype=np.int8)
    return data[:, :, None]


class TestCoveredBy:
    def test_exact_match(self):
        req = CompiledRequirements({0: Triple.parse("0x1")})
        assert req.covered_by(sim_array([Triple.parse("0x1")]))[0]
        assert req.covered_by(sim_array([Triple.parse("001")]))[0]

    def test_x_simulated_fails_specified(self):
        req = CompiledRequirements({0: Triple.parse("000")})
        assert not req.covered_by(sim_array([Triple.parse("0x0")]))[0]

    def test_multi_line(self):
        req = CompiledRequirements(
            {0: Triple.parse("xx1"), 1: Triple.parse("111")}
        )
        ok = sim_array([Triple.parse("0x1"), Triple.parse("111")])
        bad = sim_array([Triple.parse("0x1"), Triple.parse("110")])
        assert req.covered_by(ok)[0]
        assert not req.covered_by(bad)[0]

    def test_empty_requirements_cover_everything(self):
        req = CompiledRequirements({})
        assert req.covered_by(np.zeros((4, 3, 5), dtype=np.int8)).all()

    def test_batch_columns_independent(self):
        req = CompiledRequirements({0: Triple.parse("111")})
        sims = np.stack(
            [
                np.array([Triple.parse("111").components()], dtype=np.int8),
                np.array([Triple.parse("101").components()], dtype=np.int8),
            ],
            axis=2,
        ).reshape(1, 3, 2)
        got = req.covered_by(sims)
        assert got.tolist() == [True, False]


class TestConsistentWith:
    def test_x_is_consistent(self):
        req = CompiledRequirements({0: Triple.parse("111")})
        assert req.consistent_with(sim_array([Triple.parse("xxx")]))[0]
        assert req.consistent_with(sim_array([Triple.parse("1xx")]))[0]

    def test_contradiction_detected(self):
        req = CompiledRequirements({0: Triple.parse("111")})
        assert not req.consistent_with(sim_array([Triple.parse("0xx")]))[0]

    @settings(max_examples=200, deadline=None)
    @given(
        sim=st.sampled_from(ALL_TRIPLES),
        req_triple=st.sampled_from(ALL_TRIPLES),
    )
    def test_matches_triple_semantics(self, sim, req_triple):
        compiled = CompiledRequirements({0: req_triple})
        sims = sim_array([sim])
        assert bool(compiled.covered_by(sims)[0]) == sim.covers(req_triple)
        assert (
            bool(compiled.consistent_with(sims)[0])
            == sim.consistent_with(req_triple)
        )

    def test_len(self):
        req = CompiledRequirements({0: Triple.parse("0x1"), 3: Triple.parse("xxx")})
        assert len(req) == 2  # two specified components on node 0, none on 3
