"""Tests for compiled requirement checking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Triple, X, all_triples
from repro.sim import CompiledRequirements

ALL_TRIPLES = list(all_triples())


def sim_array(triples):
    """Build a (n_nodes, 3, 1) code array from a list of triples."""
    data = np.array([t.components() for t in triples], dtype=np.int8)
    return data[:, :, None]


class TestCoveredBy:
    def test_exact_match(self):
        req = CompiledRequirements({0: Triple.parse("0x1")})
        assert req.covered_by(sim_array([Triple.parse("0x1")]))[0]
        assert req.covered_by(sim_array([Triple.parse("001")]))[0]

    def test_x_simulated_fails_specified(self):
        req = CompiledRequirements({0: Triple.parse("000")})
        assert not req.covered_by(sim_array([Triple.parse("0x0")]))[0]

    def test_multi_line(self):
        req = CompiledRequirements(
            {0: Triple.parse("xx1"), 1: Triple.parse("111")}
        )
        ok = sim_array([Triple.parse("0x1"), Triple.parse("111")])
        bad = sim_array([Triple.parse("0x1"), Triple.parse("110")])
        assert req.covered_by(ok)[0]
        assert not req.covered_by(bad)[0]

    def test_empty_requirements_cover_everything(self):
        req = CompiledRequirements({})
        assert req.covered_by(np.zeros((4, 3, 5), dtype=np.int8)).all()

    def test_batch_columns_independent(self):
        req = CompiledRequirements({0: Triple.parse("111")})
        sims = np.stack(
            [
                np.array([Triple.parse("111").components()], dtype=np.int8),
                np.array([Triple.parse("101").components()], dtype=np.int8),
            ],
            axis=2,
        ).reshape(1, 3, 2)
        got = req.covered_by(sims)
        assert got.tolist() == [True, False]


class TestConsistentWith:
    def test_x_is_consistent(self):
        req = CompiledRequirements({0: Triple.parse("111")})
        assert req.consistent_with(sim_array([Triple.parse("xxx")]))[0]
        assert req.consistent_with(sim_array([Triple.parse("1xx")]))[0]

    def test_contradiction_detected(self):
        req = CompiledRequirements({0: Triple.parse("111")})
        assert not req.consistent_with(sim_array([Triple.parse("0xx")]))[0]

    @settings(max_examples=200, deadline=None)
    @given(
        sim=st.sampled_from(ALL_TRIPLES),
        req_triple=st.sampled_from(ALL_TRIPLES),
    )
    def test_matches_triple_semantics(self, sim, req_triple):
        compiled = CompiledRequirements({0: req_triple})
        sims = sim_array([sim])
        assert bool(compiled.covered_by(sims)[0]) == sim.covers(req_triple)
        assert (
            bool(compiled.consistent_with(sims)[0])
            == sim.consistent_with(req_triple)
        )

    def test_len(self):
        req = CompiledRequirements({0: Triple.parse("0x1"), 3: Triple.parse("xxx")})
        assert len(req) == 2  # two specified components on node 0, none on 3


class TestStackedRequirements:
    def _stack(self, mappings):
        from repro.sim import StackedRequirements

        return StackedRequirements([CompiledRequirements(m) for m in mappings])

    def test_matches_per_fault_loop(self):
        mappings = [
            {0: Triple.parse("0x1"), 1: Triple.parse("111")},
            {0: Triple.parse("xx1")},
            {},  # no requirements: covered by every test
            {2: Triple.parse("010")},
        ]
        compiled = [CompiledRequirements(m) for m in mappings]
        stacked = self._stack(mappings)
        rng = np.random.default_rng(7)
        sims = np.stack(
            [
                np.array(
                    [ALL_TRIPLES[i].components() for i in rng.integers(0, len(ALL_TRIPLES), 3)],
                    dtype=np.int8,
                )
                for _ in range(16)
            ],
            axis=2,
        )
        expected = np.stack([c.covered_by(sims) for c in compiled])
        assert np.array_equal(stacked.covered_matrix(sims), expected)

    def test_empty_population(self):
        stacked = self._stack([])
        sims = sim_array([Triple.parse("111")])
        assert stacked.covered_matrix(sims).shape == (0, 1)

    def test_all_empty_requirements(self):
        stacked = self._stack([{}, {}])
        sims = sim_array([Triple.parse("0x0")])
        assert stacked.covered_matrix(sims).all()

    def test_chunked_matches_unchunked(self):
        mappings = [{0: Triple.parse("111")}, {1: Triple.parse("0x1")}] * 5
        stacked = self._stack(mappings)
        sims = np.stack(
            [
                np.array(
                    [t.components() for t in (Triple.parse("111"), Triple.parse("001"))],
                    dtype=np.int8,
                )
            ]
            * 4,
            axis=2,
        ).reshape(2, 3, -1)
        full = stacked.covered_matrix(sims)
        tiny_chunks = stacked.covered_matrix(sims, max_elements=1)
        assert np.array_equal(full, tiny_chunks)

    def test_len(self):
        assert len(self._stack([{}, {0: Triple.parse("111")}])) == 2
