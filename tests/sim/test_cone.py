"""Cone-restricted sub-simulator: equivalence invariant and caching."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.algebra.ternary import ONE, X, ZERO
from repro.circuit.analysis import input_cone, support_inputs
from repro.circuit.synth import SynthProfile, generate
from repro.engine.stats import EngineStats
from repro.sim.batch import BatchSimulator
from repro.sim.cover import CompiledRequirements


def random_codes(n_pis: int, k: int, rng: random.Random) -> np.ndarray:
    """Random (n_pis, 3, K) endpoint codes with derived middles."""
    codes = np.empty((n_pis, 3, k), dtype=np.int8)
    for row in range(n_pis):
        for col in range(k):
            v1 = rng.choice((ZERO, ONE, X))
            v3 = rng.choice((ZERO, ONE, X))
            v2 = v1 if (v1 == v3 and v1 != X) else X
            codes[row, :, col] = (v1, v2, v3)
    return codes


def random_netlists():
    """A spread of synthetic circuits for the property test."""
    nets = []
    for seed in (1, 2, 3):
        nets.append(
            generate(
                SynthProfile(
                    name=f"cone_mesh_{seed}",
                    seed=seed,
                    style="mesh",
                    n_inputs=8,
                    n_gates=40,
                    n_outputs=4,
                    window=6.0,
                )
            )
        )
        nets.append(
            generate(
                SynthProfile(
                    name=f"cone_chain_{seed}",
                    seed=seed,
                    style="chain",
                    n_inputs=9,
                    rails=3,
                    depth=6,
                    q2=0.4,
                    p_flip=0.1,
                )
            )
        )
    return nets


class TestConeEquivalence:
    """The tentpole invariant: cone codes == full codes on cone nodes."""

    @pytest.mark.parametrize("netlist", random_netlists(), ids=lambda n: n.name)
    def test_random_netlists_random_seeds(self, netlist):
        rng = random.Random(netlist.name)
        full = BatchSimulator(netlist)
        non_input = [
            i for i in range(len(netlist)) if not netlist.node_at(i).is_input
        ]
        for _trial in range(5):
            seeds = rng.sample(non_input, k=min(3, len(non_input)))
            cone_sim = full.restricted(seeds)
            codes = random_codes(len(netlist.input_indices), 7, rng)
            full_out = full.run_codes(codes)
            # The cone sees only its own PI rows, in pi_index order.
            pi_rows = [
                int(np.nonzero(full.pi_index == pi)[0][0])
                for pi in cone_sim.pi_index
            ]
            cone_out = cone_sim.run_codes(codes[pi_rows])
            assert np.array_equal(cone_out, full_out[cone_sim.nodes])

    def test_s27_every_single_node_cone(self, s27):
        full = BatchSimulator(s27)
        rng = random.Random(27)
        codes = random_codes(len(s27.input_indices), 5, rng)
        full_out = full.run_codes(codes)
        for node in range(len(s27)):
            cone_sim = full.restricted([node])
            pi_rows = [
                int(np.nonzero(full.pi_index == pi)[0][0])
                for pi in cone_sim.pi_index
            ]
            cone_out = cone_sim.run_codes(codes[pi_rows])
            assert np.array_equal(cone_out, full_out[cone_sim.nodes])

    def test_cone_structure(self, c17):
        full = BatchSimulator(c17)
        seeds = [c17.output_indices[0]]
        cone_sim = full.restricted(seeds)
        expected = sorted(input_cone(c17, seeds))
        assert cone_sim.nodes.tolist() == expected
        assert cone_sim.support == support_inputs(c17, seeds)
        assert cone_sim.n_nodes == len(expected)

    def test_localize_roundtrip(self, s27):
        # ConeSimulator-specific contract: local rows index cone.nodes.
        # (The packed twin's localize maps further, into plan rows.)
        full = BatchSimulator(s27, backend="numpy")
        seeds = [s27.output_indices[0], s27.output_indices[1]]
        cone_sim = full.restricted(seeds)
        from repro.algebra.triple import Triple

        requirements = {seeds[0]: Triple.of(ZERO, X, ONE)}
        compiled = CompiledRequirements(requirements)
        local = cone_sim.localize(compiled)
        assert local.num_components == compiled.num_components
        back = cone_sim.nodes[local.nodes]
        assert back.tolist() == compiled.nodes.tolist()

    def test_localize_rejects_outside_nodes(self, s27):
        full = BatchSimulator(s27)
        # Cone of one primary input: just that node.
        pi = s27.input_indices[0]
        cone_sim = full.restricted([pi])
        from repro.algebra.triple import Triple

        outside = s27.output_indices[0]
        assert outside not in set(cone_sim.nodes.tolist())
        compiled = CompiledRequirements({outside: Triple.of(ONE, X, X)})
        with pytest.raises(ValueError, match="outside the cone"):
            cone_sim.localize(compiled)

    def test_run_codes_shape_validation(self, s27):
        full = BatchSimulator(s27)
        cone_sim = full.restricted([s27.output_indices[0]])
        bad = np.full((len(s27.input_indices) + 1, 3, 2), X, dtype=np.int8)
        with pytest.raises(ValueError, match="expected shape"):
            cone_sim.run_codes(bad)


class TestConeCache:
    def test_seed_key_hit(self, s27):
        stats = EngineStats()
        full = BatchSimulator(s27, stats=stats)
        seeds = [s27.output_indices[0]]
        first = full.restricted(seeds)
        second = full.restricted(seeds)
        assert first is second
        assert stats.counter("cone.miss") == 1
        assert stats.counter("cone.hit") == 1
        assert stats.counter("cone.compile") == 1

    def test_equal_cones_share_compilation(self, s27):
        """Distinct seed keys resolving to the same cone reuse it."""
        stats = EngineStats()
        full = BatchSimulator(s27, stats=stats)
        out = s27.output_indices[0]
        fanin = list(s27.fanin_indices(out))
        first = full.restricted([out])
        # Seeds {out} and {out} + fanin have identical input cones.
        second = full.restricted([out, *fanin])
        assert first is second
        assert stats.counter("cone.miss") == 2
        assert stats.counter("cone.compile") == 1

    def test_lru_eviction(self, s27, monkeypatch):
        from repro.sim import batch as batch_module

        monkeypatch.setattr(batch_module, "LRU_CACHE_SIZE", 2)
        full = BatchSimulator(s27)
        nodes = [i for i in range(len(s27)) if not s27.node_at(i).is_input]
        sims = [full.restricted([node]) for node in nodes[:3]]
        assert len(full._cone_by_seed) <= 2
        assert len(full._cone_by_cone) <= 2
        # Most recent entries survive; the oldest seed key was evicted and
        # recomputes (possibly hitting the cone-level dedup).
        again = full.restricted([nodes[2]])
        assert again is sims[2]

    def test_support_cache_lru_eviction(self, s27, monkeypatch):
        from repro.algebra.triple import Triple
        from repro.atpg import justify as justify_module
        from repro.atpg.justify import Justifier
        from repro.atpg.requirements import RequirementSet

        monkeypatch.setattr(justify_module, "LRU_CACHE_SIZE", 2)
        justifier = Justifier(s27, use_cones=False)
        non_input = [
            i for i in range(len(s27)) if not s27.node_at(i).is_input
        ]
        sets = [
            RequirementSet({node: Triple.of(ONE, X, X)})
            for node in non_input[:3]
        ]
        for requirements in sets:
            justifier._support(requirements)
        assert len(justifier._support_cache) == 2
        # The oldest key was evicted; the newest two are retained.
        assert frozenset({non_input[0]}) not in justifier._support_cache
        assert frozenset({non_input[2]}) in justifier._support_cache
        # A hit refreshes recency: touching entry 1 then inserting a new
        # key evicts entry 2, not entry 1.
        justifier._support(sets[1])
        justifier._support(
            RequirementSet({non_input[3]: Triple.of(ONE, X, X)})
        )
        assert frozenset({non_input[1]}) in justifier._support_cache
        assert frozenset({non_input[2]}) not in justifier._support_cache

    def test_counters_feed_batch_totals(self, s27):
        stats = EngineStats()
        full = BatchSimulator(s27, stats=stats)
        cone_sim = full.restricted([s27.output_indices[0]])
        codes = np.full((len(cone_sim.pi_index), 3, 4), X, dtype=np.int8)
        cone_sim.run_codes(codes)
        assert stats.counter("batch.runs") == 1
        assert stats.counter("batch.columns") == 4
        assert stats.counter("cone.runs") == 1
        assert stats.counter("cone.columns") == 4
