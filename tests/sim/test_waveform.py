"""Tests for the ASCII waveform renderer."""

import pytest

from repro.algebra import FALL, RISE, STABLE0, STABLE1, Triple
from repro.sim import TwoPatternTest, render_test, render_waveforms


class TestRenderWaveforms:
    def test_shapes(self, c17):
        values = {
            "N1": RISE,
            "N2": FALL,
            "N3": STABLE0,
            "N6": STABLE1,
            "N7": Triple.parse("0x0"),
        }
        text = render_waveforms(c17, values, ["N1", "N2", "N3", "N6", "N7"])
        lines = text.splitlines()
        assert "_/~" in lines[0]  # rising
        assert "~\\_" in lines[1]  # falling
        assert "___" in lines[2]  # steady low
        assert "~~~" in lines[3]  # steady high
        assert "_?_" in lines[4]  # possible glitch

    def test_unknown_shape(self, c17):
        text = render_waveforms(c17, {"N1": Triple.parse("xxx")}, ["N1"])
        assert "???" in text

    def test_triple_string_included(self, c17):
        text = render_waveforms(c17, {"N1": RISE}, ["N1"])
        assert "(0x1)" in text


class TestRenderTest:
    def test_defaults_inputs_and_outputs(self, c17):
        test = TwoPatternTest(
            {pi: Triple.transition(0, 1) for pi in c17.input_indices}
        )
        text = render_test(c17, test)
        for name in c17.input_names:
            assert name in text
        for name in c17.output_names:
            assert name in text

    def test_selected_lines(self, c17):
        test = TwoPatternTest(
            {pi: Triple.stable(1) for pi in c17.input_indices}
        )
        text = render_test(c17, test, lines=["N10"])
        assert text.splitlines()[0].startswith("N10")
        # NAND of two stable ones is stable 0.
        assert "___" in text
