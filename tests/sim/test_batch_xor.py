"""Batch-simulator coverage for XOR/XNOR and wide gates.

The experiment circuits are XOR-free (the PDF engine requires expansion),
but the simulators support XOR directly for general-purpose use; verify
the vectorized path against the scalar reference and exhaustive truth.
"""

import itertools
import random

from repro.algebra import Triple, all_triples
from repro.circuit import GateType, build_netlist
from repro.sim import BatchSimulator, simulate_logic, simulate_triples

ALL_TRIPLES = list(all_triples())


def xor_heavy_circuit():
    return build_netlist(
        "xorheavy",
        inputs=["a", "b", "c", "d"],
        gates=[
            ("x2", GateType.XOR, ["a", "b"]),
            ("x3", GateType.XOR, ["a", "b", "c"]),
            ("n3", GateType.XNOR, ["b", "c", "d"]),
            ("w4", GateType.AND, ["a", "b", "c", "d"]),
            ("mix", GateType.XNOR, ["x2", "w4"]),
            ("out", GateType.OR, ["x3", "n3", "mix"]),
        ],
        outputs=["out", "mix"],
    )


class TestBatchXor:
    def test_agreement_with_scalar(self):
        netlist = xor_heavy_circuit()
        simulator = BatchSimulator(netlist)
        rng = random.Random(99)
        assignments = []
        for _ in range(60):
            assignments.append(
                {pi: rng.choice(ALL_TRIPLES) for pi in netlist.input_indices}
            )
        codes = simulator.run_triples(assignments)
        for column, assignment in enumerate(assignments):
            named = {
                netlist.node_at(node).name: triple
                for node, triple in assignment.items()
            }
            reference = simulate_triples(netlist, named)
            for index in range(len(netlist)):
                got = tuple(int(v) for v in codes[index, :, column])
                assert got == reference[netlist.node_at(index).name].components()

    def test_exhaustive_boolean_truth(self):
        netlist = xor_heavy_circuit()
        simulator = BatchSimulator(netlist)
        assignments = []
        combos = list(itertools.product([0, 1], repeat=4))
        for bits in combos:
            assignments.append(
                {
                    pi: Triple.stable(bit)
                    for pi, bit in zip(netlist.input_indices, bits)
                }
            )
        codes = simulator.run_triples(assignments)
        for column, bits in enumerate(combos):
            logic = simulate_logic(
                netlist, dict(zip("abcd", bits))
            )
            for name in ("x2", "x3", "n3", "mix", "out"):
                index = netlist.index_of(name)
                assert int(codes[index, 0, column]) == logic[name]
                assert int(codes[index, 2, column]) == logic[name]
