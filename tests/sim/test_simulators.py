"""Cross-validation of the three simulators.

The scalar triple simulator is the executable specification; the batch
simulator must agree with it on every node, and both must agree with
independent single-pattern logic simulations at triple positions 1 and 3.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import ONE, RISE, STABLE0, STABLE1, Triple, X, ZERO, all_triples
from repro.circuit import GateType, build_netlist
from repro.sim import BatchSimulator, simulate_logic, simulate_triples

ALL_TRIPLES = list(all_triples())


def random_assignment(netlist, rng):
    return {
        netlist.node_at(pi).name: rng.choice(ALL_TRIPLES)
        for pi in netlist.input_indices
    }


class TestScalarSimulator:
    def test_gate_semantics(self):
        netlist = build_netlist(
            "g",
            inputs=["a", "b"],
            gates=[
                ("and_", GateType.AND, ["a", "b"]),
                ("nand_", GateType.NAND, ["a", "b"]),
                ("or_", GateType.OR, ["a", "b"]),
                ("nor_", GateType.NOR, ["a", "b"]),
                ("xor_", GateType.XOR, ["a", "b"]),
                ("xnor_", GateType.XNOR, ["a", "b"]),
                ("not_", GateType.NOT, ["a"]),
                ("buf_", GateType.BUF, ["a"]),
            ],
            outputs=["and_", "nand_", "or_", "nor_", "xor_", "xnor_", "not_", "buf_"],
        )
        out = simulate_triples(netlist, {"a": RISE, "b": STABLE1})
        assert out["and_"] is RISE
        assert out["nand_"] is RISE.inverted()
        assert out["or_"] is STABLE1
        assert out["nor_"] is STABLE0
        assert out["xor_"] is RISE.inverted()
        assert out["xnor_"] is RISE
        assert out["not_"] is RISE.inverted()
        assert out["buf_"] is RISE

    def test_hazard_shows_as_x(self):
        # OR of a rising and a falling signal: endpoints are 1, but the
        # intermediate value is x (possible 0-glitch).
        netlist = build_netlist(
            "h",
            inputs=["a", "b"],
            gates=[("y", GateType.OR, ["a", "b"])],
            outputs=["y"],
        )
        out = simulate_triples(netlist, {"a": RISE, "b": RISE.inverted()})
        assert str(out["y"]) == "1x1"

    def test_unassigned_inputs_default_unknown(self, s27):
        out = simulate_triples(s27, {})
        assert all(str(v) == "xxx" for k, v in out.items() if k in s27.input_names)

    def test_rejects_non_input(self, s27):
        with pytest.raises(ValueError):
            simulate_triples(s27, {"G12": STABLE0})

    def test_const_gates(self):
        netlist = build_netlist(
            "c",
            inputs=["a"],
            gates=[
                ("one", GateType.CONST1, []),
                ("zero", GateType.CONST0, []),
                ("y", GateType.AND, ["a", "one"]),
                ("z", GateType.OR, ["a", "zero"]),
            ],
            outputs=["y", "z"],
        )
        out = simulate_triples(netlist, {"a": RISE})
        assert out["one"] is STABLE1
        assert out["zero"] is STABLE0
        assert out["y"] is RISE
        assert out["z"] is RISE


class TestBatchAgainstScalar:
    @pytest.mark.parametrize("circuit_fixture", ["s27", "c17", "tiny_chain", "tiny_mesh"])
    def test_agreement_on_random_batches(self, circuit_fixture, request):
        netlist = request.getfixturevalue(circuit_fixture)
        rng = random.Random(circuit_fixture)
        simulator = BatchSimulator(netlist)
        assignments = [random_assignment(netlist, rng) for _ in range(40)]
        codes = simulator.run_triples(
            [
                {netlist.index_of(k): v for k, v in assignment.items()}
                for assignment in assignments
            ]
        )
        for column, assignment in enumerate(assignments):
            reference = simulate_triples(netlist, assignment)
            for index in range(len(netlist)):
                got = tuple(int(v) for v in codes[index, :, column])
                want = reference[netlist.node_at(index).name].components()
                assert got == want

    def test_run_two_pattern_derives_intermediate(self, c17):
        simulator = BatchSimulator(c17)
        n = len(c17.input_indices)
        first = np.zeros((n, 1), dtype=np.int8)
        second = np.ones((n, 1), dtype=np.int8)
        codes = simulator.run_codes  # sanity: direct API exists
        out = simulator.run_two_pattern(first, second)
        for row, pi in enumerate(c17.input_indices):
            assert tuple(out[pi, :, 0]) == (ZERO, X, ONE)

    def test_shape_validation(self, c17):
        simulator = BatchSimulator(c17)
        with pytest.raises(ValueError):
            simulator.run_codes(np.zeros((3, 3, 1), dtype=np.int8))

    def test_run_triples_rejects_non_input(self, c17):
        simulator = BatchSimulator(c17)
        gate_index = next(
            i for i in range(len(c17)) if not c17.node_at(i).is_input
        )
        with pytest.raises(ValueError):
            simulator.run_triples([{gate_index: STABLE0}])


class TestTripleVsLogicSim:
    """Positions 1 and 3 of the triple domain are independent single-pattern
    simulations; hypothesis drives random circuits through both."""

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_endpoints_match_logic_sim(self, data):
        seed = data.draw(st.integers(0, 10_000))
        rng = random.Random(seed)
        from repro.circuit.synth import SynthProfile, generate

        netlist = generate(
            SynthProfile(
                name="hyp", seed=seed, n_inputs=6, n_gates=20, style="mesh"
            )
        )
        assignment = random_assignment(netlist, rng)
        triple_out = simulate_triples(netlist, assignment)
        first = {k: v.v1 for k, v in assignment.items()}
        final = {k: v.v3 for k, v in assignment.items()}
        out_first = simulate_logic(netlist, first)
        out_final = simulate_logic(netlist, final)
        for name in (n.name for n in netlist.nodes):
            assert triple_out[name].v1 == out_first[name]
            assert triple_out[name].v3 == out_final[name]

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_monotonicity_refinement(self, data):
        """Specifying an x input component never flips a specified output."""
        seed = data.draw(st.integers(0, 10_000))
        from repro.circuit.synth import SynthProfile, generate

        netlist = generate(
            SynthProfile(name="hyp2", seed=seed, n_inputs=5, n_gates=15, style="mesh")
        )
        rng = random.Random(seed + 1)
        assignment = random_assignment(netlist, rng)
        before = simulate_triples(netlist, assignment)
        # Refine one x endpoint somewhere, if any.
        for name, triple in assignment.items():
            if triple.v1 == X:
                refined = dict(assignment)
                refined[name] = Triple.of(rng.randint(0, 1), triple.v2, triple.v3)
                after = simulate_triples(netlist, refined)
                for node in (n.name for n in netlist.nodes):
                    for position in ("v1", "v2", "v3"):
                        b = getattr(before[node], position)
                        a = getattr(after[node], position)
                        if b != X:
                            assert a == b
                break
