"""Tests for test-set file I/O."""

import pytest

from repro.algebra import Triple
from repro.sim import (
    TestFileError,
    TwoPatternTest,
    dump_tests,
    dumps_tests,
    load_tests,
    loads_tests,
)


def sample_tests(netlist):
    stable = TwoPatternTest(
        {pi: Triple.stable(1) for pi in netlist.input_indices}
    )
    moving = TwoPatternTest(
        {pi: Triple.transition(0, 1) for pi in netlist.input_indices}
    )
    return [stable, moving]


class TestRoundTrip:
    def test_string_roundtrip(self, c17):
        tests = sample_tests(c17)
        text = dumps_tests(c17, tests)
        back = loads_tests(text, c17)
        assert back == tests

    def test_file_roundtrip(self, c17, tmp_path):
        tests = sample_tests(c17)
        path = tmp_path / "tests.txt"
        dump_tests(path, c17, tests)
        assert load_tests(path, c17) == tests

    def test_header_contents(self, c17):
        text = dumps_tests(c17, [])
        assert "# circuit: c17" in text
        assert "# inputs: N1 N2 N3 N6 N7" in text

    def test_partially_specified(self, c17):
        test = TwoPatternTest({c17.input_indices[0]: Triple.parse("0x1")})
        back = loads_tests(dumps_tests(c17, [test]), c17)
        assert back[0].triple_for(c17.input_indices[0]) is Triple.parse("0x1")
        # remaining inputs round-trip as xxx
        assert not back[0].is_fully_specified(c17)

    def test_generated_tests_roundtrip(self, s27):
        from repro import enrich_circuit

        report = enrich_circuit(s27, max_faults=200, p0_min_faults=10, seed=4)
        tests = report.result.test_vectors
        back = loads_tests(dumps_tests(s27, tests), s27)
        assert back == tests


class TestCircuitHeader:
    """The ``# circuit:`` header must match the netlist it is applied to
    (the file/circuit validation the module docstring promises)."""

    def test_mismatched_circuit_rejected(self, c17):
        text = "# circuit: s27\n# inputs: N1 N2 N3 N6 N7\n11111 -> 11111\n"
        with pytest.raises(TestFileError, match=r"'s27', not 'c17'"):
            loads_tests(text, c17)

    def test_matching_circuit_accepted(self, c17):
        tests = sample_tests(c17)
        text = dumps_tests(c17, tests)
        assert "# circuit: c17" in text
        assert loads_tests(text, c17) == tests

    def test_missing_header_accepted(self, c17):
        # files without the circuit header stay legal (pre-header format)
        assert len(loads_tests("11111 -> 11111\n", c17)) == 1

    def test_empty_header_accepted(self, c17):
        assert loads_tests("# circuit:\n", c17) == []

    def test_mismatch_reported_with_line_number(self, c17):
        text = "11111 -> 11111\n# circuit: s27\n"
        with pytest.raises(TestFileError, match="line 2"):
            loads_tests(text, c17)

    def test_x_valued_roundtrip_through_validated_header(self, c17):
        # partially specified patterns survive the round trip with both
        # headers present and checked
        tests = [
            TwoPatternTest({c17.input_indices[0]: Triple.parse("0x1")}),
            TwoPatternTest({c17.input_indices[2]: Triple.parse("xx1")}),
        ]
        text = dumps_tests(c17, tests)
        assert "# circuit: c17" in text
        back = loads_tests(text, c17)
        # unspecified inputs come back as explicit xxx, so compare per input
        assert back[0].triple_for(c17.input_indices[0]) is Triple.parse("0x1")
        assert back[1].triple_for(c17.input_indices[2]) is Triple.parse("xx1")
        assert not back[0].is_fully_specified(c17)
        assert back == loads_tests(dumps_tests(c17, back), c17)


class TestErrors:
    def test_missing_separator(self, c17):
        with pytest.raises(TestFileError, match="separator"):
            loads_tests("11111 11111\n", c17)

    def test_wrong_width(self, c17):
        with pytest.raises(TestFileError, match="width"):
            loads_tests("111 -> 11111\n", c17)

    def test_bad_character(self, c17):
        with pytest.raises(TestFileError, match="line 1"):
            loads_tests("1111ز -> 11111\n", c17)

    def test_input_count_mismatch_reports_counts(self, c17):
        text = "# inputs: A B C\n"
        with pytest.raises(
            TestFileError, match=r"file has 3 inputs, circuit has 5"
        ):
            loads_tests(text, c17)

    def test_input_order_mismatch_reports_first_difference(self, c17):
        # same width (5), but N6 and N3 swapped: the message must name the
        # first differing position, not just the (equal) counts
        text = "# inputs: N1 N2 N6 N3 N7\n"
        with pytest.raises(
            TestFileError,
            match=r"position 2: file has 'N6', circuit has 'N3'",
        ):
            loads_tests(text, c17)

    def test_blank_lines_and_comments_ignored(self, c17):
        text = "\n# a comment\n\n11111 -> 11111\n"
        assert len(loads_tests(text, c17)) == 1
