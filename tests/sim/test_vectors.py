"""Tests for two-pattern test vectors."""

import pytest

from repro.algebra import RISE, STABLE0, STABLE1, Triple, UNKNOWN
from repro.sim import TwoPatternTest


class TestConstruction:
    def test_from_names(self, c17):
        test = TwoPatternTest.from_names(
            c17, {"N1": "0x1", "N2": "111", "N3": STABLE0}
        )
        assert test.triple_for(c17.index_of("N1")) is RISE
        assert test.triple_for(c17.index_of("N2")) is STABLE1
        assert test.triple_for(c17.index_of("N3")) is STABLE0

    def test_from_names_rejects_gate(self, c17):
        with pytest.raises(ValueError):
            TwoPatternTest.from_names(c17, {"N10": "000"})

    def test_unassigned_default_unknown(self, c17):
        test = TwoPatternTest({})
        assert test.triple_for(c17.index_of("N1")) is UNKNOWN

    def test_immutable(self, c17):
        test = TwoPatternTest({})
        with pytest.raises(AttributeError):
            test.assignment = {}


class TestQueries:
    def test_is_fully_specified(self, c17):
        partial = TwoPatternTest.from_names(c17, {"N1": "0x1"})
        assert not partial.is_fully_specified(c17)
        full = TwoPatternTest(
            {pi: Triple.stable(0) for pi in c17.input_indices}
        )
        assert full.is_fully_specified(c17)

    def test_transition_counts_as_specified(self, c17):
        full = TwoPatternTest(
            {pi: Triple.transition(0, 1) for pi in c17.input_indices}
        )
        assert full.is_fully_specified(c17)

    def test_patterns_rendering(self, c17):
        test = TwoPatternTest(
            {pi: Triple.transition(0, 1) for pi in c17.input_indices}
        )
        first, second = test.patterns(c17)
        assert first == "0" * 5
        assert second == "1" * 5

    def test_format(self, c17):
        test = TwoPatternTest(
            {pi: Triple.stable(1) for pi in c17.input_indices}
        )
        assert test.format(c17) == "<11111 -> 11111>"

    def test_equality_and_hash(self, c17):
        a = TwoPatternTest({0: RISE})
        b = TwoPatternTest({0: RISE})
        c = TwoPatternTest({0: STABLE0})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_iteration(self):
        test = TwoPatternTest({0: RISE, 1: STABLE0})
        assert dict(test) == {0: RISE, 1: STABLE0}
        assert len(test) == 2
