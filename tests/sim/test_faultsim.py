"""Tests for robust path-delay-fault simulation."""

import itertools
import random

import numpy as np
import pytest

from repro.algebra import Triple
from repro.faults import build_target_sets
from repro.sim import FaultSimulator, TwoPatternTest, detected_count, detection_matrix


def exhaustive_tests(netlist):
    """All 4^n fully specified two-pattern tests (n inputs small!)."""
    pis = netlist.input_indices
    tests = []
    for combo in itertools.product(range(4), repeat=len(pis)):
        assignment = {}
        for pi, value in zip(pis, combo):
            v1, v3 = divmod(value, 2)
            assignment[pi] = Triple.transition(v1, v3)
        tests.append(TwoPatternTest(assignment))
    return tests


@pytest.fixture(scope="module")
def c17_targets(c17):
    return build_target_sets(c17, max_faults=10_000, p0_min_faults=1)


class TestDetection:
    def test_matrix_shape(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        simulator = FaultSimulator(s27, targets.all_records)
        tests = [
            TwoPatternTest(
                {pi: Triple.stable(0) for pi in s27.input_indices}
            )
        ]
        matrix = simulator.detection_matrix(tests)
        assert matrix.shape == (len(targets.all_records), 1)

    def test_stable_test_detects_nothing(self, s27):
        # A test with no transitions cannot launch any path delay fault.
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        simulator = FaultSimulator(s27, targets.all_records)
        tests = [
            TwoPatternTest({pi: Triple.stable(1) for pi in s27.input_indices})
        ]
        assert simulator.detected_mask(tests).sum() == 0

    def test_empty_test_set(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        simulator = FaultSimulator(s27, targets.all_records)
        assert simulator.detection_matrix([]).shape[1] == 0
        assert simulator.detected_mask([]).sum() == 0
        assert simulator.coverage([]) == (0, len(targets.all_records))

    def test_known_c17_detection(self, c17):
        # Hand-constructed: path (N1, N10, N22) slow-to-rise requires
        # N3 steady 1 (NAND side, rise ends non-controlling... rise at
        # NAND input going 0->1 ends at controlling-complement) and N16
        # final 1.  Just verify one directed test detects the fault and
        # the all-stable test does not.
        from repro.faults import Path, PathDelayFault, Transition, sensitize

        fault = PathDelayFault(
            Path.from_names(c17, ["N1", "N10", "N22"]), Transition.RISE
        )
        sens = sensitize(c17, fault)
        assert sens is not None
        from repro.faults.universe import FaultRecord

        record = FaultRecord(fault, sens)
        simulator = FaultSimulator(c17, [record])
        # Build a test straight from the requirements; free inputs stable 0.
        assignment = {pi: Triple.stable(0) for pi in c17.input_indices}
        for node, triple in sens.requirements.items():
            if c17.node_at(node).is_input:
                assignment[node] = (
                    triple
                    if triple.is_fully_specified() or triple.is_transition()
                    else Triple.stable(triple.v3)
                )
        # N16 = NAND(N2, N11) needs final value 1: set N2 = 0.
        test = TwoPatternTest(assignment)
        assert simulator.detected_mask([test])[0]

    def test_detected_records_subset(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        simulator = FaultSimulator(s27, targets.all_records)
        rng = random.Random(5)
        tests = [
            TwoPatternTest(
                {
                    pi: Triple.transition(rng.randint(0, 1), rng.randint(0, 1))
                    for pi in s27.input_indices
                }
            )
            for _ in range(50)
        ]
        detected = simulator.detected_records(tests)
        assert set(r.fault.key() for r in detected) <= {
            r.fault.key() for r in targets.all_records
        }
        count, total = simulator.coverage(tests)
        assert count == len(detected)
        assert total == len(targets.all_records)

    def test_convenience_wrappers(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        tests = [
            TwoPatternTest({pi: Triple.stable(0) for pi in s27.input_indices})
        ]
        matrix = detection_matrix(s27, targets.all_records, tests)
        assert matrix.shape[1] == 1
        assert detected_count(s27, targets.all_records, tests) == 0


class TestExhaustiveGroundTruth:
    """c17 is small enough to know the absolute truth by brute force."""

    def test_detectability_matches_bnb(self, c17, c17_targets):
        """A fault is detected by some exhaustive test iff branch-and-bound
        proves its requirement set satisfiable."""
        from repro.atpg import BranchAndBoundJustifier, RequirementSet

        tests = exhaustive_tests(c17)
        simulator = FaultSimulator(c17, c17_targets.all_records)
        detected = simulator.detected_mask(tests)
        bnb = BranchAndBoundJustifier(c17)
        for record, hit in zip(c17_targets.all_records, detected):
            provable = bnb.is_satisfiable(
                RequirementSet(record.sens.requirements), node_limit=100_000
            )
            assert provable == bool(hit), record.fault.format(c17)


def random_tests(netlist, n, seed):
    rng = random.Random(seed)
    return [
        TwoPatternTest(
            {
                pi: Triple.transition(rng.randint(0, 1), rng.randint(0, 1))
                for pi in netlist.input_indices
            }
        )
        for _ in range(n)
    ]


class TestVectorizedCovering:
    """The stacked kernel must agree with the per-fault loop exactly."""

    def test_s27_universe_agrees(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        tests = random_tests(s27, 40, seed=11)
        vec = FaultSimulator(s27, targets.all_records, vectorized=True)
        loop = FaultSimulator(s27, targets.all_records, vectorized=False)
        assert np.array_equal(
            vec.detection_matrix(tests), loop.detection_matrix(tests)
        )

    def test_c17_universe_agrees(self, c17, c17_targets):
        tests = random_tests(c17, 60, seed=3)
        vec = FaultSimulator(c17, c17_targets.all_records, vectorized=True)
        loop = FaultSimulator(c17, c17_targets.all_records, vectorized=False)
        assert np.array_equal(
            vec.detection_matrix(tests), loop.detection_matrix(tests)
        )

    def test_default_is_vectorized(self, s27):
        targets = build_target_sets(s27, max_faults=200, p0_min_faults=5)
        simulator = FaultSimulator(s27, targets.all_records)
        assert simulator.vectorized

    def test_scalar_env_escape_hatch(self, s27, monkeypatch):
        from repro import envflags
        from repro.sim.faultsim import SCALAR_COVER_ENV

        targets = build_target_sets(s27, max_faults=200, p0_min_faults=5)
        # The flag is snapshotted per process; reset() re-reads it (and the
        # final reset restores the true environment for later tests).
        monkeypatch.setenv(SCALAR_COVER_ENV, "1")
        envflags.reset()
        try:
            scalar = FaultSimulator(s27, targets.all_records)
            assert not scalar.vectorized
            monkeypatch.setenv(SCALAR_COVER_ENV, "0")
            envflags.reset()
            assert FaultSimulator(s27, targets.all_records).vectorized
        finally:
            monkeypatch.undo()
            envflags.reset()
        tests = random_tests(s27, 10, seed=1)
        vec = FaultSimulator(s27, targets.all_records, vectorized=True)
        assert np.array_equal(
            scalar.detection_matrix(tests), vec.detection_matrix(tests)
        )


class TestSharedCache:
    def test_one_shot_calls_share_simulator(self, s27):
        from repro.sim.faultsim import shared_fault_simulator

        targets = build_target_sets(s27, max_faults=200, p0_min_faults=5)
        first = shared_fault_simulator(s27, targets.all_records)
        second = shared_fault_simulator(s27, targets.all_records)
        assert first is second

    def test_pool_workers_bypass_cache(self, s27):
        from repro.sim import faultsim

        targets = build_target_sets(s27, max_faults=200, p0_min_faults=5)
        before = dict(faultsim._shared)
        faultsim.mark_pool_worker(True)
        try:
            first = faultsim.shared_fault_simulator(s27, targets.all_records)
            second = faultsim.shared_fault_simulator(s27, targets.all_records)
            assert first is not second
            assert dict(faultsim._shared) == before  # untouched
        finally:
            faultsim.mark_pool_worker(False)

    def test_concurrent_access_is_safe(self, s27):
        import threading

        from repro.sim.faultsim import shared_fault_simulator

        populations = [
            build_target_sets(s27, max_faults=cap, p0_min_faults=5).all_records
            for cap in (40, 60, 80, 100)
        ]
        errors = []

        def hammer(records):
            try:
                for _ in range(20):
                    shared_fault_simulator(s27, records)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(pop,))
            for pop in populations
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
