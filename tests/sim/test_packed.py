"""Packed {0,1,x} backend: packing, kernel equivalence, dispatch.

The packed kernel is a pure optimization behind the ``REPRO_BACKEND``
seam: for every cone, every {0,1,x} input batch and every batch width
(including widths that do not fill a 64-lane word) it must reproduce the
numpy reference kernel exactly -- ``run_codes`` values and ``screen``
verdicts alike.  Hypothesis drives random synthesized cones through
both; the lane-padding checks mirror the pad-row treatment of the fused
level kernel (widening a batch must not disturb earlier columns).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import envflags
from repro.algebra.ternary import ONE, X, ZERO
from repro.algebra.triple import Triple
from repro.circuit.synth import SynthProfile, generate
from repro.engine.stats import EngineStats
from repro.sim.batch import BatchSimulator, ConeSimulator
from repro.sim.cover import CompiledRequirements
from repro.sim.packed import (
    LANES,
    PackedConeSimulator,
    pack_codes,
    unpack_words,
    words_for,
)

#: Batch widths that stress lane padding: single lane, just below/above
#: the historic 32-lane layout, and around one full 64-lane word.
AWKWARD_WIDTHS = (1, 5, 31, 32, 33, 63, 64, 65, 70)


def synth_netlist(seed: int, style: str):
    if style == "mesh":
        profile = SynthProfile(
            name=f"pk{seed}",
            seed=seed,
            n_inputs=6 + seed % 5,
            n_gates=25 + seed % 17,
            style="mesh",
        )
    else:
        profile = SynthProfile(
            name=f"pk{seed}",
            seed=seed,
            n_inputs=6 + seed % 5,
            style="chain",
            rails=3,
            depth=5 + seed % 4,
        )
    return generate(profile)


def random_cone(netlist, rng: random.Random) -> ConeSimulator:
    sim = BatchSimulator(netlist, backend="numpy")
    seeds = rng.sample(range(len(netlist)), min(3, len(netlist)))
    return sim.restricted(seeds)


def random_codes(np_rng, n_rows: int, k: int) -> np.ndarray:
    return np_rng.integers(0, 3, size=(n_rows, 3, k)).astype(np.int8)


def random_requirements(cone, rng: random.Random) -> CompiledRequirements:
    requirements = {}
    for node in rng.sample(
        [int(node) for node in cone.nodes], min(4, cone.n_nodes)
    ):
        requirements[node] = Triple.of(
            rng.choice([ZERO, ONE, X]),
            rng.choice([ZERO, ONE, X]),
            rng.choice([ZERO, ONE, X]),
        )
    return CompiledRequirements(requirements)


class TestPacking:
    def test_words_for(self):
        assert words_for(1) == 1
        assert words_for(LANES) == 1
        assert words_for(LANES + 1) == 2
        assert words_for(0) == 1  # empty batches still get one word

    @pytest.mark.parametrize("k", AWKWARD_WIDTHS)
    def test_round_trip(self, k):
        np_rng = np.random.default_rng(k)
        codes = random_codes(np_rng, 7, k)
        words = pack_codes(codes)
        assert words.shape == (7, 2, 3, words_for(k))
        assert np.array_equal(unpack_words(words, k), codes)

    def test_padding_lanes_are_zero(self):
        # Lanes beyond k must pack as (0, 0): the kernel relies on pad
        # lanes never injecting spurious "possibly 1" bits.
        codes = np.full((2, 3, 3), ONE, dtype=np.int8)
        words = pack_codes(codes)
        mask = np.uint64((1 << 3) - 1)
        assert np.all(words & ~mask == 0)

    def test_invalid_plane_pair_decodes_as_x(self):
        # (d1=1, p1=0) is unrepresentable by pack_codes; a defensive
        # decode maps it to x rather than inventing a definite value.
        words = np.zeros((1, 2, 3, 1), dtype=np.uint64)
        words[0, 0, :, 0] = 1  # d1 set, p1 clear
        assert np.all(unpack_words(words, 1) == X)


class TestKernelEquivalence:
    """Packed vs numpy on random cones, columns and widths."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_run_codes_matches_numpy(self, data):
        seed = data.draw(st.integers(0, 10_000))
        style = data.draw(st.sampled_from(["mesh", "chain"]))
        k = data.draw(st.sampled_from(AWKWARD_WIDTHS))
        netlist = synth_netlist(seed, style)
        cone = random_cone(netlist, random.Random(seed))
        packed = PackedConeSimulator(cone)
        codes = random_codes(np.random.default_rng(seed), len(cone.pi_index), k)
        assert np.array_equal(packed.run_codes(codes), cone.run_codes(codes))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_screen_matches_reference_predicates(self, data):
        seed = data.draw(st.integers(0, 10_000))
        k = data.draw(st.sampled_from(AWKWARD_WIDTHS))
        netlist = synth_netlist(seed, "mesh")
        rng = random.Random(seed)
        cone = random_cone(netlist, rng)
        packed = PackedConeSimulator(cone)
        compiled = random_requirements(cone, rng)
        codes = random_codes(np.random.default_rng(seed), len(cone.pi_index), k)
        reference = cone.run_codes(codes)
        local = cone.localize(compiled)
        consistent, covered = packed.screen(codes, packed.localize(compiled))
        assert np.array_equal(consistent, local.consistent_with(reference))
        assert np.array_equal(covered, local.covered_by(reference))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_widening_a_batch_never_disturbs_earlier_columns(self, data):
        # The packed analogue of the fused kernel's neutral pad rows:
        # lanes past the batch width must be inert, so growing the batch
        # reproduces the narrow result column for column.
        seed = data.draw(st.integers(0, 10_000))
        k = data.draw(st.sampled_from(AWKWARD_WIDTHS))
        extra = data.draw(st.integers(1, 40))
        netlist = synth_netlist(seed, "mesh")
        cone = random_cone(netlist, random.Random(seed))
        packed = PackedConeSimulator(cone)
        np_rng = np.random.default_rng(seed)
        codes = random_codes(np_rng, len(cone.pi_index), k)
        narrow = packed.run_codes(codes)
        wide = np.concatenate(
            [codes, random_codes(np_rng, len(cone.pi_index), extra)], axis=2
        )
        assert np.array_equal(packed.run_codes(wide)[:, :, :k], narrow)

    def test_rejects_bad_shape(self, c17):
        cone = random_cone(c17, random.Random(0))
        packed = PackedConeSimulator(cone)
        with pytest.raises(ValueError):
            packed.run_codes(
                np.zeros((len(cone.pi_index) + 1, 3, 4), dtype=np.int8)
            )


class TestDispatch:
    def test_default_backend_is_numpy(self, c17, monkeypatch):
        try:
            monkeypatch.delenv(envflags.BACKEND_ENV, raising=False)
            envflags.reset()
            sim = BatchSimulator(c17)
            assert sim.backend == "numpy"
            assert type(sim.restricted([3])) is ConeSimulator
        finally:
            monkeypatch.undo()
            envflags.reset()

    def test_packed_backend_wraps_cones(self, c17):
        sim = BatchSimulator(c17, backend="packed")
        cone = sim.restricted([3])
        assert isinstance(cone, PackedConeSimulator)
        assert cone.backend == "packed"

    def test_packed_twin_cached_on_cone(self, c17):
        numpy_sim = BatchSimulator(c17, backend="numpy")
        packed_sim = BatchSimulator(c17, backend="packed")
        assert packed_sim.restricted([3]) is packed_sim.restricted([3])
        # The numpy view of the same cone is untouched by the twin.
        assert type(numpy_sim.restricted([3])) is ConeSimulator

    def test_unknown_backend_argument_rejected(self, c17):
        with pytest.raises(ValueError):
            BatchSimulator(c17, backend="bogus")

    def test_env_seam_selects_packed(self, c17, monkeypatch):
        try:
            monkeypatch.setenv(envflags.BACKEND_ENV, "packed")
            envflags.reset()
            sim = BatchSimulator(c17)
            assert sim.backend == "packed"
            assert isinstance(sim.restricted([3]), PackedConeSimulator)
        finally:
            monkeypatch.undo()
            envflags.reset()

    def test_env_native_is_documented_stub(self, monkeypatch):
        try:
            monkeypatch.setenv(envflags.BACKEND_ENV, "native")
            envflags.reset()
            with pytest.raises(NotImplementedError):
                envflags.simulation_backend()
        finally:
            monkeypatch.undo()
            envflags.reset()

    def test_env_typo_is_an_error_not_a_fallback(self, monkeypatch):
        try:
            monkeypatch.setenv(envflags.BACKEND_ENV, "numppy")
            envflags.reset()
            with pytest.raises(ValueError):
                envflags.simulation_backend()
        finally:
            monkeypatch.undo()
            envflags.reset()


class TestStats:
    def test_backend_counters(self, c17):
        stats = EngineStats()
        sim = BatchSimulator(c17, stats=stats, backend="packed")
        cone = sim.restricted([3])
        codes = np.full((len(cone.pi_index), 3, 5), X, dtype=np.int8)
        cone.run_codes(codes)
        assert stats.counter("backend.packed.cones") == 1
        assert stats.counter("backend.packed.runs") == 1
        assert stats.counter("backend.packed.columns") == 5
        assert stats.counter("backend.packed.words") == words_for(5)
        # The shared batch/cone series keep counting across backends.
        assert stats.counter("batch.runs") == 1
        assert stats.counter("cone.runs") == 1
