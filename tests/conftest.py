"""Shared fixtures: small real circuits and fast synthetic ones."""

from __future__ import annotations

import pytest

from repro.circuit import load_circuit
from repro.circuit.synth import SynthProfile, generate


@pytest.fixture(scope="session")
def s27():
    """The paper's Figure 1 circuit (combinational core, 7 PIs)."""
    return load_circuit("s27")


@pytest.fixture(scope="session")
def c17():
    """ISCAS-85 c17: 5 inputs, 6 NAND gates -- small enough for exhaustive
    two-pattern analysis (4^5 = 1024 fully specified tests)."""
    return load_circuit("c17")


@pytest.fixture(scope="session")
def tiny_chain():
    """A small chain-style synthetic circuit (fast ATPG in tests)."""
    return generate(
        SynthProfile(
            name="tiny_chain",
            seed=42,
            style="chain",
            n_inputs=10,
            rails=4,
            depth=8,
            q2=0.3,
            p_flip=0.05,
        )
    )


@pytest.fixture(scope="session")
def tiny_mesh():
    """A small mesh-style synthetic circuit."""
    return generate(
        SynthProfile(
            name="tiny_mesh",
            seed=7,
            style="mesh",
            n_inputs=8,
            n_gates=30,
            n_outputs=4,
            window=8.0,
        )
    )
