"""Unit tests for the benchmark comparison gate (tools/bench_compare.py)."""

import argparse
import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "tools" / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


def _run(base, cur, max_regression=0.25):
    return bench_compare.compare(
        {"results": cur}, {"results": base}, max_regression
    )


class TestCompare:
    def test_within_tolerance_passes(self):
        assert _run({"a": 1.0}, {"a": 1.2}) == []

    def test_regression_fails_with_detail(self):
        failures = _run({"a": 1.0}, {"a": 2.0})
        assert len(failures) == 1
        assert "a" in failures[0] and "2.00x" in failures[0]

    def test_missing_baseline_entry_warns_but_passes(self, capsys):
        """A baseline key the current run did not produce (a retired or
        not-run benchmark) must be skipped, not treated as a failure."""
        failures = _run({"a": 1.0, "gone": 0.5}, {"a": 1.0})
        assert failures == []
        out = capsys.readouterr().out
        assert "gone" in out and "missing from current run" in out

    def test_extra_current_entry_ignored(self):
        assert _run({"a": 1.0}, {"a": 1.0, "new": 9.0}) == []

    def test_zero_baseline_counts_as_regression(self):
        assert len(_run({"a": 0.0}, {"a": 0.1})) == 1


class TestToleratedRegressions:
    def test_fraction_within_absolute_bar_passes(self):
        """The warm/cold fraction is jitter-dominated: a nominal slowdown
        that stays under the >= 5x acceptance bar is not a regression."""
        assert _run(
            {"artifact_warm_cold_fraction": 0.03},
            {"artifact_warm_cold_fraction": 0.05},
        ) == []

    def test_fraction_past_absolute_bar_fails(self):
        failures = _run(
            {"artifact_warm_cold_fraction": 0.03},
            {"artifact_warm_cold_fraction": 0.25},
        )
        assert len(failures) == 1

    def test_tiny_wall_clocks_below_noise_floor_pass(self):
        assert _run({"sharded_merge": 0.0001}, {"sharded_merge": 0.0004}) == []

    def test_regression_past_noise_floor_fails(self):
        failures = _run({"a": 0.04}, {"a": 0.06})
        assert len(failures) == 1

    def test_journal_gate_applies_same_tolerance(self, tmp_path, monkeypatch):
        from repro.journal import append_entry, bench_entry

        monkeypatch.setenv("REPRO_JOURNAL_SHA", "a" * 40)
        journal = tmp_path / "journal.jsonl"
        append_entry(
            journal,
            bench_entry({"results": {"artifact_warm_cold_fraction": 0.03}}),
        )
        noisy = {"meta": {}, "results": {"artifact_warm_cold_fraction": 0.05}}
        regressions = bench_compare.journal_run(
            noisy, _journal_args(journal, journal_gate=True), skip_gate=False
        )
        assert regressions == 0


class TestMergeBaseline:
    def test_current_wins_shared_entries(self):
        merged = bench_compare.merge_baseline(
            {"meta": {"python": "3.12"}, "results": {"a": 2.0}},
            {"meta": {"python": "3.10"}, "results": {"a": 1.0}},
        )
        assert merged["results"] == {"a": 2.0}
        assert merged["meta"] == {"python": "3.12"}

    def test_retired_entries_preserved(self):
        """--update-baseline must merge, not overwrite: entries only the
        old baseline has (retired benchmarks) survive the refresh."""
        merged = bench_compare.merge_baseline(
            {"results": {"a": 2.0}},
            {"results": {"a": 1.0, "retired": 0.5}},
        )
        assert merged["results"] == {"a": 2.0, "retired": 0.5}


def _journal_args(journal, journal_gate=False, max_regression=0.25):
    return argparse.Namespace(
        journal=str(journal),
        journal_gate=journal_gate,
        max_regression=max_regression,
        sharded=False,
        packed=False,
        cached=False,
        repeats=3,
        update_baseline=False,
    )


class TestPackedMode:
    def test_sharded_and_packed_are_mutually_exclusive(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            bench_compare.main(["--sharded", "--packed"])
        assert excinfo.value.code == 2
        assert "pick one" in capsys.readouterr().err

    def test_packed_run_journals_as_its_own_config(self, tmp_path, monkeypatch):
        """The packed suite must be distinguishable in the journal, so the
        two backends trend as separate configs."""
        from repro.journal import read_journal

        monkeypatch.setenv("REPRO_JOURNAL_SHA", "a" * 40)
        journal = tmp_path / "journal.jsonl"
        args = _journal_args(journal)
        args.packed = True
        current = {"meta": {}, "results": {"justify_cone_packed": 0.5}}
        bench_compare.journal_run(current, args, skip_gate=False)
        [entry] = read_journal(journal).entries
        assert entry["config"]["mode"] == "packed"
        assert entry["config"]["packed"] is True


class TestCachedMode:
    def test_cached_excludes_other_suites(self, capsys):
        import pytest

        for argv in (["--cached", "--sharded"], ["--cached", "--packed"]):
            with pytest.raises(SystemExit):
                bench_compare.main(argv)

    def test_cached_run_journals_as_its_own_config(self, tmp_path, monkeypatch):
        from repro.journal import read_journal

        monkeypatch.setenv("REPRO_JOURNAL_SHA", "a" * 40)
        journal = tmp_path / "journal.jsonl"
        args = _journal_args(journal)
        args.cached = True
        current = {"meta": {}, "results": {"artifact_cold_build": 0.5}}
        bench_compare.journal_run(current, args, skip_gate=False)
        [entry] = read_journal(journal).entries
        assert entry["config"]["mode"] == "cached"
        assert entry["config"]["cached"] is True


class TestJournalRun:
    def test_appends_valid_bench_entry(self, tmp_path, monkeypatch):
        from repro.journal import read_journal

        monkeypatch.setenv("REPRO_JOURNAL_SHA", "a" * 40)
        journal = tmp_path / "journal.jsonl"
        current = {"meta": {}, "results": {"tables_s27": 0.5}}
        regressions = bench_compare.journal_run(
            current, _journal_args(journal), skip_gate=False
        )
        assert regressions == 0
        read = read_journal(journal)
        assert read.problems == []
        [entry] = read.entries
        assert entry["kind"] == "bench"
        assert entry["metrics"] == {"tables_s27": 0.5}
        assert entry["config"]["repeats"] == 3

    def test_gate_counts_trajectory_regressions(self, tmp_path, monkeypatch):
        from repro.journal import append_entry, bench_entry, read_journal

        monkeypatch.setenv("REPRO_JOURNAL_SHA", "a" * 40)
        journal = tmp_path / "journal.jsonl"
        append_entry(journal, bench_entry({"results": {"tables_s27": 0.5}}))
        slow = {"meta": {}, "results": {"tables_s27": 1.5}}
        regressions = bench_compare.journal_run(
            slow, _journal_args(journal, journal_gate=True), skip_gate=False
        )
        assert regressions == 1
        # The regressing measurement is still recorded after the verdict.
        assert len(read_journal(journal).entries) == 2

    def test_skip_gate_still_appends(self, tmp_path, monkeypatch):
        from repro.journal import append_entry, bench_entry, read_journal

        monkeypatch.setenv("REPRO_JOURNAL_SHA", "a" * 40)
        journal = tmp_path / "journal.jsonl"
        append_entry(journal, bench_entry({"results": {"tables_s27": 0.5}}))
        slow = {"meta": {}, "results": {"tables_s27": 9.0}}
        regressions = bench_compare.journal_run(
            slow, _journal_args(journal, journal_gate=True), skip_gate=True
        )
        assert regressions == 0
        assert len(read_journal(journal).entries) == 2
