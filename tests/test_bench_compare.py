"""Unit tests for the benchmark comparison gate (tools/bench_compare.py)."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "tools" / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


def _run(base, cur, max_regression=0.25):
    return bench_compare.compare(
        {"results": cur}, {"results": base}, max_regression
    )


class TestCompare:
    def test_within_tolerance_passes(self):
        assert _run({"a": 1.0}, {"a": 1.2}) == []

    def test_regression_fails_with_detail(self):
        failures = _run({"a": 1.0}, {"a": 2.0})
        assert len(failures) == 1
        assert "a" in failures[0] and "2.00x" in failures[0]

    def test_missing_baseline_entry_warns_but_passes(self, capsys):
        """A baseline key the current run did not produce (a retired or
        not-run benchmark) must be skipped, not treated as a failure."""
        failures = _run({"a": 1.0, "gone": 0.5}, {"a": 1.0})
        assert failures == []
        out = capsys.readouterr().out
        assert "gone" in out and "missing from current run" in out

    def test_extra_current_entry_ignored(self):
        assert _run({"a": 1.0}, {"a": 1.0, "new": 9.0}) == []

    def test_zero_baseline_counts_as_regression(self):
        assert len(_run({"a": 0.0}, {"a": 0.1})) == 1
