"""Process-wide environment flag snapshots (repro.envflags)."""

import pytest

from repro import envflags


@pytest.fixture(autouse=True)
def clean_snapshot(monkeypatch):
    """Each test starts and ends with a fresh environment read."""
    envflags.reset()
    yield
    monkeypatch.undo()
    envflags.reset()


@pytest.mark.parametrize("raw", ["1", "true", "TRUE", " yes ", "On"])
def test_truthy_values(monkeypatch, raw):
    monkeypatch.setenv(envflags.FULL_SIM_ENV, raw)
    envflags.reset()
    assert envflags.full_sim_requested()


@pytest.mark.parametrize("raw", ["", "0", "false", "off", "no", "2"])
def test_falsy_values(monkeypatch, raw):
    monkeypatch.setenv(envflags.SCALAR_COVER_ENV, raw)
    envflags.reset()
    assert not envflags.scalar_cover_requested()


def test_unset_is_false(monkeypatch):
    monkeypatch.delenv(envflags.FULL_SIM_ENV, raising=False)
    monkeypatch.delenv(envflags.SCALAR_COVER_ENV, raising=False)
    envflags.reset()
    assert not envflags.full_sim_requested()
    assert not envflags.scalar_cover_requested()


def test_snapshot_ignores_later_changes(monkeypatch):
    monkeypatch.delenv(envflags.FULL_SIM_ENV, raising=False)
    envflags.reset()
    assert not envflags.full_sim_requested()
    # Flipping the environment *without* reset() must not change the
    # answer: the flag is read once per process.
    monkeypatch.setenv(envflags.FULL_SIM_ENV, "1")
    assert not envflags.full_sim_requested()
    envflags.reset()
    assert envflags.full_sim_requested()


def test_flags_are_independent(monkeypatch):
    monkeypatch.setenv(envflags.SCALAR_COVER_ENV, "1")
    monkeypatch.delenv(envflags.FULL_SIM_ENV, raising=False)
    envflags.reset()
    assert envflags.scalar_cover_requested()
    assert not envflags.full_sim_requested()
