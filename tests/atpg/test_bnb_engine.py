"""Tests for the branch-and-bound generation engine (paper's variant)."""

import pytest

from repro.atpg import AtpgConfig, generate_basic, generate_enriched
from repro.faults import build_target_sets
from repro.sim import FaultSimulator


@pytest.fixture(scope="module")
def s27_targets(s27):
    return build_target_sets(s27, max_faults=1000, p0_min_faults=20)


class TestBnbEngine:
    def test_seed_independent(self, s27, s27_targets):
        """The paper: branch-and-bound justification eliminates the random
        variations of the simulation-based procedure."""
        runs = [
            generate_basic(
                s27,
                s27_targets.p0,
                AtpgConfig(heuristic="values", seed=seed, engine="bnb"),
            )
            for seed in (1, 2, 3)
        ]
        tests = [[t.test for t in run.tests] for run in runs]
        assert tests[0] == tests[1] == tests[2]
        detected = {run.detected_by_pool[0] for run in runs}
        assert len(detected) == 1

    def test_detects_at_least_simulation_engine(self, s27, s27_targets):
        """BnB is complete, so the uncompacted run detects every testable
        primary -- at least as many as any randomized run."""
        bnb = generate_basic(
            s27, s27_targets.p0, AtpgConfig(heuristic="uncomp", engine="bnb")
        )
        randomized = generate_basic(
            s27, s27_targets.p0, AtpgConfig(heuristic="uncomp", seed=5)
        )
        assert bnb.detected_by_pool[0] >= randomized.detected_by_pool[0]

    def test_claims_verified(self, s27, s27_targets):
        run = generate_basic(
            s27, s27_targets.p0, AtpgConfig(heuristic="values", engine="bnb")
        )
        simulator = FaultSimulator(s27, s27_targets.p0)
        detected, _ = simulator.coverage(run.test_vectors)
        assert detected == run.detected_by_pool[0]

    def test_enrichment_with_bnb(self, s27, s27_targets):
        report = generate_enriched(
            s27,
            s27_targets,
            AtpgConfig(heuristic="values", engine="bnb"),
        )
        assert report.p0_detected == report.p0_total  # s27 P0 fully testable
        assert report.p1_detected > 0

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            AtpgConfig(engine="oracle")
