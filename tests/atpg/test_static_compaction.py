"""Tests for static test-set compaction."""

import random

import pytest

from repro.algebra import Triple
from repro.atpg import AtpgConfig, compact_tests, generate_basic
from repro.faults import build_target_sets
from repro.sim import FaultSimulator, TwoPatternTest


@pytest.fixture(scope="module")
def setup(s27):
    targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
    rng = random.Random(0)
    # A deliberately redundant test set: random tests plus duplicates.
    tests = []
    for _ in range(40):
        tests.append(
            TwoPatternTest(
                {
                    pi: Triple.transition(rng.randint(0, 1), rng.randint(0, 1))
                    for pi in s27.input_indices
                }
            )
        )
    tests.extend(tests[:10])  # exact duplicates are always redundant
    return s27, targets, tests


class TestCompaction:
    @pytest.mark.parametrize("order", ["reverse", "greedy"])
    def test_coverage_preserved(self, setup, order):
        netlist, targets, tests = setup
        simulator = FaultSimulator(netlist, targets.all_records)
        before, _ = simulator.coverage(tests)
        result = compact_tests(
            netlist, targets.all_records, tests, order=order, simulator=simulator
        )
        after, _ = simulator.coverage(result.tests)
        assert after == before == result.detected
        assert result.num_tests + result.dropped == len(tests)

    @pytest.mark.parametrize("order", ["reverse", "greedy"])
    def test_duplicates_removed(self, setup, order):
        netlist, targets, tests = setup
        result = compact_tests(netlist, targets.all_records, tests, order=order)
        assert result.dropped >= 10  # at least the exact duplicates

    def test_greedy_not_worse_than_reverse(self, setup):
        netlist, targets, tests = setup
        reverse = compact_tests(netlist, targets.all_records, tests, order="reverse")
        greedy = compact_tests(netlist, targets.all_records, tests, order="greedy")
        assert greedy.num_tests <= reverse.num_tests + 2

    def test_no_redundant_test_remains(self, setup):
        netlist, targets, tests = setup
        simulator = FaultSimulator(netlist, targets.all_records)
        result = compact_tests(
            netlist, targets.all_records, tests, simulator=simulator
        )
        matrix = simulator.detection_matrix(result.tests)
        for column in range(matrix.shape[1]):
            others = [c for c in range(matrix.shape[1]) if c != column]
            if others:
                union = matrix[:, others].any(axis=1)
                assert (matrix[:, column] & ~union).any(), column

    def test_empty_input(self, s27, setup):
        _, targets, _ = setup
        result = compact_tests(s27, targets.all_records, [])
        assert result.tests == []
        assert result.dropped == 0

    def test_kept_indices_are_input_positions(self, setup):
        netlist, targets, tests = setup
        result = compact_tests(netlist, targets.all_records, tests)
        assert all(tests[i] == test for i, test in zip(result.kept_indices, result.tests))

    def test_invalid_order(self, setup):
        netlist, targets, tests = setup
        with pytest.raises(ValueError):
            compact_tests(netlist, targets.all_records, tests, order="random")

    def test_dynamic_output_already_tight(self, s27):
        """Tests from the dynamic-compaction generator with fault dropping
        should be (nearly) free of statically redundant tests."""
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        run = generate_basic(
            s27, targets.p0, AtpgConfig(heuristic="values", seed=2)
        )
        result = compact_tests(s27, targets.p0, run.test_vectors)
        assert result.dropped <= max(2, run.num_tests // 10)
