"""Tests for the simulation-based justification engine."""

import random

import pytest

from repro.algebra import Triple
from repro.atpg import (
    Justifier,
    RequirementSet,
    has_implication_conflict,
)
from repro.circuit import GateType, build_netlist
from repro.faults import build_target_sets
from repro.sim import CompiledRequirements


def rng():
    return random.Random(0)


class TestBasicJustification:
    def test_single_line_requirement(self, c17):
        justifier = Justifier(c17)
        requirements = RequirementSet(
            {c17.index_of("N10"): Triple.parse("xx0")}
        )
        result = justifier.justify(requirements, rng())
        assert result is not None
        assert result.test.is_fully_specified(c17)
        assert requirements.compiled().covered_by(result.sim_codes[:, :, None])[0]

    def test_transition_requirement(self, c17):
        justifier = Justifier(c17)
        requirements = RequirementSet(
            {c17.index_of("N22"): Triple.parse("0x1")}
        )
        result = justifier.justify(requirements, rng())
        assert result is not None
        assert requirements.compiled().covered_by(result.sim_codes[:, :, None])[0]

    def test_unsatisfiable_direct(self, c17):
        justifier = Justifier(c17)
        # N10 = NAND(N1, N3) cannot be steady 0 with N1 steady 0.
        requirements = RequirementSet(
            {
                c17.index_of("N1"): Triple.parse("000"),
                c17.index_of("N10"): Triple.parse("000"),
            }
        )
        assert justifier.justify(requirements, rng()) is None

    def test_every_p0_success_covers(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        justifier = Justifier(s27)
        r = rng()
        successes = 0
        for record in targets.p0:
            requirements = RequirementSet(record.sens.requirements)
            result = justifier.justify(requirements, r)
            if result is None:
                continue
            successes += 1
            compiled = CompiledRequirements(record.sens.requirements)
            assert compiled.covered_by(result.sim_codes[:, :, None])[0]
        assert successes > 0

    def test_deterministic_given_seed(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        record = targets.p0[0]
        justifier = Justifier(s27)
        a = justifier.justify(
            RequirementSet(record.sens.requirements), random.Random(7)
        )
        b = justifier.justify(
            RequirementSet(record.sens.requirements), random.Random(7)
        )
        assert a is not None and b is not None
        assert a.test == b.test

    def test_stats_populated(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        justifier = Justifier(s27)
        result = justifier.justify(
            RequirementSet(targets.p0[0].sens.requirements), rng()
        )
        assert result is not None
        assert result.stats.simulations >= 1
        assert result.stats.rounds >= 1

    def test_empty_requirements(self, c17):
        justifier = Justifier(c17)
        result = justifier.justify(RequirementSet(), rng())
        assert result is not None
        assert result.test.is_fully_specified(c17)


class TestNecessaryValues:
    def test_forced_pi_assignment(self):
        # y = AND(a, b); require y = 111 -> both inputs forced steady 1.
        netlist = build_netlist(
            "force",
            inputs=["a", "b"],
            gates=[("y", GateType.AND, ["a", "b"])],
            outputs=["y"],
        )
        justifier = Justifier(netlist)
        result = justifier.justify(
            RequirementSet({netlist.index_of("y"): Triple.parse("111")}), rng()
        )
        assert result is not None
        assert result.test.triple_for(netlist.index_of("a")) is Triple.parse("111")
        assert result.test.triple_for(netlist.index_of("b")) is Triple.parse("111")
        # With both endpoints forced there should be no random decisions.
        assert result.stats.decisions == 0

    def test_requirement_on_pi_directly(self, c17):
        justifier = Justifier(c17)
        result = justifier.justify(
            RequirementSet({c17.index_of("N1"): Triple.parse("0x1")}), rng()
        )
        assert result is not None
        assert result.test.triple_for(c17.index_of("N1")) is Triple.parse("0x1")


class TestImplicationConflict:
    def test_no_conflict_on_satisfiable(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        assert not has_implication_conflict(
            s27, RequirementSet(targets.p0[0].sens.requirements)
        )

    def test_conflict_detected(self):
        netlist = build_netlist(
            "confl",
            inputs=["a"],
            gates=[
                ("g1", GateType.NOT, ["a"]),
                ("g2", GateType.AND, ["a", "g1"]),
            ],
            outputs=["g2"],
        )
        requirements = RequirementSet(
            {
                netlist.index_of("a"): Triple.parse("0x1"),
                netlist.index_of("g1"): Triple.parse("111"),
            }
        )
        assert has_implication_conflict(netlist, requirements)

    def test_accepts_justifier_instance(self, c17):
        justifier = Justifier(c17)
        assert not has_implication_conflict(justifier, RequirementSet())

    def test_sound_vs_brute_force(self, c17):
        """Anything flagged undetectable by implications must really have
        no test (cross-check with exhaustive simulation)."""
        import itertools

        from repro.sim import FaultSimulator, TwoPatternTest

        targets = build_target_sets(c17, max_faults=10_000, p0_min_faults=1)
        justifier = Justifier(c17)
        tests = []
        for combo in itertools.product(range(4), repeat=5):
            assignment = {}
            for pi, value in zip(c17.input_indices, combo):
                v1, v3 = divmod(value, 2)
                assignment[pi] = Triple.transition(v1, v3)
            tests.append(TwoPatternTest(assignment))
        simulator = FaultSimulator(c17, targets.all_records)
        detected = simulator.detected_mask(tests)
        for record, hit in zip(targets.all_records, detected):
            flagged = has_implication_conflict(
                justifier, RequirementSet(record.sens.requirements)
            )
            if flagged:
                assert not hit, record.fault.format(c17)
