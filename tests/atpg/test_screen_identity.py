"""Output identity of the fast paths against their reference paths.

The cone-restricted justifier and the batched candidate screening are pure
optimizations: both must reproduce the reference pipeline (full-netlist
simulation, per-candidate scalar screening) bit for bit, RNG draws
included.  These tests run the full generator matrix -- cone on/off x
vectorized on/off -- and require identical test sets.
"""

from __future__ import annotations

import pytest

from repro import envflags
from repro.atpg.generator import AtpgConfig
from repro.atpg.generator import TestGenerator as Generator
from repro.atpg.justify import Justifier
from repro.faults import build_target_sets


def fingerprint(result):
    """Full structural fingerprint of a generation run."""
    tests = tuple(
        tuple(sorted(
            (pi, triple.v1, triple.v2, triple.v3)
            for pi, triple in test.assignment.items()
        ))
        for test in result.test_vectors
    )
    detected = tuple(
        tuple(sorted(record.fault.key() for record in generated.detected))
        for generated in result.tests
    )
    return (tests, detected, tuple(result.detected_by_pool))


def run(netlist, pools, heuristic, *, use_cones, vectorized, seed=11):
    config = AtpgConfig(
        heuristic=heuristic, seed=seed, max_secondary_attempts=12
    )
    justifier = Justifier(netlist, use_cones=use_cones)
    generator = Generator(
        netlist, config, justifier.simulator, justifier, vectorized=vectorized
    )
    return generator.generate(pools)


VARIANTS = [
    pytest.param(False, True, id="full-sim"),
    pytest.param(True, False, id="scalar-screen"),
    pytest.param(False, False, id="full-scalar"),
]


@pytest.fixture(scope="module")
def s27_pools(s27):
    targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
    return [targets.p0, targets.p1]


@pytest.fixture(scope="module")
def c17_pools(c17):
    targets = build_target_sets(c17, max_faults=1000, p0_min_faults=10)
    return [targets.p0, targets.p1]


@pytest.fixture(scope="module")
def chain_pools(tiny_chain):
    targets = build_target_sets(tiny_chain, max_faults=200, p0_min_faults=30)
    return [targets.p0, targets.p1]


class TestGeneratorIdentity:
    @pytest.mark.parametrize("heuristic", ["values", "length", "arbit"])
    @pytest.mark.parametrize("use_cones,vectorized", VARIANTS)
    def test_s27(self, s27, s27_pools, heuristic, use_cones, vectorized):
        reference = run(
            s27, s27_pools, heuristic, use_cones=True, vectorized=True
        )
        variant = run(
            s27, s27_pools, heuristic,
            use_cones=use_cones, vectorized=vectorized,
        )
        assert fingerprint(variant) == fingerprint(reference)

    @pytest.mark.parametrize("use_cones,vectorized", VARIANTS)
    def test_c17(self, c17, c17_pools, use_cones, vectorized):
        reference = run(
            c17, c17_pools, "values", use_cones=True, vectorized=True
        )
        variant = run(
            c17, c17_pools, "values",
            use_cones=use_cones, vectorized=vectorized,
        )
        assert fingerprint(variant) == fingerprint(reference)

    @pytest.mark.parametrize("use_cones,vectorized", VARIANTS)
    def test_synthetic_proxy(self, tiny_chain, chain_pools, use_cones, vectorized):
        """One chain-style proxy circuit -- the experiments' circuit family."""
        reference = run(
            tiny_chain, chain_pools, "values", use_cones=True, vectorized=True
        )
        variant = run(
            tiny_chain, chain_pools, "values",
            use_cones=use_cones, vectorized=vectorized,
        )
        assert fingerprint(variant) == fingerprint(reference)

    def test_seed_changes_output(self, s27, s27_pools):
        """Sanity: the fingerprint is sensitive enough to notice RNG drift."""
        a = run(s27, s27_pools, "values", use_cones=True, vectorized=True)
        b = run(
            s27, s27_pools, "values",
            use_cones=True, vectorized=True, seed=12,
        )
        assert fingerprint(a) != fingerprint(b)


class TestBackendIdentity:
    """The packed backend must reproduce the numpy generator bit for bit."""

    def _packed(self, monkeypatch, netlist, pools, heuristic):
        try:
            monkeypatch.setenv(envflags.BACKEND_ENV, "packed")
            envflags.reset()
            return run(
                netlist, pools, heuristic, use_cones=True, vectorized=True
            )
        finally:
            monkeypatch.undo()
            envflags.reset()

    @pytest.mark.parametrize("heuristic", ["values", "length", "arbit"])
    def test_s27(self, s27, s27_pools, heuristic, monkeypatch):
        reference = run(
            s27, s27_pools, heuristic, use_cones=True, vectorized=True
        )
        packed = self._packed(monkeypatch, s27, s27_pools, heuristic)
        assert fingerprint(packed) == fingerprint(reference)

    def test_c17(self, c17, c17_pools, monkeypatch):
        reference = run(
            c17, c17_pools, "values", use_cones=True, vectorized=True
        )
        packed = self._packed(monkeypatch, c17, c17_pools, "values")
        assert fingerprint(packed) == fingerprint(reference)

    def test_synthetic_proxy(self, tiny_chain, chain_pools, monkeypatch):
        reference = run(
            tiny_chain, chain_pools, "values", use_cones=True, vectorized=True
        )
        packed = self._packed(monkeypatch, tiny_chain, chain_pools, "values")
        assert fingerprint(packed) == fingerprint(reference)


class TestEnvEscapeHatches:
    def test_full_sim_env_disables_cones(self, s27, monkeypatch):
        try:
            monkeypatch.setenv(envflags.FULL_SIM_ENV, "1")
            envflags.reset()
            assert Justifier(s27).use_cones is False
            monkeypatch.setenv(envflags.FULL_SIM_ENV, "0")
            envflags.reset()
            assert Justifier(s27).use_cones is True
        finally:
            monkeypatch.undo()
            envflags.reset()

    def test_scalar_cover_env_disables_batched_screen(self, s27, monkeypatch):
        try:
            monkeypatch.setenv(envflags.SCALAR_COVER_ENV, "1")
            envflags.reset()
            assert Generator(s27).vectorized is False
            monkeypatch.delenv(envflags.SCALAR_COVER_ENV)
            envflags.reset()
            assert Generator(s27).vectorized is True
        finally:
            monkeypatch.undo()
            envflags.reset()

    def test_explicit_flags_override_env(self, s27, monkeypatch):
        try:
            monkeypatch.setenv(envflags.FULL_SIM_ENV, "1")
            monkeypatch.setenv(envflags.SCALAR_COVER_ENV, "1")
            envflags.reset()
            assert Justifier(s27, use_cones=True).use_cones is True
            assert Generator(s27, vectorized=True).vectorized is True
        finally:
            monkeypatch.undo()
            envflags.reset()
