"""Property test: branch-and-bound completeness on satisfiable instances.

Requirement sets sampled from the *simulation of a real test* are
satisfiable by construction (that test satisfies them).  The complete
branch-and-bound justifier must therefore always succeed on them -- any
failure is a soundness bug in the search, the simulator, or the covering
check.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Triple, X
from repro.atpg import BranchAndBoundJustifier, RequirementSet
from repro.circuit.synth import SynthProfile, generate
from repro.sim import BatchSimulator


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_bnb_finds_test_for_witnessed_requirements(data):
    seed = data.draw(st.integers(0, 10_000), label="circuit seed")
    netlist = generate(
        SynthProfile(
            name="prop", seed=seed, n_inputs=6, n_gates=18, style="mesh", window=6.0
        )
    )
    rng = random.Random(seed + 1)

    # A random fully specified two-pattern test is the witness.
    assignment = {
        pi: Triple.transition(rng.randint(0, 1), rng.randint(0, 1))
        for pi in netlist.input_indices
    }
    simulator = BatchSimulator(netlist)
    sim = simulator.run_triples([assignment])

    # Sample requirements from the witnessed node values (only specified
    # components; x components are left as don't-cares).
    node_count = len(netlist)
    picks = data.draw(
        st.lists(
            st.integers(0, node_count - 1), min_size=1, max_size=6, unique=True
        ),
        label="required nodes",
    )
    requirements = {}
    for node in picks:
        components = tuple(int(v) for v in sim[node, :, 0])
        masked = tuple(
            value if data.draw(st.booleans()) else X for value in components
        )
        requirements[node] = Triple.of(*masked)

    witnessed = RequirementSet(requirements)
    bnb = BranchAndBoundJustifier(netlist, simulator)
    found = bnb.justify(witnessed, node_limit=200_000)
    assert found is not None

    # And the found test really covers the requirements.
    check = simulator.run_triples([found.assignment])
    assert witnessed.compiled().covered_by(check)[0]
