"""Tests for requirement-set accumulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Triple, all_triples
from repro.atpg import RequirementSet

ALL_TRIPLES = list(all_triples())
req_maps = st.dictionaries(
    st.integers(0, 5), st.sampled_from(ALL_TRIPLES), max_size=4
)


class TestTryAdd:
    def test_disjoint_union(self):
        base = RequirementSet({0: Triple.parse("0x1")})
        merged = base.try_add({1: Triple.parse("111")})
        assert merged is not None
        assert len(merged) == 2
        assert len(base) == 1  # original untouched

    def test_component_merge(self):
        base = RequirementSet({0: Triple.parse("0xx")})
        merged = base.try_add({0: Triple.parse("xx1")})
        assert merged.values[0] is Triple.parse("0x1")

    def test_conflict_returns_none(self):
        base = RequirementSet({0: Triple.parse("000")})
        assert base.try_add({0: Triple.parse("xx1")}) is None

    def test_empty_addition(self):
        base = RequirementSet({0: Triple.parse("000")})
        merged = base.try_add({})
        assert merged is not None
        assert merged.values == base.values


class TestDeltaCount:
    def test_all_new(self):
        base = RequirementSet()
        assert base.delta_count({0: Triple.parse("0x1")}) == 2
        assert base.delta_count({0: Triple.parse("111")}) == 3

    def test_already_implied(self):
        base = RequirementSet({0: Triple.parse("111")})
        assert base.delta_count({0: Triple.parse("xx1")}) == 0
        assert base.delta_count({0: Triple.parse("111")}) == 0

    def test_partial_overlap(self):
        base = RequirementSet({0: Triple.parse("1xx")})
        assert base.delta_count({0: Triple.parse("111")}) == 2

    def test_conflict_is_none(self):
        base = RequirementSet({0: Triple.parse("000")})
        assert base.delta_count({0: Triple.parse("1xx")}) is None

    @settings(max_examples=200, deadline=None)
    @given(base_map=req_maps, addition=req_maps)
    def test_delta_counts_component_growth(self, base_map, addition):
        base = RequirementSet(base_map)
        delta = base.delta_count(addition)
        merged = base.try_add(addition)
        if merged is None:
            assert delta is None
        else:
            assert delta == merged.component_count() - base.component_count()


class TestMisc:
    def test_conflicts_with(self):
        base = RequirementSet({0: Triple.parse("000")})
        assert base.conflicts_with({0: Triple.parse("111")})
        assert not base.conflicts_with({0: Triple.parse("xx0")})
        assert not base.conflicts_with({1: Triple.parse("111")})

    def test_compiled_caching(self):
        base = RequirementSet({0: Triple.parse("0x1")})
        assert base.compiled() is base.compiled()

    def test_iteration_contains_repr(self):
        base = RequirementSet({3: Triple.parse("0x1")})
        assert 3 in base
        assert dict(base) == {3: Triple.parse("0x1")}
        assert "1 lines" in repr(base) or "1 line" in repr(base)

    def test_component_count(self):
        base = RequirementSet({0: Triple.parse("0x1"), 1: Triple.parse("111")})
        assert base.component_count() == 5
