"""Tests for fault-ordering heuristics."""

import pytest

from repro.atpg import longest_first, order_pool
from repro.faults import build_target_sets


@pytest.fixture(scope="module")
def records(s27):
    return build_target_sets(s27, max_faults=1000, p0_min_faults=20).all_records


class TestOrdering:
    def test_longest_first_sorted(self, records):
        ordered = longest_first(records)
        lengths = [record.length for record in ordered]
        assert lengths == sorted(lengths, reverse=True)

    def test_longest_first_deterministic(self, records):
        import random

        shuffled = list(records)
        random.Random(1).shuffle(shuffled)
        assert longest_first(shuffled) == longest_first(records)

    def test_order_pool_arbit_preserves_input_order(self, records):
        assert order_pool(records, "arbit") == list(records)
        assert order_pool(records, "uncomp") == list(records)

    def test_order_pool_length_variants(self, records):
        assert order_pool(records, "length") == longest_first(records)
        assert order_pool(records, "values") == longest_first(records)

    def test_order_pool_rejects_unknown(self, records):
        with pytest.raises(ValueError):
            order_pool(records, "sorted-by-vibes")

    def test_order_pool_copies(self, records):
        ordered = order_pool(records, "arbit")
        assert ordered is not records
