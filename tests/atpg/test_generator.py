"""Tests for the dynamic-compaction test generator (Section 2)."""

import pytest

from repro.atpg import AtpgConfig, generate_basic
from repro.faults import build_target_sets
from repro.sim import FaultSimulator


@pytest.fixture(scope="module")
def s27_targets(s27):
    return build_target_sets(s27, max_faults=1000, p0_min_faults=20)


@pytest.fixture(scope="module")
def results_by_heuristic(s27, s27_targets):
    out = {}
    for heuristic in ("uncomp", "arbit", "length", "values"):
        out[heuristic] = generate_basic(
            s27, s27_targets.p0, AtpgConfig(heuristic=heuristic, seed=11)
        )
    return out


class TestInvariants:
    @pytest.mark.parametrize("heuristic", ["uncomp", "arbit", "length", "values"])
    def test_targeted_faults_are_detected(self, heuristic, results_by_heuristic):
        result = results_by_heuristic[heuristic]
        for generated in result.tests:
            targeted = {r.fault.key() for r in generated.targeted}
            detected = {r.fault.key() for r in generated.detected}
            assert targeted <= detected

    @pytest.mark.parametrize("heuristic", ["uncomp", "arbit", "length", "values"])
    def test_detection_claims_verified_by_independent_faultsim(
        self, s27, s27_targets, heuristic, results_by_heuristic
    ):
        result = results_by_heuristic[heuristic]
        simulator = FaultSimulator(s27, s27_targets.p0)
        detected, total = simulator.coverage(result.test_vectors)
        assert detected == result.detected_by_pool[0]
        assert total == len(s27_targets.p0)

    @pytest.mark.parametrize("heuristic", ["uncomp", "arbit", "length", "values"])
    def test_each_fault_detected_once(self, heuristic, results_by_heuristic):
        """Fault dropping: a fault appears in at most one test's detected
        list (it is removed from the pool afterwards)."""
        result = results_by_heuristic[heuristic]
        seen = set()
        for generated in result.tests:
            for record in generated.detected:
                key = record.fault.key()
                assert key not in seen
                seen.add(key)

    @pytest.mark.parametrize("heuristic", ["uncomp", "arbit", "length", "values"])
    def test_counts_consistent(self, heuristic, results_by_heuristic):
        result = results_by_heuristic[heuristic]
        total_detected = sum(len(t.detected) for t in result.tests)
        assert total_detected == result.detected_by_pool[0]

    def test_uncomp_has_single_target_per_test(self, results_by_heuristic):
        for generated in results_by_heuristic["uncomp"].tests:
            assert generated.num_targeted == 1

    def test_compaction_reduces_or_matches_uncomp(self, results_by_heuristic):
        uncomp_tests = results_by_heuristic["uncomp"].num_tests
        for heuristic in ("arbit", "length", "values"):
            assert results_by_heuristic[heuristic].num_tests <= uncomp_tests

    def test_tests_fully_specified(self, s27, results_by_heuristic):
        for result in results_by_heuristic.values():
            for generated in result.tests:
                assert generated.test.is_fully_specified(s27)

    def test_detects_most_of_p0_on_s27(self, s27_targets, results_by_heuristic):
        # s27's longest-path faults are nearly all robustly testable.
        for result in results_by_heuristic.values():
            assert result.detected_by_pool[0] >= 0.8 * len(s27_targets.p0)


class TestDeterminism:
    def test_same_seed_same_result(self, s27, s27_targets):
        a = generate_basic(s27, s27_targets.p0, AtpgConfig(heuristic="values", seed=5))
        b = generate_basic(s27, s27_targets.p0, AtpgConfig(heuristic="values", seed=5))
        assert a.num_tests == b.num_tests
        assert [t.test for t in a.tests] == [t.test for t in b.tests]

    def test_length_order_primary_selection(self, s27, s27_targets):
        result = generate_basic(
            s27, s27_targets.p0, AtpgConfig(heuristic="length", seed=5)
        )
        # The first test's primary must be a longest-path fault.
        longest = max(r.length for r in s27_targets.p0)
        assert result.tests[0].primary.length == longest


class TestConfig:
    def test_invalid_heuristic(self):
        with pytest.raises(ValueError):
            AtpgConfig(heuristic="fancy")

    def test_invalid_retries(self):
        with pytest.raises(ValueError):
            AtpgConfig(retry_primaries=0)

    def test_secondary_budget_respected(self, s27, s27_targets):
        result = generate_basic(
            s27,
            s27_targets.p0,
            AtpgConfig(heuristic="values", seed=5, max_secondary_attempts=1),
        )
        assert result.secondary_attempts <= result.num_tests

    def test_retry_primaries_never_hurts(self, tiny_chain):
        targets = build_target_sets(tiny_chain, max_faults=200, p0_min_faults=40)
        single = generate_basic(
            tiny_chain, targets.p0, AtpgConfig(heuristic="uncomp", seed=2)
        )
        retried = generate_basic(
            tiny_chain,
            targets.p0,
            AtpgConfig(heuristic="uncomp", seed=2, retry_primaries=4),
        )
        assert retried.detected_by_pool[0] >= single.detected_by_pool[0]

    def test_summary_format(self, s27, s27_targets):
        result = generate_basic(
            s27, s27_targets.p0, AtpgConfig(heuristic="values", seed=5)
        )
        text = result.summary()
        assert "s27" in text and "values" in text and "tests" in text
