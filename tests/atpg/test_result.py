"""Tests for generation result containers."""

import pytest

from repro.atpg import AtpgConfig, GeneratedTest, GenerationResult, generate_basic
from repro.atpg.justify import JustifyStats
from repro.faults import build_target_sets
from repro.sim import TwoPatternTest


@pytest.fixture(scope="module")
def result(s27):
    targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
    return generate_basic(
        s27, targets.p0, AtpgConfig(heuristic="values", seed=9)
    )


class TestGeneratedTest:
    def test_counts(self, result):
        generated = result.tests[0]
        assert generated.num_targeted == len(generated.targeted)
        assert generated.num_detected == len(generated.detected)
        assert generated.num_targeted >= 1
        assert generated.primary in generated.targeted


class TestGenerationResult:
    def test_totals(self, result):
        assert result.total_faults == len(result.pools[0])
        assert result.total_detected == result.detected_by_pool[0]
        assert result.detected_in_pool(0) == result.detected_by_pool[0]

    def test_test_vectors_order(self, result):
        vectors = result.test_vectors
        assert len(vectors) == result.num_tests
        assert all(isinstance(v, TwoPatternTest) for v in vectors)
        assert vectors == [t.test for t in result.tests]

    def test_runtime_and_stats(self, result):
        assert result.runtime_seconds > 0
        assert isinstance(result.justify_stats, JustifyStats)
        assert result.justify_stats.simulations > 0

    def test_aborted_plus_primaries_bounded(self, result):
        # Every test has a distinct primary; aborted primaries were tried
        # but failed, so (tests + aborted) <= |P0|.
        assert result.num_tests + result.aborted_primaries <= result.total_faults

    def test_secondary_counters(self, result):
        assert result.secondary_successes <= result.secondary_attempts
