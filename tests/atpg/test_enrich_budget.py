"""Regression tests for the per-pool secondary-attempt budget.

A shared per-test budget silently starved the P1 (enrichment) phase: P0
candidates consumed every attempt, so no P1 fault was ever targeted and
the enriched run degenerated to the basic one.  The budget is therefore
per *pool*.  These tests pin that behaviour on a circuit where P1 faults
are plentiful and detectable.
"""

import pytest

from repro.atpg import AtpgConfig, generate_basic, generate_enriched
from repro.faults import build_target_sets


@pytest.fixture(scope="module")
def targets(s27):
    return build_target_sets(s27, max_faults=1000, p0_min_faults=20)


class TestPerPoolBudget:
    def test_enrichment_targets_p1_despite_tight_budget(self, s27, targets):
        report = generate_enriched(
            s27,
            targets,
            AtpgConfig(heuristic="values", seed=11, max_secondary_attempts=2),
        )
        # Even with only 2 attempts per pool per test, P1 faults must be
        # targeted (not merely accidentally detected): compare with the
        # basic run under the same budget.
        basic = generate_basic(
            s27,
            targets.p0,
            AtpgConfig(heuristic="values", seed=11, max_secondary_attempts=2),
        )
        from repro.sim import FaultSimulator

        simulator = FaultSimulator(s27, targets.all_records)
        accidental, _ = simulator.coverage(basic.test_vectors)
        assert report.p01_detected >= accidental
        assert report.p1_detected > 0

    def test_p1_faults_appear_in_targeted_sets(self, s27, targets):
        report = generate_enriched(
            s27,
            targets,
            AtpgConfig(heuristic="values", seed=11, max_secondary_attempts=4),
        )
        p1_keys = {record.fault.key() for record in targets.p1}
        targeted_p1 = sum(
            1
            for generated in report.result.tests
            for record in generated.targeted
            if record.fault.key() in p1_keys
        )
        assert targeted_p1 > 0

    def test_budget_bounds_attempts_per_pool(self, s27, targets):
        budget = 3
        report = generate_enriched(
            s27,
            targets,
            AtpgConfig(heuristic="values", seed=11, max_secondary_attempts=budget),
        )
        pools = 2
        assert (
            report.result.secondary_attempts
            <= budget * pools * max(report.num_tests, 1)
        )
