"""Tests for the branch-and-bound justifier."""

import pytest

from repro.algebra import Triple
from repro.atpg import (
    BranchAndBoundJustifier,
    RequirementSet,
    SearchExhausted,
)
from repro.circuit import GateType, build_netlist
from repro.faults import build_target_sets
from repro.sim import CompiledRequirements


class TestCompleteness:
    def test_finds_test_where_randomized_engine_might_not(self, c17):
        bnb = BranchAndBoundJustifier(c17)
        requirements = RequirementSet({c17.index_of("N22"): Triple.parse("0x1")})
        test = bnb.justify(requirements)
        assert test is not None
        assert test.is_fully_specified(c17)

    def test_result_actually_covers(self, s27):
        from repro.sim import BatchSimulator

        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        bnb = BranchAndBoundJustifier(s27)
        simulator = BatchSimulator(s27)
        found = 0
        for record in targets.p0[:10]:
            requirements = RequirementSet(record.sens.requirements)
            test = bnb.justify(requirements)
            if test is None:
                continue
            found += 1
            sim = simulator.run_triples([test.assignment])
            assert CompiledRequirements(record.sens.requirements).covered_by(sim)[0]
        assert found > 0

    def test_proves_unsat(self):
        netlist = build_netlist(
            "unsat",
            inputs=["a"],
            gates=[
                ("g1", GateType.NOT, ["a"]),
                ("g2", GateType.AND, ["a", "g1"]),
            ],
            outputs=["g2"],
        )
        bnb = BranchAndBoundJustifier(netlist)
        requirements = RequirementSet(
            {netlist.index_of("g2"): Triple.parse("111")}
        )
        assert bnb.justify(requirements) is None
        assert not bnb.is_satisfiable(requirements)

    def test_deterministic(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        requirements = RequirementSet(targets.p0[0].sens.requirements)
        bnb = BranchAndBoundJustifier(s27)
        assert bnb.justify(requirements) == bnb.justify(requirements)

    def test_node_limit(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        requirements = RequirementSet(targets.p0[0].sens.requirements)
        bnb = BranchAndBoundJustifier(s27)
        with pytest.raises(SearchExhausted):
            bnb.justify(requirements, node_limit=1)

    def test_agrees_with_randomized_engine_on_success(self, s27):
        """Whenever the randomized engine finds a test, BnB must too (it is
        complete); the converse may fail."""
        import random

        from repro.atpg import Justifier

        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        justifier = Justifier(s27)
        bnb = BranchAndBoundJustifier(s27)
        rng = random.Random(3)
        for record in targets.p0[:12]:
            requirements = RequirementSet(record.sens.requirements)
            if justifier.justify(requirements, rng) is not None:
                assert bnb.is_satisfiable(requirements, node_limit=100_000)
