"""Tests for the test enrichment procedure (Section 3)."""

import pytest

from repro.atpg import AtpgConfig, EnrichmentReport, generate_basic, generate_enriched
from repro.faults import build_target_sets
from repro.sim import FaultSimulator


@pytest.fixture(scope="module")
def s27_targets(s27):
    return build_target_sets(s27, max_faults=1000, p0_min_faults=20)


@pytest.fixture(scope="module")
def enriched(s27, s27_targets):
    report = generate_enriched(
        s27, s27_targets, AtpgConfig(heuristic="values", seed=11)
    )
    assert isinstance(report, EnrichmentReport)
    return report


@pytest.fixture(scope="module")
def basic_values(s27, s27_targets):
    return generate_basic(
        s27, s27_targets.p0, AtpgConfig(heuristic="values", seed=11)
    )


class TestEnrichmentInvariants:
    def test_primaries_only_from_p0(self, enriched, s27_targets):
        p0_keys = {r.fault.key() for r in s27_targets.p0}
        for generated in enriched.result.tests:
            assert generated.primary.fault.key() in p0_keys

    def test_counts(self, enriched, s27_targets):
        assert enriched.p0_total == len(s27_targets.p0)
        assert enriched.p01_total == len(s27_targets.p0) + len(s27_targets.p1)
        assert (
            enriched.p01_detected
            == enriched.p0_detected + enriched.p1_detected
        )

    def test_claims_verified_by_independent_faultsim(
        self, s27, s27_targets, enriched
    ):
        simulator = FaultSimulator(s27, s27_targets.all_records)
        detected, _ = simulator.coverage(enriched.result.test_vectors)
        assert detected == enriched.p01_detected

    def test_enrichment_beats_accidental_detection(
        self, s27, s27_targets, enriched, basic_values
    ):
        """The core claim of the paper: explicitly targeting P1 detects
        more of P0 u P1 than the basic procedure's accidental detection."""
        simulator = FaultSimulator(s27, s27_targets.all_records)
        accidental, _ = simulator.coverage(basic_values.test_vectors)
        assert enriched.p01_detected >= accidental

    def test_test_count_close_to_basic(self, enriched, basic_values):
        """Enrichment must not inflate the test set (paper: sizes are very
        close; only random variation differs)."""
        assert enriched.num_tests <= basic_values.num_tests * 1.25 + 2

    def test_summary(self, enriched):
        text = enriched.summary()
        assert "P0" in text and "tests" in text


class TestMultiSetGeneralization:
    def test_three_pools(self, s27, s27_targets):
        records = s27_targets.all_records
        lengths = sorted({r.length for r in records}, reverse=True)
        from repro.faults import partition_by_lengths

        pools = partition_by_lengths(records, [lengths[0], lengths[1]])
        result = generate_enriched(
            s27, pools, AtpgConfig(heuristic="values", seed=3)
        )
        # Raw GenerationResult for the k-set generalization.
        assert len(result.pools) == 3
        pool0_keys = {r.fault.key() for r in pools[0]}
        for generated in result.tests:
            assert generated.primary.fault.key() in pool0_keys

    def test_empty_p1(self, s27, s27_targets):
        report = generate_enriched(
            s27,
            [s27_targets.p0, []],
            AtpgConfig(heuristic="values", seed=3),
        )
        assert report.detected_by_pool[1] == 0
