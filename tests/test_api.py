"""Tests for the high-level convenience API."""

import pytest

import repro
from repro import basic_atpg_circuit, enrich_circuit, prepare_targets
from repro.api import resolve_circuit


class TestResolveCircuit:
    def test_by_name(self):
        netlist = resolve_circuit("c17")
        assert netlist.name == "c17"

    def test_passthrough(self, s27):
        assert resolve_circuit(s27) is s27

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            resolve_circuit("does_not_exist")

    def test_xor_circuit_expanded(self):
        from repro.circuit import GateType, build_netlist

        netlist = build_netlist(
            "x",
            inputs=["a", "b"],
            gates=[("y", GateType.XOR, ["a", "b"])],
            outputs=["y"],
        )
        resolved = resolve_circuit(netlist)
        assert resolved is not netlist
        assert resolved.is_pdf_ready()


class TestPrepareTargets:
    def test_defaults_match_paper(self):
        import inspect

        signature = inspect.signature(prepare_targets)
        assert signature.parameters["max_faults"].default == 10_000
        assert signature.parameters["p0_min_faults"].default == 1_000

    def test_filter_toggle(self, s27):
        with_filter = prepare_targets(s27, max_faults=1000, p0_min_faults=20)
        without = prepare_targets(
            s27, max_faults=1000, p0_min_faults=20, filter_implications=False
        )
        assert without.dropped_implication == 0
        assert len(with_filter.all_records) <= len(without.all_records)


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        assert callable(repro.prepare_targets)
        assert callable(repro.basic_atpg_circuit)
        assert callable(repro.enrich_circuit)

    def test_basic_by_name(self):
        result = basic_atpg_circuit(
            "s27", heuristic="uncomp", max_faults=200, p0_min_faults=10, seed=2
        )
        assert result.num_tests > 0

    def test_enrich_by_name(self):
        report = enrich_circuit("s27", max_faults=200, p0_min_faults=10, seed=2)
        assert report.num_tests > 0
        assert report.p0_detected > 0
