"""Session/engine integration of the persistent artifact store.

The determinism contract: results built with the cache off, against a
cold store, and against a warm store are ``canonical_json``-identical --
the store may only change the wall clock.  Budgeted calls bypass the
store entirely, corrupt entries degrade to recomputes, and pool workers
reach the store through the job payload so a sharded sweep warm-starts.
"""

import pytest

from repro import envflags
from repro.artifacts import ArtifactStore
from repro.engine import Engine
from repro.experiments import ExperimentScale, run_all
from repro.robustness import Budget

MAX_FAULTS = 100
P0_MIN = 20

TINY = ExperimentScale(
    name="tiny", max_faults=120, p0_min_faults=30, max_secondary_attempts=4, seed=1
)


def build(store):
    """One engine run: enumeration + target sets for s27."""
    engine = Engine(artifacts=store)
    session = engine.session("s27")
    targets = session.target_sets(max_faults=MAX_FAULTS, p0_min_faults=P0_MIN)
    return engine, session, targets


def assert_same_targets(ours, theirs):
    assert [r.fault.key() for r in ours.all_records] == [
        r.fault.key() for r in theirs.all_records
    ]
    assert all(
        a.sens.requirements == b.sens.requirements
        for a, b in zip(ours.all_records, theirs.all_records)
    )
    assert tuple(ours.length_table) == tuple(theirs.length_table)
    assert ours.summary() == theirs.summary()


class TestSessionConsultsStore:
    def test_cold_run_publishes_both_artifacts(self, tmp_path):
        engine, _, _ = build(ArtifactStore(tmp_path / "cache"))
        # target_sets consults, misses, then enumeration consults, misses;
        # both results are published.
        assert engine.stats.counter("artifact.miss") == 2
        assert engine.stats.counter("artifact.write") == 2
        assert engine.stats.counter("artifact.hit") == 0

    def test_warm_run_loads_identical_targets(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _, _, reference = build(store)
        engine, _, targets = build(ArtifactStore(store.directory))
        # The warm target_sets load short-circuits the enumeration
        # accessor entirely: one consult, one hit, no compute.
        assert engine.stats.counter("artifact.hit") == 1
        assert engine.stats.counter("artifact.miss") == 0
        assert engine.stats.counter("artifact.write") == 0
        assert engine.stats.timers.get("target_sets") is None
        assert_same_targets(targets, reference)

    def test_warm_enumeration_loads_from_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _, cold_session, _ = build(store)
        engine = Engine(artifacts=ArtifactStore(store.directory))
        result = engine.session("s27").enumeration(MAX_FAULTS)
        assert engine.stats.counter("artifact.hit") == 1
        assert result.paths == cold_session.enumeration(MAX_FAULTS).paths

    def test_memoized_hit_skips_store(self, tmp_path):
        engine, session, first = build(ArtifactStore(tmp_path / "cache"))
        consults = engine.stats.counter("artifact.hit") + engine.stats.counter(
            "artifact.miss"
        )
        again = session.target_sets(max_faults=MAX_FAULTS, p0_min_faults=P0_MIN)
        assert again is first  # in-memory cache, same object
        assert (
            engine.stats.counter("artifact.hit")
            + engine.stats.counter("artifact.miss")
            == consults
        )

    def test_budgeted_call_bypasses_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        build(store)  # seed
        engine = Engine(
            artifacts=ArtifactStore(store.directory),
            budget=Budget(node_limit=10_000),
        )
        engine.session("s27").target_sets(
            max_faults=MAX_FAULTS, p0_min_faults=P0_MIN
        )
        # Neither consulted nor published: a budget may truncate the
        # artifact and the store must only ever hold complete builds.
        assert engine.stats.counter("artifact.hit") == 0
        assert engine.stats.counter("artifact.miss") == 0
        assert engine.stats.counter("artifact.write") == 0

    def test_corrupt_entry_recomputes_and_republishes(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _, _, reference = build(store)
        for entry in store.entries():
            entry.path.write_bytes(b"garbage")
        engine, _, targets = build(ArtifactStore(store.directory))
        assert engine.stats.counter("artifact.corrupt") == 2
        assert engine.stats.counter("artifact.miss") == 2
        assert engine.stats.counter("artifact.write") == 2
        assert_same_targets(targets, reference)
        # The republished entries are intact again.
        assert store.verify()[1] == []

    def test_no_store_records_no_artifact_counters(self):
        engine = Engine()
        engine.session("s27").target_sets(
            max_faults=MAX_FAULTS, p0_min_faults=P0_MIN
        )
        assert not any(
            name.startswith("artifact.") for name in engine.stats.counters
        )


class TestEnvironmentWiring:
    @pytest.fixture(autouse=True)
    def clean_snapshot(self, monkeypatch):
        envflags.reset()
        yield
        monkeypatch.undo()
        envflags.reset()

    def test_engine_picks_up_env_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(envflags.ARTIFACT_CACHE_ENV, str(tmp_path / "cache"))
        envflags.reset()
        engine = Engine()
        assert engine.artifacts is not None
        assert engine.artifacts.directory == tmp_path / "cache"

    def test_unset_means_no_store(self, monkeypatch):
        monkeypatch.delenv(envflags.ARTIFACT_CACHE_ENV, raising=False)
        envflags.reset()
        assert Engine().artifacts is None

    def test_explicit_store_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(envflags.ARTIFACT_CACHE_ENV, str(tmp_path / "env"))
        envflags.reset()
        store = ArtifactStore(tmp_path / "explicit")
        assert Engine(artifacts=store).artifacts is store


class TestShardedSweepIdentity:
    # The identity contract is *per geometry*: at a fixed (shards, jobs)
    # the store may only change the wall clock, so cache off, a cold
    # store and a warm store must all produce byte-identical results.
    KWARGS = dict(circuits=("s27",), table6_circuits=("s27",), jobs=2, shards=2)

    @pytest.fixture(scope="class")
    def uncached(self):
        return run_all(TINY, **self.KWARGS)

    def test_cold_and_warm_match_uncached(self, tmp_path, uncached):
        cold_engine = Engine(artifacts=ArtifactStore(tmp_path / "cache"))
        cold = run_all(TINY, engine=cold_engine, **self.KWARGS)
        assert cold_engine.stats.counter("artifact.write") > 0
        assert cold.canonical_json() == uncached.canonical_json()

        warm_engine = Engine(artifacts=ArtifactStore(tmp_path / "cache"))
        warm = run_all(TINY, engine=warm_engine, **self.KWARGS)
        # Worker hits are merged back into the parent engine's stats.
        assert warm_engine.stats.counter("artifact.hit") > 0
        assert warm_engine.stats.counter("artifact.write") == 0
        assert warm.canonical_json() == uncached.canonical_json()
