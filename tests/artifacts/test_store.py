"""Tests for the content-addressed artifact store (repro.artifacts.store).

The store's contract: keys are pure functions of content (netlist
structure + kind + parameter envelope + format version), publishes are
atomic, and *every* malformed input -- truncated zip, zero-byte file,
non-npz garbage, flipped payload bytes, mislabelled envelope -- degrades
to a counted miss, never an error.
"""

import os

import numpy as np
import pytest

from repro.artifacts import (
    PAYLOAD_VERSION,
    ArtifactStore,
    artifact_key,
    netlist_canonical_form,
    netlist_digest,
)
from repro.circuit import load_circuit
from repro.circuit.transform import pdf_ready
from repro.engine import EngineStats

DIGEST = "0" * 32
PARAMS = {"max_faults": 100, "use_distances": True}


def sample_arrays():
    return {
        "nodes": np.array([1, 2, 3, 5, 8], dtype=np.int32),
        "lengths": np.array([2, 3], dtype=np.int32),
    }


def seeded(tmp_path, stats=None):
    store = ArtifactStore(tmp_path / "cache", stats=stats)
    path = store.publish(
        DIGEST, "enumeration", PARAMS, sample_arrays(), {"cap_hit": False}
    )
    return store, path


class TestKeys:
    def test_canonical_form_excludes_display_name(self, s27):
        from repro.circuit.transform import renamed

        netlist = pdf_ready(s27)
        copy = renamed(netlist, "a_different_display_name")
        assert copy.name != netlist.name
        assert netlist_canonical_form(copy) == netlist_canonical_form(netlist)
        assert netlist_digest(copy) == netlist_digest(netlist)

    def test_digest_separates_structures(self, s27, c17):
        assert netlist_digest(pdf_ready(s27)) != netlist_digest(pdf_ready(c17))

    def test_key_covers_every_envelope_field(self):
        base = artifact_key(DIGEST, "enumeration", PARAMS)
        assert artifact_key("1" * 32, "enumeration", PARAMS) != base
        assert artifact_key(DIGEST, "target_sets", PARAMS) != base
        assert artifact_key(DIGEST, "enumeration", {**PARAMS, "max_faults": 99}) != base

    def test_key_ignores_param_ordering(self):
        shuffled = dict(reversed(list(PARAMS.items())))
        assert artifact_key(DIGEST, "enumeration", shuffled) == artifact_key(
            DIGEST, "enumeration", PARAMS
        )


class TestPublishLoad:
    def test_round_trip(self, tmp_path):
        stats = EngineStats()
        store, _ = seeded(tmp_path, stats=stats)
        found = store.load(DIGEST, "enumeration", PARAMS)
        assert found is not None
        payload, arrays = found
        assert payload == {"cap_hit": False}
        for name, expected in sample_arrays().items():
            assert arrays[name].dtype == expected.dtype
            assert np.array_equal(arrays[name], expected)
        assert stats.counter("artifact.write") == 1
        assert stats.counter("artifact.hit") == 1
        assert stats.counter("artifact.corrupt") == 0

    def test_absent_is_silent_miss(self, tmp_path):
        stats = EngineStats()
        store = ArtifactStore(tmp_path / "cache")
        assert store.load(DIGEST, "enumeration", PARAMS, stats=stats) is None
        assert stats.counter("artifact.miss") == 1
        assert stats.counter("artifact.corrupt") == 0

    def test_different_params_do_not_alias(self, tmp_path):
        store, _ = seeded(tmp_path)
        assert store.load(DIGEST, "enumeration", {**PARAMS, "max_faults": 7}) is None

    def test_publish_leaves_no_temp_files(self, tmp_path):
        store, path = seeded(tmp_path)
        assert [p.name for p in store.directory.iterdir()] == [path.name]

    def test_republish_last_write_wins(self, tmp_path):
        store, path = seeded(tmp_path)
        again = store.publish(
            DIGEST, "enumeration", PARAMS, sample_arrays(), {"cap_hit": True}
        )
        assert again == path
        payload, _ = store.load(DIGEST, "enumeration", PARAMS)
        assert payload == {"cap_hit": True}

    def test_per_call_stats_override_default_sink(self, tmp_path):
        default = EngineStats()
        mine = EngineStats()
        store, _ = seeded(tmp_path, stats=default)
        store.load(DIGEST, "enumeration", PARAMS, stats=mine)
        assert mine.counter("artifact.hit") == 1
        assert default.counter("artifact.hit") == 0


def corrupt_truncated(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def corrupt_zero_byte(path):
    path.write_bytes(b"")


def corrupt_garbage(path):
    path.write_bytes(b"this is not a zip archive at all")


def corrupt_flipped_payload(path):
    # Re-save with one array perturbed but the stored digest untouched:
    # the zip decodes fine, the integrity check must catch it.
    import io
    import json

    with np.load(path, allow_pickle=False) as data:
        meta = data["__meta__"]
        arrays = {name: data[name] for name in data.files if name != "__meta__"}
    arrays["nodes"] = arrays["nodes"] + 1
    buffer = io.BytesIO()
    np.savez(buffer, __meta__=meta, **arrays)
    path.write_bytes(buffer.getvalue())
    # Sanity: the tampered file still decodes as JSON-carrying npz.
    json.loads(bytes(meta).decode())


CORRUPTIONS = {
    "truncated": corrupt_truncated,
    "zero_byte": corrupt_zero_byte,
    "garbage": corrupt_garbage,
    "digest_mismatch": corrupt_flipped_payload,
}


class TestCorruption:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_counts_corrupt_miss_then_recovers(self, tmp_path, name):
        stats = EngineStats()
        store, path = seeded(tmp_path, stats=stats)
        CORRUPTIONS[name](path)
        assert store.load(DIGEST, "enumeration", PARAMS) is None
        assert stats.counter("artifact.miss") == 1
        assert stats.counter("artifact.corrupt") == 1
        # The caller's recompute + republish fully recovers the entry.
        store.publish(DIGEST, "enumeration", PARAMS, sample_arrays(), {"cap_hit": False})
        payload, arrays = store.load(DIGEST, "enumeration", PARAMS)
        assert payload == {"cap_hit": False}
        assert np.array_equal(arrays["nodes"], sample_arrays()["nodes"])
        assert stats.counter("artifact.hit") == 1
        assert stats.counter("artifact.corrupt") == 1

    def test_stale_envelope_is_corrupt_miss(self, tmp_path):
        # A valid entry copied under another key's filename decodes fine
        # but its stored envelope disagrees with the request.
        stats = EngineStats()
        store, path = seeded(tmp_path, stats=stats)
        other = {**PARAMS, "max_faults": 7}
        os.replace(path, store.path_for("enumeration", artifact_key(DIGEST, "enumeration", other)))
        assert store.load(DIGEST, "enumeration", other) is None
        assert stats.counter("artifact.miss") == 1
        assert stats.counter("artifact.corrupt") == 1


class TestQuarantine:
    """Self-healing: a corrupt entry is paid for once.  The first load
    that trips over it moves it to ``<store>/quarantine/``; subsequent
    loads see a plain absent-miss, and a republish lands cleanly."""

    def test_corrupt_load_moves_file_to_quarantine(self, tmp_path):
        stats = EngineStats()
        store, path = seeded(tmp_path, stats=stats)
        corrupt_garbage(path)
        assert store.load(DIGEST, "enumeration", PARAMS) is None
        assert not path.exists()
        assert [p.name for p in store.quarantined()] == [path.name]
        assert stats.counter("artifact.quarantined") == 1

    def test_second_load_does_not_recount_corrupt(self, tmp_path):
        stats = EngineStats()
        store, path = seeded(tmp_path, stats=stats)
        corrupt_garbage(path)
        store.load(DIGEST, "enumeration", PARAMS)
        store.load(DIGEST, "enumeration", PARAMS)  # file already parked
        assert stats.counter("artifact.corrupt") == 1
        assert stats.counter("artifact.quarantined") == 1
        assert stats.counter("artifact.miss") == 2

    def test_stale_envelope_also_quarantined(self, tmp_path):
        stats = EngineStats()
        store, path = seeded(tmp_path, stats=stats)
        other = {**PARAMS, "max_faults": 7}
        mislabelled = store.path_for(
            "enumeration", artifact_key(DIGEST, "enumeration", other)
        )
        os.replace(path, mislabelled)
        assert store.load(DIGEST, "enumeration", other) is None
        assert not mislabelled.exists()
        assert stats.counter("artifact.quarantined") == 1

    def test_quarantined_entries_invisible_to_scan_and_gc(self, tmp_path):
        store, path = seeded(tmp_path)
        corrupt_garbage(path)
        store.load(DIGEST, "enumeration", PARAMS)
        assert store.entries() == []
        assert store.total_bytes() == 0
        assert store.gc(max_bytes=0) == []
        assert len(store.quarantined()) == 1  # gc leaves evidence alone

    def test_collisions_keep_both_corruption_events(self, tmp_path):
        store, path = seeded(tmp_path)
        corrupt_garbage(path)
        store.load(DIGEST, "enumeration", PARAMS)
        # Republish, corrupt again: the second event must not overwrite
        # the first file's evidence.
        store.publish(DIGEST, "enumeration", PARAMS, sample_arrays(), {})
        corrupt_truncated(store.path_for("enumeration", artifact_key(DIGEST, "enumeration", PARAMS)))
        store.load(DIGEST, "enumeration", PARAMS)
        names = [p.name for p in store.quarantined()]
        assert len(names) == 2
        assert names[0] == path.name and names[1] == f"{path.name}.1"

    def test_republish_after_quarantine_round_trips(self, tmp_path):
        store, path = seeded(tmp_path)
        corrupt_zero_byte(path)
        store.load(DIGEST, "enumeration", PARAMS)
        store.publish(DIGEST, "enumeration", PARAMS, sample_arrays(), {"cap_hit": False})
        payload, arrays = store.load(DIGEST, "enumeration", PARAMS)
        assert payload == {"cap_hit": False}
        assert np.array_equal(arrays["nodes"], sample_arrays()["nodes"])

    def test_verify_repair_quarantines_and_drains(self, tmp_path):
        stats = EngineStats()
        store, path = seeded(tmp_path)
        victim = store.publish(DIGEST, "target_sets", PARAMS, sample_arrays(), {})
        corrupt_garbage(victim)
        intact, corrupt = store.verify(repair=True, stats=stats)
        assert [e.path for e in intact] == [path]
        assert [e.path for e in corrupt] == [victim]
        assert stats.counter("artifact.quarantined") == 1
        assert store.quarantined() == []  # drained afterwards
        assert not victim.exists()
        # The healthy entry is untouched and the scan is now clean.
        assert store.verify() == ([e for e in store.entries()], [])

    def test_verify_without_repair_leaves_files_in_place(self, tmp_path):
        store, path = seeded(tmp_path)
        corrupt_garbage(path)
        _, corrupt = store.verify()
        assert [e.path for e in corrupt] == [path]
        assert path.exists()
        assert store.quarantined() == []

    def test_drain_quarantine_returns_removed(self, tmp_path):
        store, path = seeded(tmp_path)
        corrupt_garbage(path)
        store.load(DIGEST, "enumeration", PARAMS)
        [parked] = store.quarantined()
        assert store.drain_quarantine() == [parked]
        assert store.quarantined() == []


class TestMaintenance:
    def test_entries_newest_first(self, tmp_path):
        store, first = seeded(tmp_path)
        second = store.publish(DIGEST, "target_sets", PARAMS, sample_arrays(), {})
        os.utime(first, (1_000, 1_000))
        os.utime(second, (2_000, 2_000))
        entries = store.entries()
        assert [e.path for e in entries] == [second, first]
        assert {e.kind for e in entries} == {"enumeration", "target_sets"}
        assert all(e.size > 0 for e in entries)

    def test_read_meta_and_describe(self, tmp_path):
        store, _ = seeded(tmp_path)
        (entry,) = store.entries()
        meta = store.read_meta(entry)
        assert meta["v"] == PAYLOAD_VERSION
        assert meta["params"] == PARAMS
        assert "enumeration" in entry.describe(meta)

    def test_verify_splits_intact_from_corrupt(self, tmp_path):
        store, path = seeded(tmp_path)
        victim = store.publish(DIGEST, "target_sets", PARAMS, sample_arrays(), {})
        corrupt_garbage(victim)
        intact, corrupt = store.verify()
        assert [e.path for e in intact] == [path]
        assert [e.path for e in corrupt] == [victim]

    def test_verify_flags_mislabelled_entry(self, tmp_path):
        store, path = seeded(tmp_path)
        os.replace(path, store.path_for("enumeration", "f" * 32))
        intact, corrupt = store.verify()
        assert not intact and len(corrupt) == 1

    def test_gc_keeps_recently_used(self, tmp_path):
        store, first = seeded(tmp_path)
        second = store.publish(DIGEST, "target_sets", PARAMS, sample_arrays(), {})
        # `first` is older on disk, but a load refreshes its mtime...
        os.utime(first, (1_000, 1_000))
        os.utime(second, (2_000, 2_000))
        store.load(DIGEST, "enumeration", PARAMS)
        assert first.stat().st_mtime > second.stat().st_mtime
        # ... so a one-entry budget evicts `second`: LRU, not FIFO.
        removed = store.gc(max_bytes=first.stat().st_size)
        assert [e.path for e in removed] == [second]
        assert first.exists() and not second.exists()

    def test_gc_zero_budget_clears_store(self, tmp_path):
        store, _ = seeded(tmp_path)
        store.publish(DIGEST, "target_sets", PARAMS, sample_arrays(), {})
        removed = store.gc(max_bytes=0)
        assert len(removed) == 2
        assert store.entries() == [] and store.total_bytes() == 0

    def test_gc_large_budget_is_noop(self, tmp_path):
        store, path = seeded(tmp_path)
        assert store.gc(max_bytes=10 * path.stat().st_size) == []
        assert path.exists()

    def test_gc_rejects_negative_budget(self, tmp_path):
        store, _ = seeded(tmp_path)
        with pytest.raises(ValueError):
            store.gc(max_bytes=-1)

    def test_total_bytes_sums_entries(self, tmp_path):
        store, path = seeded(tmp_path)
        second = store.publish(DIGEST, "target_sets", PARAMS, sample_arrays(), {})
        assert store.total_bytes() == path.stat().st_size + second.stat().st_size
