"""Tests for the artifact payload codecs (repro.artifacts.payloads).

Round-trip fidelity is the whole point: an artifact loaded from disk
must be field-for-field equivalent to the cold build it replaces --
same path identities, same fault order, same re-derived requirement
sets and length table.  Payloads that cannot be reconstructed must
degrade to counted ``artifact.corrupt`` misses, and budgeted builds
must never be published at all.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifacts import (
    ArtifactStore,
    load_enumeration,
    load_target_sets,
    pack_enumeration,
    pack_target_sets,
    publish_enumeration,
    publish_target_sets,
    unpack_enumeration,
    unpack_target_sets,
)
from repro.artifacts.payloads import _pack_paths, _unpack_paths
from repro.engine import CircuitSession, EngineStats
from repro.faults.path import Path
from repro.paths.enumerate import EnumerationResult

MAX_FAULTS = 100
P0_MIN = 20


@pytest.fixture(scope="module")
def session(s27):
    session = CircuitSession(s27)
    return session


@pytest.fixture(scope="module")
def enumeration(session):
    return session.enumeration(MAX_FAULTS)


@pytest.fixture(scope="module")
def targets(session):
    return session.target_sets(max_faults=MAX_FAULTS, p0_min_faults=P0_MIN)


def assert_same_targets(ours, theirs):
    assert [r.fault.key() for r in ours.all_records] == [
        r.fault.key() for r in theirs.all_records
    ]
    assert all(
        a.sens.requirements == b.sens.requirements
        for a, b in zip(ours.all_records, theirs.all_records)
    )
    assert ours.i0 == theirs.i0
    assert ours.dropped_conflict == theirs.dropped_conflict
    assert ours.dropped_implication == theirs.dropped_implication
    assert tuple(ours.length_table) == tuple(theirs.length_table)
    assert ours.summary() == theirs.summary()


class TestRoundTrips:
    def test_enumeration(self, enumeration):
        arrays, payload = pack_enumeration(enumeration)
        rebuilt = unpack_enumeration(payload, arrays)
        assert rebuilt.paths == enumeration.paths
        assert rebuilt.cap_hit == enumeration.cap_hit
        assert rebuilt.expansions == enumeration.expansions
        assert rebuilt.pruned_complete == enumeration.pruned_complete
        assert rebuilt.pruned_partial == enumeration.pruned_partial
        assert rebuilt.min_kept_length == enumeration.min_kept_length
        assert rebuilt.max_kept_length == enumeration.max_kept_length
        assert rebuilt.budget_exhausted is None

    def test_target_sets(self, session, targets):
        arrays, payload = pack_target_sets(targets)
        rebuilt = unpack_target_sets(session.netlist, payload, arrays, "robust")
        assert_same_targets(rebuilt, targets)
        assert rebuilt.enumeration is None
        assert rebuilt.budget_exhausted is None

    @settings(max_examples=50, deadline=None)
    @given(
        nodelists=st.lists(
            st.lists(st.integers(0, 1_000), min_size=1, max_size=8),
            max_size=20,
        )
    )
    def test_path_arrays_round_trip(self, nodelists):
        paths = [Path(nodes) for nodes in nodelists]
        arrays = _pack_paths(paths)
        rebuilt = _unpack_paths(arrays)
        assert rebuilt == paths
        assert all(
            type(node) is int for path in rebuilt for node in path.nodes
        )


class TestUnpackRejectsMalformedArrays:
    def test_node_count_disagreement(self):
        arrays = _pack_paths([Path([1, 2]), Path([3])])
        arrays["nodes"] = arrays["nodes"][:-1]
        with pytest.raises(ValueError):
            _unpack_paths(arrays)

    def test_empty_path(self):
        arrays = {
            "lengths": np.array([0], dtype=np.int32),
            "nodes": np.array([], dtype=np.int32),
        }
        with pytest.raises(ValueError):
            _unpack_paths(arrays)

    def test_unknown_transition_flag(self, session, targets):
        arrays, payload = pack_target_sets(targets)
        arrays["p0_transitions"] = arrays["p0_transitions"] + 7
        with pytest.raises(ValueError):
            unpack_target_sets(session.netlist, payload, arrays, "robust")

    def test_transition_count_disagreement(self, session, targets):
        arrays, payload = pack_target_sets(targets)
        arrays["p1_transitions"] = arrays["p1_transitions"][:-1]
        with pytest.raises(ValueError):
            unpack_target_sets(session.netlist, payload, arrays, "robust")


class TestStoreWrappers:
    def test_enumeration_publish_then_load(self, tmp_path, session, enumeration):
        stats = EngineStats()
        store = ArtifactStore(tmp_path / "cache")
        publish_enumeration(
            store,
            session.netlist,
            enumeration,
            max_faults=MAX_FAULTS,
            use_distances=True,
            stats=stats,
        )
        loaded = load_enumeration(
            store,
            session.netlist,
            max_faults=MAX_FAULTS,
            use_distances=True,
            stats=stats,
        )
        assert loaded is not None and loaded.paths == enumeration.paths
        assert stats.counter("artifact.write") == 1
        assert stats.counter("artifact.hit") == 1

    def test_target_sets_publish_then_load(self, tmp_path, session, targets):
        store = ArtifactStore(tmp_path / "cache")
        publish_target_sets(
            store,
            session.netlist,
            targets,
            max_faults=MAX_FAULTS,
            p0_min_faults=P0_MIN,
            mode="robust",
            filter_implications=True,
        )
        loaded = load_target_sets(
            store,
            session.netlist,
            max_faults=MAX_FAULTS,
            p0_min_faults=P0_MIN,
            mode="robust",
            filter_implications=True,
        )
        assert loaded is not None
        assert_same_targets(loaded, targets)

    def test_budgeted_enumeration_is_never_published(self, tmp_path, session):
        store = ArtifactStore(tmp_path / "cache")
        stats = EngineStats()
        truncated = EnumerationResult(
            paths=[Path([0])],
            cap_hit=False,
            expansions=1,
            pruned_complete=0,
            pruned_partial=0,
            min_kept_length=1,
            max_kept_length=1,
            budget_exhausted="deadline",
        )
        publish_enumeration(
            store,
            session.netlist,
            truncated,
            max_faults=MAX_FAULTS,
            use_distances=True,
            stats=stats,
        )
        assert store.entries() == []
        assert stats.counter("artifact.write") == 0

    def test_budgeted_targets_are_never_published(self, tmp_path, session, targets):
        from dataclasses import replace

        store = ArtifactStore(tmp_path / "cache")
        publish_target_sets(
            store,
            session.netlist,
            replace(targets, budget_exhausted="deadline"),
            max_faults=MAX_FAULTS,
            p0_min_faults=P0_MIN,
            mode="robust",
            filter_implications=True,
        )
        assert store.entries() == []

    def test_undecodable_payload_counts_corrupt(self, tmp_path, session, targets):
        # The entry passes the store's integrity digest (it was published
        # with the bad flags) but cannot be reconstructed into records:
        # the second decode layer must also degrade to a counted miss.
        stats = EngineStats()
        store = ArtifactStore(tmp_path / "cache")
        arrays, payload = pack_target_sets(targets)
        arrays["p0_transitions"] = arrays["p0_transitions"] + 7
        from repro.artifacts import netlist_digest

        store.publish(
            netlist_digest(session.netlist),
            "target_sets",
            {
                "max_faults": MAX_FAULTS,
                "p0_min_faults": P0_MIN,
                "mode": "robust",
                "filter_implications": True,
            },
            arrays,
            payload,
        )
        loaded = load_target_sets(
            store,
            session.netlist,
            max_faults=MAX_FAULTS,
            p0_min_faults=P0_MIN,
            mode="robust",
            filter_implications=True,
            stats=stats,
        )
        assert loaded is None
        assert stats.counter("artifact.hit") == 1  # store-level decode passed
        assert stats.counter("artifact.corrupt") == 1  # payload-level failed

    def test_publish_failure_is_swallowed(
        self, tmp_path, session, enumeration, monkeypatch
    ):
        store = ArtifactStore(tmp_path / "cache")

        def full_disk(*args, **kwargs):
            raise OSError("no space left on device")

        monkeypatch.setattr(ArtifactStore, "publish", full_disk)
        publish_enumeration(  # must not raise: the cache is best-effort
            store,
            session.netlist,
            enumeration,
            max_faults=MAX_FAULTS,
            use_distances=True,
        )
        monkeypatch.undo()
        assert store.entries() == []
