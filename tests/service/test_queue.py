"""Durable file-based job queue: state = directory, transition = rename."""

import json

import pytest

from repro.service import JOB_STATES, JobQueue, JobSpec, new_job_id


@pytest.fixture()
def queue(tmp_path):
    queue = JobQueue(tmp_path / "queue")
    queue.ensure_layout()
    return queue


class TestJobIds:
    def test_ids_are_unique_and_sorted_by_submission(self):
        ids = [new_job_id() for _ in range(50)]
        assert len(set(ids)) == 50
        assert ids == sorted(ids)

    def test_spec_payload_round_trips(self):
        job = JobSpec(
            id="job-1", params={"jobs": 2}, submitted="now", attempts=3
        )
        assert JobSpec.from_payload(job.to_payload()) == job

    def test_result_only_serialized_when_present(self):
        assert "result" not in JobSpec(id="job-1").to_payload()
        assert JobSpec(id="job-1", result={"out": "x"}).to_payload()[
            "result"
        ] == {"out": "x"}


class TestLayout:
    def test_ensure_layout_creates_all_state_dirs(self, queue):
        for state in JOB_STATES:
            assert queue.state_dir(state).is_dir()
        assert (queue.root / "work").is_dir()
        assert (queue.root / "out").is_dir()
        assert (queue.root / "logs").is_dir()

    def test_unknown_state_rejected(self, queue):
        with pytest.raises(ValueError):
            queue.state_dir("limbo")

    def test_paths_live_under_the_root(self, queue):
        assert queue.wal_path.parent == queue.root
        assert queue.journal_path.parent == queue.root
        assert queue.work_dir("job-1") == queue.root / "work" / "job-1"
        assert queue.log_path("job-1").name == "job-1.log"


class TestSubmitLease:
    def test_submit_lands_in_pending(self, queue):
        job = queue.submit({"jobs": 2})
        path = queue.job_path("pending", job.id)
        assert path.exists()
        stored = json.loads(path.read_text())
        assert stored["status"] == "queued"
        assert stored["params"] == {"jobs": 2}
        assert stored["submitted"]

    def test_lease_claims_oldest_first(self, queue):
        first = queue.submit()
        second = queue.submit()
        leased = queue.lease()
        assert leased.id == first.id
        assert leased.status == "leased"
        assert queue.job_path("leased", first.id).exists()
        assert not queue.job_path("pending", first.id).exists()
        assert queue.job_path("pending", second.id).exists()

    def test_lease_specific_job(self, queue):
        queue.submit()
        wanted = queue.submit()
        assert queue.lease(wanted.id).id == wanted.id

    def test_lease_empty_queue_is_none(self, queue):
        assert queue.lease() is None

    def test_lost_race_moves_to_next_candidate(self, queue):
        """A file that vanishes between listing and claiming (another
        daemon won the rename) must not abort the lease scan."""
        ghost = queue.submit()
        real = queue.submit()
        queue.job_path("pending", ghost.id).unlink()
        assert queue.lease().id == real.id

    def test_unreadable_spec_parked_as_failed(self, queue):
        job = queue.submit()
        queue.job_path("pending", job.id).write_text("{not json")
        assert queue.lease() is None
        assert queue.job_path("failed", f"{job.id}").exists()


class TestReleaseAdopt:
    def test_release_returns_job_to_pending_with_attempts(self, queue):
        queue.submit()
        job = queue.lease()
        job.attempts = 2
        queue.release(job)
        assert not queue.job_path("leased", job.id).exists()
        again = queue.lease()
        assert again.id == job.id
        assert again.attempts == 2  # retry budget survives the round-trip

    def test_adopt_orphans_recovers_leased_jobs(self, queue):
        first = queue.submit()
        second = queue.submit()
        queue.lease()
        adopted = queue.adopt_orphans()
        assert [j.id for j in adopted] == [first.id]
        assert queue.job_path("pending", first.id).exists()
        assert queue.job_path("pending", second.id).exists()
        assert queue._jobs_in("leased") == []

    def test_adopt_orphans_parks_unreadable_lease(self, queue):
        job = queue.submit()
        queue.lease()
        queue.job_path("leased", job.id).write_text("")
        assert queue.adopt_orphans() == []
        assert queue.job_path("failed", job.id).exists()


class TestFinishCancel:
    @pytest.mark.parametrize(
        "status,directory",
        [("done", "done"), ("degraded", "done"), ("failed", "failed")],
    )
    def test_terminal_states_land_in_their_directory(
        self, queue, status, directory
    ):
        queue.submit()
        job = queue.lease()
        queue.finish(job, status, result={"out": "somewhere"})
        path = queue.job_path(directory, job.id)
        assert path.exists()
        assert not queue.job_path("leased", job.id).exists()
        stored = json.loads(path.read_text())
        assert stored["status"] == status
        assert stored["result"] == {"out": "somewhere"}

    def test_finish_rejects_non_terminal_status(self, queue):
        queue.submit()
        job = queue.lease()
        with pytest.raises(ValueError):
            queue.finish(job, "running")

    def test_cancel_pending_job(self, queue):
        job = queue.submit()
        canceled = queue.cancel(job.id)
        assert canceled.status == "canceled"
        assert queue.job_path("canceled", job.id).exists()
        assert queue.lease() is None

    def test_cancel_leased_job_refused(self, queue):
        job = queue.submit()
        queue.lease()
        assert queue.cancel(job.id) is None
        assert queue.job_path("leased", job.id).exists()

    def test_cancel_unknown_job_is_none(self, queue):
        assert queue.cancel("job-nope") is None


class TestInspection:
    def test_find_locates_any_state(self, queue):
        done = queue.submit()
        queue.finish(queue.lease(), "done")
        pending = queue.submit()
        assert queue.find(done.id).status == "done"
        assert queue.find(pending.id).status == "queued"
        assert queue.find("job-nope") is None

    def test_jobs_lists_all_states_oldest_first(self, queue):
        first = queue.submit()
        second = queue.submit()
        queue.finish(queue.lease(), "done")
        listing = queue.jobs()
        assert [j.id for j in listing] == [first.id, second.id]
        assert listing[0].status == "done"
        assert listing[1].status == "queued"


class TestAtomicity:
    def test_writes_leave_no_temp_files(self, queue):
        job = queue.submit()
        queue.lease()
        queue.finish(queue.find(job.id), "done")
        stray = [
            p
            for p in queue.root.rglob("*")
            if p.is_file() and p.suffix == ".tmp"
        ]
        assert stray == []

    def test_job_file_is_valid_json_at_every_state(self, queue):
        job = queue.submit()
        json.loads(queue.job_path("pending", job.id).read_text())
        queue.lease()
        json.loads(queue.job_path("leased", job.id).read_text())
        queue.finish(queue.find(job.id), "done")
        json.loads(queue.job_path("done", job.id).read_text())
