"""Supervisor state machine: lease -> run -> {done, degraded, failed},
plus singleton enforcement, crash re-adoption and shutdown release.

The heavy "done" path runs one real (tiny) tables job end to end; the
failure paths use the chaos hooks and a bogus job kind so they stay
cheap.
"""

import json
import os
import signal

import pytest

from repro.journal import read_journal
from repro.parallel import JobFailure, ParallelRunError
from repro.robustness import RetryPolicy
from repro.service import (
    JobQueue,
    QueueBusyError,
    ServiceShutdown,
    ServiceWAL,
    Supervisor,
)

#: Small enough for seconds-scale runs, still a real sweep.
TINY_PARAMS = {
    "scale": "smoke",
    "quick": True,
    "max_faults": 60,
    "p0_min_faults": 15,
    "jobs": 1,
}


def make_supervisor(tmp_path, **kwargs):
    queue = JobQueue(tmp_path / "queue")
    queue.ensure_layout()
    kwargs.setdefault("drain", True)
    supervisor = Supervisor(queue, **kwargs)
    return queue, supervisor


def journal_events(queue):
    read = read_journal(queue.journal_path)
    assert read.problems == []
    return [(e["event"], e["job"]) for e in read.entries]


class TestValidation:
    def test_rejects_bad_poll_interval(self, tmp_path):
        with pytest.raises(ValueError):
            Supervisor(tmp_path / "q", poll_interval=0)

    def test_rejects_negative_job_retries(self, tmp_path):
        with pytest.raises(ValueError):
            Supervisor(tmp_path / "q", job_retries=-1)

    def test_accepts_queue_path_or_instance(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        assert Supervisor(queue).queue is queue
        assert Supervisor(tmp_path / "q").queue.root == queue.root


class TestSingleton:
    def test_live_foreign_owner_refuses_to_start(self, tmp_path):
        queue, supervisor = make_supervisor(tmp_path)
        # pid 1 exists on every Linux box and is never this process.
        ServiceWAL(queue.wal_path).write("running", pid=1)
        with pytest.raises(QueueBusyError):
            supervisor.serve()

    def test_own_pid_is_not_a_conflict(self, tmp_path):
        queue, supervisor = make_supervisor(tmp_path)
        ServiceWAL(queue.wal_path).write("running", pid=os.getpid())
        assert supervisor.serve() == 0

    def test_stopped_wal_is_not_a_conflict(self, tmp_path):
        queue, supervisor = make_supervisor(tmp_path)
        ServiceWAL(queue.wal_path).write("stopped", pid=1)
        assert supervisor.serve() == 0


class TestServeLoop:
    def test_drain_on_empty_queue_exits_cleanly(self, tmp_path):
        queue, supervisor = make_supervisor(tmp_path)
        assert supervisor.serve() == 0
        assert ServiceWAL(queue.wal_path).load()["phase"] == "stopped"

    def test_unknown_job_kind_fails_terminally(self, tmp_path):
        queue, supervisor = make_supervisor(tmp_path)
        job = queue.submit(kind="bogus")
        assert supervisor.serve() == 0
        stored = queue.find(job.id)
        assert stored.status == "failed"
        assert stored.result["error"] == "ValueError"
        events = journal_events(queue)
        assert ("leased", job.id) in events
        assert ("failed", job.id) in events

    def test_signal_handler_raises_shutdown(self, tmp_path):
        _, supervisor = make_supervisor(tmp_path)
        previous = supervisor._install_signals()
        try:
            handler = signal.getsignal(signal.SIGTERM)
            with pytest.raises(ServiceShutdown) as excinfo:
                handler(signal.SIGTERM, None)
            assert excinfo.value.signum == signal.SIGTERM
        finally:
            supervisor._restore_signals(previous)


class TestDonePath:
    def test_tiny_job_runs_to_done_with_outputs(self, tmp_path):
        queue, supervisor = make_supervisor(tmp_path)
        job = queue.submit(dict(TINY_PARAMS))
        assert supervisor.serve() == 0
        stored = queue.find(job.id)
        assert stored.status == "done"
        out = queue.out_dir(job.id)
        results = json.loads((out / "results.json").read_text())
        assert results["scale"]
        assert (out / "tables.txt").read_text().strip()
        # Checkpoints were written under the job's work dir.
        assert list((queue.work_dir(job.id) / "checkpoints").glob("*.json"))
        events = journal_events(queue)
        assert events.count(("done", job.id)) == 1
        done = [
            e
            for e in read_journal(queue.journal_path).entries
            if e["event"] == "done"
        ]
        assert done[0]["metrics"]["service.wall_seconds"] > 0
        # Per-job log exists and mentions completion.
        assert "done" in queue.log_path(job.id).read_text()


class TestDegradedPath:
    def test_retry_exhaustion_degrades_with_failure_record(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_INJECT_FAIL", "s641_proxy")
        queue, supervisor = make_supervisor(tmp_path)
        params = dict(
            TINY_PARAMS,
            retry={"max_retries": 0, "base_delay": 0.01, "jitter": 0.0},
            service_retries=1,
        )
        job = queue.submit(params)
        assert supervisor.serve() == 0  # failures are data, not crashes
        stored = queue.find(job.id)
        assert stored.status == "degraded"
        assert stored.attempts == 2  # first pass + one supervised retry
        record = json.loads(
            (queue.out_dir(job.id) / "failure.json").read_text()
        )
        assert record["status"] == "degraded"
        assert record["job"] == job.id
        assert record["attempts"] == 2
        assert record["failures"][0]["circuit"] == "s641_proxy"
        assert record["failures"][0]["phase"] == "inject"
        assert "checkpoints" in record
        events = journal_events(queue)
        assert ("retried", job.id) in events
        assert ("degraded", job.id) in events
        assert ("done", job.id) not in events

    def test_transient_failure_recovered_by_supervised_retry(
        self, tmp_path, monkeypatch
    ):
        # The *supervisor's* whole-job retry must recover a transient
        # fault: the first pass dies with a ParallelRunError, the second
        # pass runs the real job (resuming from any checkpoints).
        queue, supervisor = make_supervisor(
            tmp_path,
            retry_policy=RetryPolicy(
                max_retries=1, base_delay=0.01, jitter=0.0
            ),
        )
        real_run = supervisor._run_once
        passes = []

        def flaky(job):
            passes.append(job.id)
            if len(passes) == 1:
                raise ParallelRunError(
                    [
                        JobFailure(
                            circuit="s641_proxy",
                            phase="pool",
                            error="BrokenProcessPool",
                            message="worker died",
                        )
                    ],
                    [],
                )
            return real_run(job)

        monkeypatch.setattr(supervisor, "_run_once", flaky)
        job = queue.submit(dict(TINY_PARAMS, service_retries=1))
        assert supervisor.serve() == 0
        assert len(passes) == 2
        assert queue.find(job.id).status == "done"
        events = journal_events(queue)
        assert ("retried", job.id) in events
        assert ("done", job.id) in events


class TestShutdownPath:
    def test_shutdown_mid_job_releases_lease(self, tmp_path, monkeypatch):
        queue, supervisor = make_supervisor(tmp_path)
        job = queue.submit(dict(TINY_PARAMS))
        leased = queue.lease()
        monkeypatch.setattr(
            supervisor,
            "_run_once",
            lambda _job: (_ for _ in ()).throw(ServiceShutdown(signal.SIGTERM)),
        )
        with pytest.raises(ServiceShutdown):
            supervisor.run_job(leased)
        # The job went back to pending with its attempt count intact.
        assert queue.job_path("pending", job.id).exists()
        assert not queue.job_path("leased", job.id).exists()
        events = journal_events(queue)
        assert ("released", job.id) in events


class TestCrashRecovery:
    def test_dead_daemons_lease_is_readopted(self, tmp_path):
        queue, supervisor = make_supervisor(tmp_path)
        job = queue.submit(kind="bogus")  # cheap terminal path after adopt
        queue.lease()
        # Simulate the previous daemon dying mid-lease: WAL records a
        # pid that is provably dead.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        ServiceWAL(queue.wal_path).write("running", job=job.id, pid=pid)
        assert supervisor.serve() == 0
        events = journal_events(queue)
        assert ("readopted", job.id) in events
        # The re-adopted job was then driven to a terminal state.
        assert queue.find(job.id).status == "failed"

    def test_adopt_preserves_attempt_counts(self, tmp_path):
        queue, supervisor = make_supervisor(tmp_path)
        queue.submit(kind="bogus")
        leased = queue.lease()
        leased.attempts = 1
        queue._write_job(leased, "leased")
        [adopted] = supervisor.adopt()
        assert adopted.attempts == 1
