"""Write-ahead state file: crash detection via pid liveness."""

import json
import os

from repro.service import ServiceWAL, pid_alive


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert pid_alive(os.getpid())

    def test_unused_pid_is_dead(self):
        # Fork a child and reap it: its pid is guaranteed recycled-free
        # for the duration of the test and definitely not running.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        assert not pid_alive(pid)

    def test_nonpositive_pids_are_not_alive(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)


class TestServiceWAL:
    def test_write_then_load_round_trips(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal.json")
        wal.write("running", job="job-1")
        state = wal.load()
        assert state["phase"] == "running"
        assert state["job"] == "job-1"
        assert state["pid"] == os.getpid()
        assert state["updated"]

    def test_write_is_atomic_no_temp_left(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal.json")
        wal.write("idle")
        assert [p.name for p in tmp_path.iterdir()] == ["wal.json"]
        json.loads((tmp_path / "wal.json").read_text())

    def test_missing_file_loads_none(self, tmp_path):
        assert ServiceWAL(tmp_path / "wal.json").load() is None

    def test_corrupt_file_loads_none(self, tmp_path):
        path = tmp_path / "wal.json"
        path.write_text('{"pid": 12')
        assert ServiceWAL(path).load() is None

    def test_owner_is_live_writer(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal.json")
        wal.write("running", job="job-1")
        assert wal.owner() == os.getpid()

    def test_stopped_phase_has_no_owner(self, tmp_path):
        # A cleanly-stopped daemon's pid may still be alive (it is: ours)
        # but it no longer owns the queue.
        wal = ServiceWAL(tmp_path / "wal.json")
        wal.write("stopped")
        assert wal.owner() is None

    def test_dead_pid_has_no_owner(self, tmp_path):
        wal = ServiceWAL(tmp_path / "wal.json")
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        wal.write("running", job="job-1", pid=pid)
        assert wal.owner() is None  # the crash signature

    def test_missing_wal_has_no_owner(self, tmp_path):
        assert ServiceWAL(tmp_path / "wal.json").owner() is None
