"""Tests for path delay faults."""

import pytest

from repro.algebra import FALL, RISE
from repro.faults import (
    Path,
    PathDelayFault,
    Transition,
    faults_of_path,
    faults_of_paths,
)


class TestTransition:
    def test_source_triples(self):
        assert Transition.RISE.source_triple is RISE
        assert Transition.FALL.source_triple is FALL

    def test_opposite(self):
        assert Transition.RISE.opposite is Transition.FALL
        assert Transition.FALL.opposite is Transition.RISE

    def test_str(self):
        assert str(Transition.RISE) == "slow-to-rise"
        assert str(Transition.FALL) == "slow-to-fall"


class TestFault:
    def test_two_faults_per_path(self, s27):
        path = Path.from_names(s27, ["G1", "G12", "G13"])
        str_fault, stf_fault = faults_of_path(path)
        assert str_fault.transition is Transition.RISE
        assert stf_fault.transition is Transition.FALL
        assert str_fault != stf_fault
        assert str_fault.path == stf_fault.path

    def test_faults_of_paths_count(self, s27):
        paths = [
            Path.from_names(s27, ["G1", "G12"]),
            Path.from_names(s27, ["G2", "G13"]),
        ]
        assert len(list(faults_of_paths(paths))) == 4

    def test_equality_and_hash(self, s27):
        path = Path.from_names(s27, ["G1", "G12"])
        a = PathDelayFault(path, Transition.RISE)
        b = PathDelayFault(Path.from_names(s27, ["G1", "G12"]), Transition.RISE)
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_properties(self, s27):
        path = Path.from_names(s27, ["G1", "G12", "G13"])
        fault = PathDelayFault(path, Transition.FALL)
        assert fault.length == 3
        assert fault.source == s27.index_of("G1")
        assert fault.sink == s27.index_of("G13")

    def test_immutable(self, s27):
        fault = PathDelayFault(
            Path.from_names(s27, ["G1", "G12"]), Transition.RISE
        )
        with pytest.raises(AttributeError):
            fault.transition = Transition.FALL

    def test_format(self, s27):
        fault = PathDelayFault(
            Path.from_names(s27, ["G1", "G12"]), Transition.RISE
        )
        assert fault.format(s27) == "(G1, G12) slow-to-rise"
