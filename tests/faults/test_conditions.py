"""Tests for robust/non-robust sensitization conditions A(p)."""

import pytest

from repro.algebra import FALL, RISE, STABLE0, STABLE1, Triple
from repro.circuit import GateType, build_netlist
from repro.faults import (
    Path,
    PathDelayFault,
    SensitizationError,
    Transition,
    sensitize,
)


def fault(netlist, names, transition=Transition.RISE):
    return PathDelayFault(Path.from_names(netlist, names), transition)


class TestPaperExample:
    """Section 2.1's s27 example: A(p) = {source 0x1, one steady 000 side
    value, one final-only xx0 side value} for a slow-to-rise path through
    two NOR gates."""

    def test_s27_two_nor_path(self, s27):
        sens = sensitize(s27, fault(s27, ["G1", "G12", "G13"]))
        assert sens is not None
        req = {
            s27.node_at(node).name: str(triple)
            for node, triple in sens.requirements.items()
        }
        # Source transition.
        assert req["G1"] == "0x1"
        # First NOR: on-path rises to the controlling value (1) -> side
        # input needs the non-controlling value under the second pattern.
        assert req["G7"] == "xx0"
        # Second NOR: on-path falls to the non-controlling value (0) ->
        # side input must be steady non-controlling.
        assert req["G2"] == "000"
        # Waveform along the path: rise -> fall -> rise.
        assert sens.on_path == (RISE, FALL, RISE)


class TestGateRules:
    def two_gate(self, gate_type):
        return build_netlist(
            "g",
            inputs=["a", "b"],
            gates=[("y", gate_type, ["a", "b"])],
            outputs=["y"],
        )

    @pytest.mark.parametrize(
        "gate_type,transition,expect",
        [
            # AND: controlling 0, non-controlling 1.
            (GateType.AND, Transition.RISE, "111"),  # ends at nc -> steady nc
            (GateType.AND, Transition.FALL, "xx1"),  # ends at c -> final nc
            (GateType.NAND, Transition.RISE, "111"),
            (GateType.NAND, Transition.FALL, "xx1"),
            # OR: controlling 1, non-controlling 0.
            (GateType.OR, Transition.RISE, "xx0"),
            (GateType.OR, Transition.FALL, "000"),
            (GateType.NOR, Transition.RISE, "xx0"),
            (GateType.NOR, Transition.FALL, "000"),
        ],
    )
    def test_robust_side_requirements(self, gate_type, transition, expect):
        netlist = self.two_gate(gate_type)
        sens = sensitize(netlist, fault(netlist, ["a", "y"], transition))
        assert str(sens.requirements[netlist.index_of("b")]) == expect

    @pytest.mark.parametrize(
        "gate_type,transition,expect",
        [
            (GateType.AND, Transition.RISE, "xx1"),  # non-robust relaxes
            (GateType.OR, Transition.FALL, "xx0"),
        ],
    )
    def test_non_robust_side_requirements(self, gate_type, transition, expect):
        netlist = self.two_gate(gate_type)
        sens = sensitize(
            netlist, fault(netlist, ["a", "y"], transition), mode="non_robust"
        )
        assert str(sens.requirements[netlist.index_of("b")]) == expect

    def test_inverter_flips_transition(self):
        netlist = build_netlist(
            "inv",
            inputs=["a"],
            gates=[("n", GateType.NOT, ["a"]), ("y", GateType.BUF, ["n"])],
            outputs=["y"],
        )
        sens = sensitize(netlist, fault(netlist, ["a", "n", "y"]))
        assert sens.on_path == (RISE, FALL, FALL)
        # No side inputs anywhere: only the source requirement.
        assert set(sens.requirements) == {netlist.index_of("a")}

    def test_inversion_parity_through_nand(self):
        netlist = self.two_gate(GateType.NAND)
        sens = sensitize(netlist, fault(netlist, ["a", "y"], Transition.RISE))
        assert sens.on_path[-1] is FALL  # NAND inverts

    def test_xor_unsupported(self):
        netlist = self.two_gate(GateType.XOR)
        with pytest.raises(SensitizationError, match="expand"):
            sensitize(netlist, fault(netlist, ["a", "y"]))


class TestConflicts:
    def test_duplicate_fanin_collapses_to_buffer(self):
        # y = AND(a, a): in the node-based path model (no separate fanout
        # branch lines, see DESIGN.md) the duplicated input is the on-path
        # signal itself, so the gate degenerates to a buffer and there is
        # no side requirement.  The triple simulation agrees
        # (AND(0x1, 0x1) = 0x1), so detection claims remain consistent.
        netlist = build_netlist(
            "dup",
            inputs=["a"],
            gates=[("y", GateType.AND, ["a", "a"])],
            outputs=["y"],
        )
        sens = sensitize(netlist, fault(netlist, ["a", "y"]))
        assert sens is not None
        assert set(sens.requirements) == {netlist.index_of("a")}

    def test_conflicting_side_requirements(self):
        # b feeds an AND (needs steady 1 on rise) and an OR further along
        # (needs steady 0 when the path falls into it after the NAND).
        netlist = build_netlist(
            "conflict",
            inputs=["a", "b"],
            gates=[
                ("g1", GateType.NAND, ["a", "b"]),
                ("g2", GateType.OR, ["g1", "b"]),
            ],
            outputs=["g2"],
        )
        # a rises -> g1 side b needs 111; g1 falls into OR -> side b needs
        # 000: conflict, undetectable.
        assert sensitize(netlist, fault(netlist, ["a", "g1", "g2"])) is None

    def test_implied_conflict_left_to_implication_stage(self):
        # Path (a, g2) with g2 = AND(a, NOT(a)): the side requirement
        # (g1 steady 1) is on a node *off* the path, so A(p) itself merges
        # cleanly -- the contradiction (NOT(a) cannot be steady 1 while a
        # rises) is the paper's *type-2* undetectability, found by the
        # implication filter, not by sensitize().
        netlist = build_netlist(
            "reconv",
            inputs=["a"],
            gates=[
                ("g1", GateType.NOT, ["a"]),
                ("g2", GateType.AND, ["a", "g1"]),
            ],
            outputs=["g2"],
        )
        sens = sensitize(netlist, fault(netlist, ["a", "g2"]))
        assert sens is not None  # type-1 check passes

        from repro.atpg import RequirementSet, has_implication_conflict

        assert has_implication_conflict(
            netlist, RequirementSet(sens.requirements)
        )

    def test_compatible_requirements_merge(self):
        # The same side node needed as xx1 at two gates merges cleanly.
        netlist = build_netlist(
            "merge",
            inputs=["a", "b"],
            gates=[
                ("g1", GateType.AND, ["a", "b"]),
                ("g2", GateType.AND, ["g1", "b"]),
            ],
            outputs=["g2"],
        )
        sens = sensitize(
            netlist, fault(netlist, ["a", "g1", "g2"], Transition.FALL)
        )
        assert sens is not None
        assert str(sens.requirements[netlist.index_of("b")]) == "xx1"


class TestMetadata:
    def test_num_values(self, s27):
        sens = sensitize(s27, fault(s27, ["G1", "G12", "G13"]))
        # 0x1 (2 specified) + 000 (3) + xx0 (1) = 6 components.
        assert sens.num_values == 6

    def test_format_mentions_all_lines(self, s27):
        sens = sensitize(s27, fault(s27, ["G1", "G12", "G13"]))
        text = sens.format(s27)
        for name in ("G1", "G2", "G7"):
            assert name in text

    def test_mode_recorded(self, s27):
        sens = sensitize(s27, fault(s27, ["G1", "G12", "G13"]), mode="non_robust")
        assert sens.mode == "non_robust"
