"""Tests for target-set construction (P, P0, P1)."""

import pytest

from repro.faults import build_target_sets, partition_by_lengths
from repro.paths import length_table_for_faults


class TestBuildTargetSets:
    def test_s27_split(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        # i0 is the first index whose cumulative count reaches 20.
        table = targets.length_table
        assert table[targets.i0].cumulative >= 20
        if targets.i0 > 0:
            assert table[targets.i0 - 1].cumulative < 20
        boundary = targets.boundary_length
        assert all(r.length >= boundary for r in targets.p0)
        assert all(r.length < boundary for r in targets.p1)

    def test_p0_contains_all_longest(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        longest = targets.length_table[0].length
        longest_records = [r for r in targets.all_records if r.length == longest]
        assert longest_records
        assert all(r in targets.p0 for r in longest_records)

    def test_p0_at_least_min_when_available(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        assert len(targets.p0) >= 20

    def test_whole_population_smaller_than_min(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=10_000)
        assert targets.p1 == []
        assert len(targets.p0) == len(targets.all_records)

    def test_conflicting_faults_dropped(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        assert targets.dropped_conflict > 0
        assert all(record.sens is not None for record in targets.all_records)

    def test_implication_filter_applied(self, s27):
        from repro.atpg import Justifier, RequirementSet, has_implication_conflict

        justifier = Justifier(s27)

        def keep(record):
            return not has_implication_conflict(
                justifier, RequirementSet(record.sens.requirements)
            )

        unfiltered = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        filtered = build_target_sets(
            s27, max_faults=1000, p0_min_faults=20, implication_filter=keep
        )
        total_f = len(filtered.all_records)
        total_u = len(unfiltered.all_records)
        assert total_f + filtered.dropped_implication == total_u

    def test_non_robust_mode_keeps_more_faults(self, tiny_chain):
        robust = build_target_sets(tiny_chain, max_faults=400, p0_min_faults=50)
        non_robust = build_target_sets(
            tiny_chain, max_faults=400, p0_min_faults=50, mode="non_robust"
        )
        assert non_robust.dropped_conflict <= robust.dropped_conflict

    def test_summary_mentions_sizes(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        text = targets.summary()
        assert "P0" in text and "s27" in text

    def test_length_table_matches_records(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        rebuilt = length_table_for_faults(r.fault for r in targets.all_records)
        assert [(row.length, row.cumulative) for row in rebuilt] == [
            (row.length, row.cumulative) for row in targets.length_table
        ]


class TestPartitionByLengths:
    def test_three_way_split(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        records = targets.all_records
        lengths = sorted({r.length for r in records}, reverse=True)
        assert len(lengths) >= 3
        subsets = partition_by_lengths(records, [lengths[0], lengths[2]])
        assert len(subsets) == 3
        assert sum(len(s) for s in subsets) == len(records)
        assert all(r.length >= lengths[0] for r in subsets[0])
        assert all(lengths[2] <= r.length < lengths[0] for r in subsets[1])
        assert all(r.length < lengths[2] for r in subsets[2])

    def test_empty_boundaries(self, s27):
        targets = build_target_sets(s27, max_faults=1000, p0_min_faults=20)
        subsets = partition_by_lengths(targets.all_records, [])
        assert len(subsets) == 1
        assert len(subsets[0]) == len(targets.all_records)
