"""Tests for the Path data type."""

import pytest

from repro.faults import Path, PathError


class TestConstruction:
    def test_from_names(self, s27):
        path = Path.from_names(s27, ["G1", "G12", "G13"])
        assert path.length == 3
        assert path.names(s27) == ("G1", "G12", "G13")

    def test_empty_rejected(self):
        with pytest.raises(PathError):
            Path(())

    def test_immutable(self, s27):
        path = Path.from_names(s27, ["G1", "G12"])
        with pytest.raises(AttributeError):
            path.nodes = (1, 2)

    def test_from_names_rejects_disconnected(self, s27):
        with pytest.raises(PathError, match="does not drive"):
            Path.from_names(s27, ["G1", "G13"])

    def test_from_names_rejects_non_input_source(self, s27):
        with pytest.raises(PathError, match="not a primary input"):
            Path.from_names(s27, ["G12", "G13"])


class TestBehavior:
    def test_extended(self, s27):
        path = Path.from_names(s27, ["G1", "G12"])
        longer = path.extended(s27.index_of("G13"))
        assert longer.length == 3
        assert path.length == 2  # original untouched

    def test_edges(self, s27):
        path = Path.from_names(s27, ["G1", "G12", "G13"])
        edges = list(path.edges())
        assert len(edges) == 2
        assert edges[0] == (s27.index_of("G1"), s27.index_of("G12"))

    def test_is_complete(self, s27):
        complete = Path.from_names(s27, ["G2", "G13"])  # G13 is a pseudo-PO
        assert complete.is_complete(s27)
        partial = Path.from_names(s27, ["G1", "G12"])
        assert not partial.is_complete(s27)

    def test_ordering_and_hash(self, s27):
        a = Path.from_names(s27, ["G1", "G12"])
        b = Path.from_names(s27, ["G1", "G12"])
        c = Path.from_names(s27, ["G1", "G12", "G13"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a < c

    def test_iteration_and_indexing(self, s27):
        path = Path.from_names(s27, ["G1", "G12", "G13"])
        assert list(path)[0] == path[0] == s27.index_of("G1")
        assert len(path) == 3

    def test_format(self, s27):
        path = Path.from_names(s27, ["G1", "G12"])
        assert path.format(s27) == "(G1, G12)"
