"""Tests for the netlist data model."""

import pytest

from repro.circuit import GateType, Netlist, NetlistError, build_netlist


def small() -> Netlist:
    return build_netlist(
        "small",
        inputs=["a", "b", "c"],
        gates=[
            ("g1", GateType.AND, ["a", "b"]),
            ("g2", GateType.NOT, ["g1"]),
            ("g3", GateType.OR, ["g2", "c"]),
        ],
        outputs=["g3"],
    )


class TestConstruction:
    def test_basic_shape(self):
        netlist = small()
        assert len(netlist) == 6
        assert netlist.num_gates == 3
        assert netlist.input_names == ("a", "b", "c")
        assert netlist.output_names == ("g3",)

    def test_duplicate_node_rejected(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate("a", GateType.NOT, ["a"])

    def test_empty_name_rejected(self):
        netlist = Netlist("x")
        with pytest.raises(NetlistError):
            netlist.add_input("")

    def test_gate_arity_validation(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate("g", GateType.NOT, ["a", "a"])
        with pytest.raises(NetlistError):
            netlist.add_gate("g", GateType.AND, [])
        with pytest.raises(NetlistError):
            netlist.add_gate("g", GateType.CONST0, ["a"])

    def test_input_via_add_gate_rejected(self):
        netlist = Netlist("x")
        with pytest.raises(NetlistError):
            netlist.add_gate("a", GateType.INPUT, [])

    def test_dangling_reference_rejected_at_freeze(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_gate("g", GateType.NOT, ["missing"])
        netlist.add_output("g")
        with pytest.raises(NetlistError, match="undeclared"):
            netlist.freeze()

    def test_missing_output_rejected(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_output("nope")
        with pytest.raises(NetlistError):
            netlist.freeze()

    def test_no_outputs_rejected(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        with pytest.raises(NetlistError, match="no primary outputs"):
            netlist.freeze()

    def test_cycle_rejected(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_gate("g1", GateType.AND, ["a", "g2"])
        netlist.add_gate("g2", GateType.NOT, ["g1"])
        netlist.add_output("g2")
        with pytest.raises(NetlistError, match="cycle"):
            netlist.freeze()

    def test_frozen_blocks_mutation(self):
        netlist = small()
        with pytest.raises(NetlistError):
            netlist.add_input("z")
        with pytest.raises(NetlistError):
            netlist.add_output("g1")

    def test_freeze_idempotent(self):
        netlist = small()
        assert netlist.freeze() is netlist

    def test_duplicate_output_rejected(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_output("a")
        with pytest.raises(NetlistError):
            netlist.add_output("a")


class TestDerivedData:
    def test_levels(self):
        netlist = small()
        assert netlist.level("a") == 0
        assert netlist.level("g1") == 1
        assert netlist.level("g2") == 2
        assert netlist.level("g3") == 3

    def test_topo_order_respects_edges(self):
        netlist = small()
        position = {index: rank for rank, index in enumerate(netlist.topo_order)}
        for node in netlist.nodes:
            for fanin_index in netlist.fanin_indices(node.index):
                assert position[fanin_index] < position[node.index]

    def test_fanout(self):
        netlist = small()
        a = netlist.index_of("a")
        g1 = netlist.index_of("g1")
        assert netlist.fanout(a) == (g1,)
        assert netlist.fanout("g3") == ()

    def test_accessors_require_freeze(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            _ = netlist.topo_order

    def test_index_lookup_errors(self):
        netlist = small()
        with pytest.raises(NetlistError):
            netlist.index_of("ghost")
        with pytest.raises(NetlistError):
            netlist.node("ghost")

    def test_gate_type_counts(self):
        counts = small().gate_type_counts()
        assert counts == {GateType.AND: 1, GateType.NOT: 1, GateType.OR: 1}

    def test_is_pdf_ready(self):
        assert small().is_pdf_ready()
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("g", GateType.XOR, ["a", "b"])
        netlist.add_output("g")
        netlist.freeze()
        assert not netlist.is_pdf_ready()

    def test_contains_and_iter(self):
        netlist = small()
        assert "g1" in netlist
        assert "ghost" not in netlist
        assert len(list(netlist)) == 6

    def test_node_can_be_both_gate_and_output(self):
        netlist = Netlist("x")
        netlist.add_input("a")
        netlist.add_gate("g1", GateType.NOT, ["a"])
        netlist.add_gate("g2", GateType.NOT, ["g1"])
        netlist.add_output("g1")  # has fanout AND is an output (pseudo-PO)
        netlist.add_output("g2")
        netlist.freeze()
        g1 = netlist.index_of("g1")
        assert g1 in netlist.output_indices
        assert netlist.fanout(g1)
