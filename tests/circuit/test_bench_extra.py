"""Additional .bench parser edge cases."""

import pytest

from repro.circuit import BenchParseError, parse_bench


class TestNamesAndFormats:
    def test_bracketed_and_dotted_names(self):
        netlist, _ = parse_bench(
            """
            INPUT(top.u1.a[0])
            INPUT(top.u1.a[1])
            OUTPUT(y$net)
            y$net = AND(top.u1.a[0], top.u1.a[1])
            """
        )
        assert "top.u1.a[0]" in netlist.input_names
        assert netlist.output_names == ("y$net",)

    def test_whitespace_tolerance(self):
        netlist, _ = parse_bench(
            "  INPUT( a )\nOUTPUT( y )\n y   =   NAND( a ,  a )\n".replace(
                "( a )", "(a)"
            ).replace("( y )", "(y)")
        )
        assert netlist.node("y").fanin == ("a", "a")

    def test_duplicate_output_declaration_tolerated_between_real_and_pseudo(self):
        # A DFF data net that is also a declared primary output must not be
        # emitted as an output twice.
        netlist, info = parse_bench(
            """
            INPUT(a)
            OUTPUT(d)
            q = DFF(d)
            d = AND(a, q)
            """
        )
        assert netlist.output_names.count("d") == 1
        assert info.pseudo_outputs == ["d"]

    def test_multiple_dffs_share_data_net(self):
        netlist, info = parse_bench(
            """
            INPUT(a)
            OUTPUT(y)
            q0 = DFF(d)
            q1 = DFF(d)
            d = AND(a, q0)
            y = OR(q1, a)
            """
        )
        assert info.num_dffs == 2
        assert netlist.output_names.count("d") == 1

    def test_fanin_arity_above_three(self):
        netlist, _ = parse_bench(
            """
            INPUT(a)
            INPUT(b)
            INPUT(c)
            INPUT(d)
            INPUT(e)
            OUTPUT(y)
            y = NOR(a, b, c, d, e)
            """
        )
        assert len(netlist.node("y").fanin) == 5

    def test_error_reports_line_numbers(self):
        try:
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = ???\n")
        except BenchParseError as exc:
            assert exc.line_no == 3 or "line 3" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected BenchParseError")
