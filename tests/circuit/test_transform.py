"""Tests for netlist transformations (XOR expansion etc.)."""

import itertools

import pytest

from repro.circuit import (
    GateType,
    build_netlist,
    expand_xor,
    pdf_ready,
    renamed,
    strip_unreachable,
)
from repro.sim import simulate_logic


def xor_circuit(arity: int, invert: bool = False):
    inputs = [f"i{k}" for k in range(arity)]
    gate = GateType.XNOR if invert else GateType.XOR
    return build_netlist(
        "xors",
        inputs=inputs,
        gates=[("y", gate, inputs)],
        outputs=["y"],
    )


class TestExpandXor:
    @pytest.mark.parametrize("arity", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("invert", [False, True])
    def test_exhaustive_equivalence(self, arity, invert):
        original = xor_circuit(arity, invert)
        expanded = expand_xor(original)
        assert expanded.is_pdf_ready()
        for bits in itertools.product([0, 1], repeat=arity):
            assignment = {f"i{k}": bits[k] for k in range(arity)}
            want = simulate_logic(original, assignment)["y"]
            got = simulate_logic(expanded, assignment)["y"]
            assert got == want, (bits, invert)

    def test_interface_preserved(self):
        original = xor_circuit(3)
        expanded = expand_xor(original)
        assert expanded.input_names == original.input_names
        assert expanded.output_names == original.output_names

    def test_mixed_circuit_other_gates_untouched(self):
        netlist = build_netlist(
            "mixed",
            inputs=["a", "b", "c"],
            gates=[
                ("x", GateType.XOR, ["a", "b"]),
                ("y", GateType.AND, ["x", "c"]),
            ],
            outputs=["y"],
        )
        expanded = expand_xor(netlist)
        assert expanded.node("y").gate_type is GateType.AND
        assert expanded.node("y").fanin == ("x", "c")
        for bits in itertools.product([0, 1], repeat=3):
            assignment = dict(zip("abc", bits))
            assert (
                simulate_logic(netlist, assignment)["y"]
                == simulate_logic(expanded, assignment)["y"]
            )

    def test_pdf_ready_noop_without_xor(self, s27):
        assert pdf_ready(s27) is s27

    def test_pdf_ready_expands(self):
        netlist = xor_circuit(2)
        assert pdf_ready(netlist) is not netlist


class TestStripUnreachable:
    def test_drops_dead_gates(self):
        netlist = build_netlist(
            "dead",
            inputs=["a"],
            gates=[
                ("live", GateType.NOT, ["a"]),
                ("dead1", GateType.NOT, ["a"]),
                ("dead2", GateType.NOT, ["dead1"]),
            ],
            outputs=["live"],
        )
        stripped = strip_unreachable(netlist)
        assert "dead1" not in stripped
        assert "dead2" not in stripped
        assert "live" in stripped
        assert stripped.input_names == ("a",)

    def test_noop_on_clean_circuit(self, s27):
        stripped = strip_unreachable(s27)
        assert len(stripped) == len(s27)


class TestRenamed:
    def test_renamed_copy(self, c17):
        copy = renamed(c17, "c17_copy")
        assert copy.name == "c17_copy"
        assert copy.input_names == c17.input_names
        assert len(copy) == len(c17)
        for node in c17.nodes:
            assert copy.node(node.name).fanin == node.fanin
