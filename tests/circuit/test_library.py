"""Tests for the circuit registry."""

import pytest

from repro.circuit import available_circuits, load_circuit
from repro.circuit.library import PROXY_PROFILES, load_bench_resource


class TestRegistry:
    def test_real_circuits_listed(self):
        names = available_circuits()
        assert "s27" in names and "c17" in names

    def test_paper_proxies_listed(self):
        names = set(available_circuits())
        for paper_circuit in (
            "s641",
            "s953",
            "s1196",
            "s1423",
            "s1488",
            "b03",
            "b04",
            "b09",
            "s1423r",
            "s5378r",
            "s9234r",
        ):
            assert f"{paper_circuit}_proxy" in names, paper_circuit

    def test_unknown_circuit(self):
        with pytest.raises(KeyError, match="unknown circuit"):
            load_circuit("s99999")

    def test_unknown_bench_resource(self):
        with pytest.raises(KeyError):
            load_bench_resource("s1423")

    def test_profiles_use_chain_style(self):
        for name, profile in PROXY_PROFILES.items():
            if name.startswith("mesh"):
                assert profile.style == "mesh"
            else:
                assert profile.style == "chain", name

    def test_profile_names_match_keys(self):
        for name, profile in PROXY_PROFILES.items():
            assert profile.name == name

    def test_loaded_circuits_are_frozen_and_named(self):
        netlist = load_circuit("b09_proxy")
        assert netlist.frozen
        assert netlist.name == "b09_proxy"

    def test_seeds_are_distinct(self):
        seeds = [profile.seed for profile in PROXY_PROFILES.values()]
        assert len(seeds) == len(set(seeds))
