"""Tests for structural analysis: distances, path counting, cones."""

import pytest

from repro.circuit import (
    GateType,
    analyze,
    build_netlist,
    count_paths,
    distance_to_outputs,
    input_cone,
    longest_path_length,
    output_cone,
    path_length_counts,
    support_inputs,
)
from repro.paths import enumerate_paths


def diamond():
    r"""a -> g1 -> g3 -> out, and a -> g2 -> g3 (two reconvergent arms)."""
    return build_netlist(
        "diamond",
        inputs=["a", "b"],
        gates=[
            ("g1", GateType.NOT, ["a"]),
            ("g2", GateType.AND, ["a", "b"]),
            ("g3", GateType.OR, ["g1", "g2"]),
        ],
        outputs=["g3"],
    )


class TestDistance:
    def test_diamond_distances(self):
        netlist = diamond()
        d = distance_to_outputs(netlist)
        assert d[netlist.index_of("g3")] == 0
        assert d[netlist.index_of("g1")] == 1
        assert d[netlist.index_of("g2")] == 1
        assert d[netlist.index_of("a")] == 2
        assert d[netlist.index_of("b")] == 2

    def test_unreachable_node_marked(self):
        netlist = build_netlist(
            "dangling",
            inputs=["a"],
            gates=[
                ("used", GateType.NOT, ["a"]),
                ("dead", GateType.NOT, ["a"]),
            ],
            outputs=["used"],
        )
        d = distance_to_outputs(netlist)
        assert d[netlist.index_of("dead")] == -1
        assert d[netlist.index_of("a")] == 1

    def test_pseudo_output_with_fanout(self):
        # A node that is an output AND drives more logic: d reflects the
        # longer continuation, not the endpoint.
        netlist = build_netlist(
            "pseudo",
            inputs=["a"],
            gates=[
                ("g1", GateType.NOT, ["a"]),
                ("g2", GateType.NOT, ["g1"]),
            ],
            outputs=["g1", "g2"],
        )
        d = distance_to_outputs(netlist)
        assert d[netlist.index_of("g1")] == 1  # can continue to g2
        assert d[netlist.index_of("a")] == 2

    def test_s27_max_distance_matches_longest_path(self, s27):
        d = distance_to_outputs(s27)
        best = max(d[i] + 1 for i in s27.input_indices)
        assert best == longest_path_length(s27) == 7


class TestPathCounting:
    def test_diamond_count(self):
        assert count_paths(diamond()) == 3  # a->g1->g3, a->g2->g3, b->g2->g3

    def test_s27_count_matches_enumeration(self, s27):
        full = enumerate_paths(s27, max_faults=10_000)
        assert count_paths(s27) == len(full.paths) == 28

    def test_length_histogram_matches_enumeration(self, s27):
        histogram = path_length_counts(s27)
        full = enumerate_paths(s27, max_faults=10_000)
        enumerated: dict[int, int] = {}
        for path in full.paths:
            enumerated[path.length] = enumerated.get(path.length, 0) + 1
        assert histogram == enumerated

    def test_length_histogram_matches_enumeration_synthetic(self, tiny_chain):
        histogram = path_length_counts(tiny_chain)
        full = enumerate_paths(tiny_chain, max_faults=10_000_000)
        enumerated: dict[int, int] = {}
        for path in full.paths:
            enumerated[path.length] = enumerated.get(path.length, 0) + 1
        assert histogram == enumerated

    def test_histogram_total_equals_count(self, tiny_mesh):
        histogram = path_length_counts(tiny_mesh)
        assert sum(histogram.values()) == count_paths(tiny_mesh)


class TestCones:
    def test_input_cone(self):
        netlist = diamond()
        cone = input_cone(netlist, ["g1"])
        names = {netlist.node_at(i).name for i in cone}
        assert names == {"g1", "a"}

    def test_output_cone(self):
        netlist = diamond()
        cone = output_cone(netlist, ["b"])
        names = {netlist.node_at(i).name for i in cone}
        assert names == {"b", "g2", "g3"}

    def test_support_inputs(self):
        netlist = diamond()
        support = support_inputs(netlist, ["g1"])
        assert [netlist.node_at(i).name for i in support] == ["a"]

    def test_cones_accept_indices(self):
        netlist = diamond()
        g1 = netlist.index_of("g1")
        assert input_cone(netlist, [g1]) == input_cone(netlist, ["g1"])


class TestAnalyze:
    def test_s27_stats(self, s27):
        stats = analyze(s27)
        assert stats.num_inputs == 7
        assert stats.num_outputs == 4
        assert stats.num_gates == 10
        assert stats.num_paths == 28
        assert stats.longest_path == 7
        assert "NOR" in stats.gate_counts
        assert "s27" in str(stats)

    def test_proxy_meets_paper_criterion(self):
        # The paper only evaluates circuits with at least 1000 paths.
        from repro.circuit import load_circuit

        for name in ("s641_proxy", "s1423_proxy", "b04_proxy"):
            assert analyze(load_circuit(name)).num_paths >= 900, name
