"""Tests for the synthetic circuit generator."""

import pytest

from repro.circuit import analyze, assert_valid, count_paths
from repro.circuit.synth import SynthProfile, generate


class TestProfileValidation:
    def test_needs_two_inputs(self):
        with pytest.raises(ValueError):
            SynthProfile(name="x", seed=1, n_inputs=1, n_gates=5)

    def test_mesh_needs_gates(self):
        with pytest.raises(ValueError):
            SynthProfile(name="x", seed=1, n_inputs=4, n_gates=0, style="mesh")

    def test_chain_needs_rails_and_depth(self):
        with pytest.raises(ValueError):
            SynthProfile(name="x", seed=1, n_inputs=4, style="chain", rails=1)
        with pytest.raises(ValueError):
            SynthProfile(name="x", seed=1, n_inputs=4, style="chain", depth=1)

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            SynthProfile(name="x", seed=1, n_inputs=4, n_gates=5, style="weird")

    def test_window_positive(self):
        with pytest.raises(ValueError):
            SynthProfile(name="x", seed=1, n_inputs=4, n_gates=5, window=0.0)


class TestDeterminism:
    @pytest.mark.parametrize("style", ["mesh", "chain"])
    def test_same_profile_same_circuit(self, style):
        kwargs = dict(name="d", seed=123, n_inputs=8, n_gates=40, style=style)
        first = generate(SynthProfile(**kwargs))
        second = generate(SynthProfile(**kwargs))
        assert len(first) == len(second)
        for a, b in zip(first.nodes, second.nodes):
            assert a.name == b.name
            assert a.gate_type is b.gate_type
            assert a.fanin == b.fanin
        assert first.output_names == second.output_names

    def test_different_seed_different_circuit(self):
        base = dict(name="d", n_inputs=8, n_gates=40)
        first = generate(SynthProfile(seed=1, **base))
        second = generate(SynthProfile(seed=2, **base))
        fingerprint = lambda nl: [(n.name, n.gate_type, n.fanin) for n in nl.nodes]
        assert fingerprint(first) != fingerprint(second)


class TestMeshStructure:
    def test_structurally_valid(self, tiny_mesh):
        assert_valid(tiny_mesh)

    def test_all_inputs_used(self, tiny_mesh):
        for pi in tiny_mesh.input_indices:
            assert tiny_mesh.fanout(pi), tiny_mesh.node_at(pi).name

    def test_output_consolidation(self):
        netlist = generate(
            SynthProfile(name="m", seed=3, n_inputs=10, n_gates=60, n_outputs=4)
        )
        assert len(netlist.output_names) <= 4


class TestChainStructure:
    def test_structurally_valid(self, tiny_chain):
        assert_valid(tiny_chain)

    def test_pdf_ready(self, tiny_chain):
        assert tiny_chain.is_pdf_ready()

    def test_depth_scales_with_stages(self):
        shallow = generate(
            SynthProfile(name="c", seed=5, n_inputs=8, style="chain", rails=4, depth=6)
        )
        deep = generate(
            SynthProfile(name="c", seed=5, n_inputs=8, style="chain", rails=4, depth=18)
        )
        assert analyze(deep).depth > analyze(shallow).depth

    def test_q2_multiplies_paths(self):
        base = dict(name="c", seed=9, n_inputs=10, style="chain", rails=5, depth=12)
        no_merge = generate(SynthProfile(q2=0.0, **base))
        merged = generate(SynthProfile(q2=0.45, **base))
        assert count_paths(merged) > count_paths(no_merge)

    def test_guard_pins_created_with_merges(self):
        netlist = generate(
            SynthProfile(
                name="c", seed=9, n_inputs=10, style="chain", rails=5, depth=12, q2=0.4
            )
        )
        assert any(name.startswith("E") for name in netlist.input_names)


class TestLibraryProfiles:
    def test_all_registry_circuits_valid(self):
        from repro.circuit import available_circuits, load_circuit

        for name in available_circuits():
            netlist = load_circuit(name)
            assert netlist.frozen
            assert_valid(netlist)

    def test_proxies_are_deterministic(self):
        from repro.circuit import load_circuit

        a = load_circuit("s641_proxy")
        b = load_circuit("s641_proxy")
        assert [n.name for n in a.nodes] == [n.name for n in b.nodes]
