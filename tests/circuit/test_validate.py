"""Tests for structural validation."""

import pytest

from repro.circuit import (
    GateType,
    Netlist,
    ValidationError,
    assert_valid,
    build_netlist,
    validate,
)


def codes(issues):
    return {issue.code for issue in issues}


class TestValidate:
    def test_clean_circuit(self, s27):
        assert validate(s27) == []

    def test_duplicate_fanin_warning(self):
        netlist = build_netlist(
            "dup",
            inputs=["a"],
            gates=[("g", GateType.AND, ["a", "a"])],
            outputs=["g"],
        )
        issues = validate(netlist)
        assert "duplicate-fanin" in codes(issues)
        assert all(issue.severity == "warning" for issue in issues)

    def test_unreachable_gate_is_error(self):
        netlist = build_netlist(
            "dead",
            inputs=["a"],
            gates=[
                ("live", GateType.NOT, ["a"]),
                ("dead", GateType.NOT, ["a"]),
            ],
            outputs=["live"],
        )
        issues = validate(netlist)
        dead = [i for i in issues if i.code == "unreachable-output"]
        assert dead and dead[0].severity == "error"
        assert dead[0].node == "dead"

    def test_floating_input_warning(self):
        netlist = build_netlist(
            "float",
            inputs=["a", "unused"],
            gates=[("g", GateType.NOT, ["a"])],
            outputs=["g"],
        )
        issues = validate(netlist)
        floating = [i for i in issues if i.code == "floating-input"]
        assert floating and floating[0].node == "unused"
        # also reported as unreachable (warning severity for inputs)
        assert all(i.severity == "warning" for i in issues)

    def test_xor_warning(self):
        netlist = build_netlist(
            "x",
            inputs=["a", "b"],
            gates=[("g", GateType.XOR, ["a", "b"])],
            outputs=["g"],
        )
        assert "xor-gate" in codes(validate(netlist))


class TestAssertValid:
    def test_passes_clean(self, c17):
        assert_valid(c17)

    def test_raises_on_error(self):
        netlist = build_netlist(
            "dead",
            inputs=["a"],
            gates=[
                ("live", GateType.NOT, ["a"]),
                ("dead", GateType.NOT, ["a"]),
            ],
            outputs=["live"],
        )
        with pytest.raises(ValidationError) as err:
            assert_valid(netlist)
        assert err.value.issues

    def test_strict_mode_rejects_warnings(self):
        netlist = build_netlist(
            "dup",
            inputs=["a"],
            gates=[("g", GateType.AND, ["a", "a"])],
            outputs=["g"],
        )
        assert_valid(netlist)  # warnings tolerated by default
        with pytest.raises(ValidationError):
            assert_valid(netlist, allow_warnings=False)
