"""Tests for the .bench parser/writer and combinational extraction."""

import pytest

from repro.circuit import (
    BenchParseError,
    GateType,
    parse_bench,
    write_bench,
)
from repro.circuit.library import load_bench_resource


class TestParse:
    def test_simple_combinational(self):
        netlist, info = parse_bench(
            """
            INPUT(a)
            INPUT(b)
            OUTPUT(y)
            y = NAND(a, b)
            """
        )
        assert netlist.input_names == ("a", "b")
        assert netlist.output_names == ("y",)
        assert netlist.node("y").gate_type is GateType.NAND
        assert info.num_dffs == 0

    def test_comments_and_blank_lines(self):
        netlist, _ = parse_bench(
            """
            # a comment
            INPUT(a)   # trailing comment

            OUTPUT(y)
            y = NOT(a)
            """
        )
        assert len(netlist) == 2

    def test_gate_aliases(self):
        netlist, _ = parse_bench(
            """
            INPUT(a)
            OUTPUT(y)
            n = INV(a)
            y = BUFF(n)
            """
        )
        assert netlist.node("n").gate_type is GateType.NOT
        assert netlist.node("y").gate_type is GateType.BUF

    def test_case_insensitive_keywords(self):
        netlist, _ = parse_bench("input(a)\noutput(y)\ny = not(a)\n")
        assert netlist.input_names == ("a",)

    def test_dff_extraction(self):
        netlist, info = parse_bench(
            """
            INPUT(a)
            OUTPUT(y)
            q = DFF(d)
            d = AND(a, q)
            y = NOT(q)
            """
        )
        # q becomes a pseudo input; d becomes a pseudo output.
        assert "q" in netlist.input_names
        assert "d" in netlist.output_names
        assert info.pseudo_inputs == ["q"]
        assert info.pseudo_outputs == ["d"]
        assert info.dff_map == {"q": "d"}

    def test_s27_shape(self):
        netlist, info = load_bench_resource("s27")
        # 4 real + 3 pseudo inputs; 1 real + 3 pseudo outputs.
        assert len(netlist.input_names) == 7
        assert len(netlist.output_names) == 4
        assert info.num_dffs == 3
        assert netlist.num_gates == 10

    def test_c17_shape(self):
        netlist, info = load_bench_resource("c17")
        assert len(netlist.input_names) == 5
        assert len(netlist.output_names) == 2
        assert netlist.num_gates == 6
        assert all(
            node.gate_type is GateType.NAND
            for node in netlist.nodes
            if not node.is_input
        )

    def test_const_cells(self):
        netlist, _ = parse_bench(
            """
            INPUT(a)
            OUTPUT(y)
            one = VDD()
            y = AND(a, one)
            """
        )
        assert netlist.node("one").gate_type is GateType.CONST1


class TestParseErrors:
    def test_unknown_gate(self):
        with pytest.raises(BenchParseError, match="unknown gate"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchParseError, match="line 2"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_dff_arity(self):
        with pytest.raises(BenchParseError, match="DFF"):
            parse_bench("INPUT(a)\nOUTPUT(y)\nq = DFF(a, a)\ny = NOT(q)\n")

    def test_structural_error_wrapped(self):
        with pytest.raises(BenchParseError, match="invalid circuit structure"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n")

    def test_empty_gate_args(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND()\n")


class TestWriter:
    def test_roundtrip_combinational(self, s27):
        text = write_bench(s27)
        reparsed, info = parse_bench(text, name="s27rt")
        assert info.num_dffs == 0
        assert reparsed.input_names == s27.input_names
        assert reparsed.output_names == s27.output_names
        assert len(reparsed) == len(s27)
        for node in s27.nodes:
            other = reparsed.node(node.name)
            assert other.gate_type is node.gate_type
            assert other.fanin == node.fanin

    def test_writer_includes_name_comment(self, c17):
        assert write_bench(c17).startswith("# c17")
