"""Property/fuzz tests: the ``.bench`` parser must fail closed.

Whatever malformed input arrives -- truncated lines, duplicate outputs,
undeclared nets, combinational cycles, raw byte soup -- ``parse_bench``
either returns a frozen netlist or raises :class:`BenchParseError` /
:class:`NetlistError`.  It must never leak an internal ``KeyError`` or
``RecursionError``, and never hang (the parser is a single linear pass
and ``freeze`` is an iterative Kahn sort; the strategies below keep
inputs small so any accidental super-linear behaviour would show up as a
hypothesis deadline failure).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import BenchParseError, NetlistError, parse_bench

# Small closed name universe: collisions (duplicate nodes, dangling
# references, cycles) become likely instead of vanishingly rare.
NAMES = ("a", "b", "c", "d", "q", "y", "n1", "n2")
OPS = ("AND", "NAND", "OR", "NOR", "NOT", "BUFF", "XOR", "DFF", "FOO", "")

names = st.sampled_from(NAMES)
ops = st.sampled_from(OPS)
arg_lists = st.lists(names, min_size=0, max_size=4).map(", ".join)


@st.composite
def netlist_lines(draw) -> str:
    """One plausible-to-broken ``.bench`` line."""
    kind = draw(st.integers(min_value=0, max_value=6))
    name = draw(names)
    if kind == 0:
        return f"INPUT({name})"
    if kind == 1:
        return f"OUTPUT({name})"
    if kind == 2:
        return f"{name} = {draw(ops)}({draw(arg_lists)})"
    if kind == 3:  # truncated assignment
        return f"{name} = {draw(ops)}({draw(arg_lists)}"
    if kind == 4:  # truncated declaration
        return draw(st.sampled_from(("INPUT(", "OUTPUT(", f"{name} =")))
    if kind == 5:
        return f"# {name} comment"
    return draw(st.text(min_size=0, max_size=20))


def assert_fail_closed(text: str) -> None:
    """The fuzz property: parse cleanly or raise the documented errors."""
    try:
        netlist, _ = parse_bench(text)
    except (BenchParseError, NetlistError):
        return
    assert netlist.frozen


@settings(max_examples=300, deadline=None)
@given(st.lists(netlist_lines(), min_size=0, max_size=12).map("\n".join))
def test_line_soup_never_leaks_internal_errors(text):
    assert_fail_closed(text)


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=200))
def test_arbitrary_text_never_leaks_internal_errors(text):
    assert_fail_closed(text)


VALID = """\
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
d = AND(a, q)
n1 = NAND(a, b)
y = OR(n1, d)
"""


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=0, max_value=len(VALID) - 1),
    st.integers(min_value=0, max_value=len(VALID)),
    st.sampled_from(("", "(", ")", ",", "=", "OUTPUT(y)", "q = DFF(d)", "\x00")),
)
def test_mutated_valid_circuit_never_leaks_internal_errors(cut, pos, insert):
    # Truncate at a random point, then splice random fragments back in.
    mutated = VALID[:cut]
    mutated = mutated[:pos] + insert + mutated[pos:]
    assert_fail_closed(mutated)


class TestKnownMalformations:
    """Deterministic anchors for each malformation family the fuzzers cover."""

    def test_duplicate_explicit_output_raises_with_line_number(self):
        with pytest.raises(BenchParseError) as exc_info:
            parse_bench("INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n")
        assert exc_info.value.line_no == 3

    def test_undeclared_net_raises(self):
        with pytest.raises((BenchParseError, NetlistError)):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_cycle_raises(self):
        with pytest.raises((BenchParseError, NetlistError)):
            parse_bench(
                "INPUT(a)\nOUTPUT(y)\nn1 = AND(a, n2)\nn2 = AND(a, n1)\n"
                "y = NOT(n1)\n"
            )

    def test_self_loop_raises(self):
        with pytest.raises((BenchParseError, NetlistError)):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(y, a)\n")

    def test_duplicate_node_raises(self):
        with pytest.raises((BenchParseError, NetlistError)):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n")

    def test_dff_target_clashing_with_input_raises(self):
        with pytest.raises((BenchParseError, NetlistError)):
            parse_bench("INPUT(q)\nOUTPUT(y)\nq = DFF(d)\nd = NOT(q)\ny = BUFF(d)\n")

    def test_truncated_assignment_raises(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a\n")

    def test_missing_outputs_raises(self):
        with pytest.raises((BenchParseError, NetlistError)):
            parse_bench("INPUT(a)\ny = NOT(a)\n")
