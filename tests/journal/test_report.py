"""Trend-table rendering."""

from repro.journal import format_value, render_report, report_rows

from .test_schema import minimal_entry


def entry(sha, metrics, kind="bench", ts="2026-08-07T12:00:00+00:00"):
    return minimal_entry(sha=sha, metrics=metrics, kind=kind, ts=ts)


def test_format_value_four_significant_digits():
    assert format_value(0.123456) == "0.1235"
    assert format_value(12.0) == "12"
    assert format_value(123456.0) == "1.235e+05"


def test_rows_align_metrics_across_entries():
    entries = [
        entry("a" * 40, {"old": 1.0, "shared": 2.0}),
        entry("b" * 40, {"new": 3.0, "shared": 2.5}),
    ]
    headers, rows = report_rows(entries)
    assert headers == ["metric", "aaaaaaa", "bbbbbbb"]
    # Sorted by metric name; "-" marks runs without the metric, so
    # retired and newly added series coexist in one table.
    assert rows == [
        ["new", "-", "3"],
        ["old", "1", "-"],
        ["shared", "2", "2.5"],
    ]


def test_last_limits_columns_to_newest():
    entries = [entry(f"{i:040x}", {"m": float(i)}) for i in range(5)]
    headers, rows = report_rows(entries, last=2)
    assert len(headers) == 3
    assert rows == [["m", "3", "4"]]


def test_unknown_sha_labelled():
    headers, _ = report_rows([entry("unknown", {"m": 1.0})])
    assert headers == ["metric", "unknown"]


def test_render_report_sections_per_kind():
    entries = [
        entry("a" * 40, {"tables_s27": 0.5}, kind="bench"),
        entry("b" * 40, {"s27.values.seconds": 1.0}, kind="tables"),
        entry("c" * 40, {"tables_s27": 0.4}, kind="bench"),
    ]
    text = render_report(entries)
    assert "run journal -- kind bench: 2 entries" in text
    assert "run journal -- kind tables: 1 entry" in text
    assert "2026-08-07" in text  # date row under the sha columns
    bench_section, tables_section = text.split("\n\n")
    assert "aaaaaaa" in bench_section and "ccccccc" in bench_section
    assert "bbbbbbb" in tables_section


def test_render_report_kind_filter_and_empty():
    entries = [entry("a" * 40, {"m": 1.0}, kind="bench")]
    assert "kind bench" in render_report(entries, kinds=["bench"])
    assert render_report(entries, kinds=["tables"]) == "run journal: no entries"
    assert render_report([]) == "run journal: no entries"


def test_render_report_notes_truncation():
    entries = [entry(f"{i:040x}", {"m": float(i)}) for i in range(4)]
    text = render_report(entries, last=2)
    assert "(showing last 2)" in text


def test_machine_row_only_when_partitions_mix():
    from repro.journal.gate import machine_label

    one = entry("a" * 40, {"m": 1.0})
    other = entry("b" * 40, {"m": 9.0})
    other["machine"] = {"python": "3.12.1", "platform": "Darwin-test"}
    # Homogeneous window: no machine row (single-host journals read as before).
    assert machine_label(one["machine"]) not in render_report([one])
    # Mixed window: each column is tagged with its partition label.
    text = render_report([one, other])
    assert machine_label(one["machine"]) in text
    assert machine_label(other["machine"]) in text
