"""Trajectory-gate semantics: tolerance boundary, windowing, history."""

from repro.journal import gate_candidate, gate_trajectory

from .test_schema import minimal_entry


def history(values, kind="bench", metric="m"):
    return [
        minimal_entry(kind=kind, sha=f"{i:040x}", metrics={metric: value})
        for i, value in enumerate(values)
    ]


def finding(report, metric="m"):
    [one] = [f for f in report.findings if f.metric == metric]
    return one


class TestToleranceBoundary:
    def test_exactly_at_tolerance_is_ok(self):
        # ratio == 1 + tolerance must NOT regress: the bound is strict.
        report = gate_candidate(history([1.0]), "bench", {"m": 1.25}, tolerance=0.25)
        assert finding(report).verdict == "ok"
        assert report.ok

    def test_just_above_tolerance_regresses(self):
        report = gate_candidate(history([1.0]), "bench", {"m": 1.2501}, tolerance=0.25)
        one = finding(report)
        assert one.verdict == "regression"
        assert one.baseline == 1.0
        assert not report.ok

    def test_twice_as_slow_always_regresses_at_default_tolerance(self):
        """The CI acceptance scenario: a synthetic 2x slowdown is caught."""
        report = gate_candidate(history([0.5, 0.4, 0.6]), "bench", {"m": 1.0})
        assert finding(report).verdict == "regression"

    def test_improvement_is_ok(self):
        report = gate_candidate(history([1.0]), "bench", {"m": 0.2})
        assert finding(report).verdict == "ok"


class TestWindowAndHistory:
    def test_no_history_is_skipped_not_failed(self):
        report = gate_candidate([], "bench", {"m": 99.0})
        one = finding(report)
        assert one.verdict == "skipped"
        assert one.history == 0
        assert report.ok
        assert report.gated == 0

    def test_min_history_raises_the_bar(self):
        report = gate_candidate(history([1.0]), "bench", {"m": 9.0}, min_history=2)
        assert finding(report).verdict == "skipped"

    def test_baseline_is_median_of_window(self):
        report = gate_candidate(
            history([10.0, 1.0, 2.0, 3.0]), "bench", {"m": 3.0}, window=3
        )
        one = finding(report)
        # Window keeps the last 3 values (1, 2, 3); the old 10.0 outlier
        # is outside it, so the median is 2 and 3.0/2.0 = 1.5 regresses.
        assert one.baseline == 2.0
        assert one.ratio == 1.5
        assert one.verdict == "regression"

    def test_median_resists_one_outlier_inside_window(self):
        report = gate_candidate(history([1.0, 1.0, 100.0]), "bench", {"m": 1.1})
        assert finding(report).baseline == 1.0
        assert finding(report).verdict == "ok"

    def test_series_are_per_metric_and_per_kind(self):
        entries = history([1.0], kind="tables") + history([5.0], kind="bench")
        report = gate_candidate(entries, "bench", {"m": 5.5})
        one = finding(report)
        # The tables entry must not dilute the bench series.
        assert one.history == 1
        assert one.baseline == 5.0

    def test_missing_metric_in_history_entries_is_not_history(self):
        entries = history([1.0]) + [
            minimal_entry(kind="bench", metrics={"other": 2.0})
        ]
        report = gate_candidate(entries, "bench", {"m": 1.0})
        assert finding(report).history == 1


class TestZeroBaseline:
    def test_zero_history_zero_candidate_is_ok(self):
        report = gate_candidate(history([0.0]), "bench", {"m": 0.0})
        assert finding(report).verdict == "ok"

    def test_zero_history_positive_candidate_regresses(self):
        report = gate_candidate(history([0.0]), "bench", {"m": 0.001})
        one = finding(report)
        assert one.ratio == float("inf")
        assert one.verdict == "regression"


class TestTrajectory:
    def test_latest_mode_gates_only_newest_entry(self):
        entries = history([1.0, 1.1, 5.0])
        report = gate_trajectory(entries[:2] + [entries[2]])
        assert len(report.findings) == 1
        assert finding(report).verdict == "regression"
        assert finding(report).sha == entries[2]["sha"]

    def test_single_entry_journal_is_all_skipped(self):
        report = gate_trajectory(history([1.0]))
        assert [f.verdict for f in report.findings] == ["skipped"]
        assert report.ok

    def test_gate_all_finds_mid_history_regression(self):
        # The regression sits at position 2; entries after it recover, so
        # latest-mode would miss it but --all replays every position.
        entries = history([1.0, 1.05, 5.0, 1.0, 1.0])
        latest = gate_trajectory(entries)
        assert latest.ok
        replay = gate_trajectory(entries, gate_all=True)
        assert not replay.ok
        [bad] = replay.regressions
        assert bad.sha == entries[2]["sha"]
        assert len(replay.findings) == len(entries) - 1

    def test_kinds_filter(self):
        entries = history([1.0, 9.0], kind="bench") + history(
            [1.0, 1.0], kind="tables"
        )
        assert not gate_trajectory(entries).ok
        assert gate_trajectory(entries, kinds=["tables"]).ok

    def test_each_entry_judged_only_against_its_past(self):
        # A fast future entry must not retroactively excuse a slow past one.
        entries = history([1.0, 5.0, 0.1])
        replay = gate_trajectory(entries, gate_all=True)
        verdicts = [f.verdict for f in replay.findings]
        assert verdicts == ["regression", "ok"]


class TestReportFormatting:
    def test_format_summarizes_counts(self):
        report = gate_trajectory(history([1.0, 1.0, 9.0]), gate_all=True)
        text = report.format()
        assert "2 metric(s) gated" in text
        assert "1 regression(s)" in text
        assert "REGRESSION" in text

    def test_describe_mentions_sha_and_ratio(self):
        report = gate_trajectory(history([1.0, 2.0]))
        text = finding(report).describe()
        assert "@ 0000000" in text
        assert "(2.00x)" in text
