"""Trajectory-gate semantics: tolerance, windowing, machine partitions."""

from repro.journal import gate_candidate, gate_trajectory
from repro.journal.gate import machine_key, machine_label
from repro.journal.schema import machine_fingerprint

from .test_schema import minimal_entry

#: The fingerprint ``minimal_entry`` stamps on synthetic history.  The
#: gate partitions by machine, so candidate metrics must be presented as
#: coming from this machine to be judged against that history.
TEST_MACHINE = {"python": "3.11.7", "platform": "Linux-test"}

#: A second, distinct host for the partition tests.
OTHER_MACHINE = {"python": "3.12.1", "platform": "Darwin-test", "cpus": 8}


def gate(entries, kind, metrics, **kwargs):
    kwargs.setdefault("machine", TEST_MACHINE)
    return gate_candidate(entries, kind, metrics, **kwargs)


def history(values, kind="bench", metric="m", machine=None, start=0):
    return [
        minimal_entry(
            kind=kind,
            sha=f"{start + i:040x}",
            metrics={metric: value},
            **({} if machine is None else {"machine": machine}),
        )
        for i, value in enumerate(values)
    ]


def finding(report, metric="m"):
    [one] = [f for f in report.findings if f.metric == metric]
    return one


class TestToleranceBoundary:
    def test_exactly_at_tolerance_is_ok(self):
        # ratio == 1 + tolerance must NOT regress: the bound is strict.
        report = gate(history([1.0]), "bench", {"m": 1.25}, tolerance=0.25)
        assert finding(report).verdict == "ok"
        assert report.ok

    def test_just_above_tolerance_regresses(self):
        report = gate(history([1.0]), "bench", {"m": 1.2501}, tolerance=0.25)
        one = finding(report)
        assert one.verdict == "regression"
        assert one.baseline == 1.0
        assert not report.ok

    def test_twice_as_slow_always_regresses_at_default_tolerance(self):
        """The CI acceptance scenario: a synthetic 2x slowdown is caught."""
        report = gate(history([0.5, 0.4, 0.6]), "bench", {"m": 1.0})
        assert finding(report).verdict == "regression"

    def test_improvement_is_ok(self):
        report = gate(history([1.0]), "bench", {"m": 0.2})
        assert finding(report).verdict == "ok"


class TestWindowAndHistory:
    def test_no_history_is_skipped_not_failed(self):
        report = gate([], "bench", {"m": 99.0})
        one = finding(report)
        assert one.verdict == "skipped"
        assert one.history == 0
        assert report.ok
        assert report.gated == 0

    def test_min_history_raises_the_bar(self):
        report = gate(history([1.0]), "bench", {"m": 9.0}, min_history=2)
        assert finding(report).verdict == "skipped"

    def test_baseline_is_median_of_window(self):
        report = gate(
            history([10.0, 1.0, 2.0, 3.0]), "bench", {"m": 3.0}, window=3
        )
        one = finding(report)
        # Window keeps the last 3 values (1, 2, 3); the old 10.0 outlier
        # is outside it, so the median is 2 and 3.0/2.0 = 1.5 regresses.
        assert one.baseline == 2.0
        assert one.ratio == 1.5
        assert one.verdict == "regression"

    def test_median_resists_one_outlier_inside_window(self):
        report = gate(history([1.0, 1.0, 100.0]), "bench", {"m": 1.1})
        assert finding(report).baseline == 1.0
        assert finding(report).verdict == "ok"

    def test_series_are_per_metric_and_per_kind(self):
        entries = history([1.0], kind="tables") + history([5.0], kind="bench")
        report = gate(entries, "bench", {"m": 5.5})
        one = finding(report)
        # The tables entry must not dilute the bench series.
        assert one.history == 1
        assert one.baseline == 5.0

    def test_missing_metric_in_history_entries_is_not_history(self):
        entries = history([1.0]) + [
            minimal_entry(kind="bench", metrics={"other": 2.0})
        ]
        report = gate(entries, "bench", {"m": 1.0})
        assert finding(report).history == 1


class TestZeroBaseline:
    def test_zero_history_zero_candidate_is_ok(self):
        report = gate(history([0.0]), "bench", {"m": 0.0})
        assert finding(report).verdict == "ok"

    def test_zero_history_positive_candidate_regresses(self):
        report = gate(history([0.0]), "bench", {"m": 0.001})
        one = finding(report)
        assert one.ratio == float("inf")
        assert one.verdict == "regression"


class TestTrajectory:
    def test_latest_mode_gates_only_newest_entry(self):
        entries = history([1.0, 1.1, 5.0])
        report = gate_trajectory(entries[:2] + [entries[2]])
        assert len(report.findings) == 1
        assert finding(report).verdict == "regression"
        assert finding(report).sha == entries[2]["sha"]

    def test_single_entry_journal_is_all_skipped(self):
        report = gate_trajectory(history([1.0]))
        assert [f.verdict for f in report.findings] == ["skipped"]
        assert report.ok

    def test_gate_all_finds_mid_history_regression(self):
        # The regression sits at position 2; entries after it recover, so
        # latest-mode would miss it but --all replays every position.
        entries = history([1.0, 1.05, 5.0, 1.0, 1.0])
        latest = gate_trajectory(entries)
        assert latest.ok
        replay = gate_trajectory(entries, gate_all=True)
        assert not replay.ok
        [bad] = replay.regressions
        assert bad.sha == entries[2]["sha"]
        assert len(replay.findings) == len(entries) - 1

    def test_kinds_filter(self):
        entries = history([1.0, 9.0], kind="bench") + history(
            [1.0, 1.0], kind="tables"
        )
        assert not gate_trajectory(entries).ok
        assert gate_trajectory(entries, kinds=["tables"]).ok

    def test_each_entry_judged_only_against_its_past(self):
        # A fast future entry must not retroactively excuse a slow past one.
        entries = history([1.0, 5.0, 0.1])
        replay = gate_trajectory(entries, gate_all=True)
        verdicts = [f.verdict for f in replay.findings]
        assert verdicts == ["regression", "ok"]


class TestReportFormatting:
    def test_format_summarizes_counts(self):
        report = gate_trajectory(history([1.0, 1.0, 9.0]), gate_all=True)
        text = report.format()
        assert "2 metric(s) gated" in text
        assert "1 regression(s)" in text
        assert "REGRESSION" in text

    def test_describe_mentions_sha_and_ratio(self):
        report = gate_trajectory(history([1.0, 2.0]))
        text = finding(report).describe()
        assert "@ 0000000" in text
        assert "(2.00x)" in text

    def test_describe_mentions_machine_partition(self):
        report = gate(history([1.0]), "bench", {"m": 1.0})
        assert f"[{machine_label(TEST_MACHINE)}]" in finding(report).describe()


class TestMachinePartition:
    """The two-machine scenario the gate exists to get right."""

    def two_machine_history(self):
        # Fast CI runner (TEST_MACHINE) around 1.0s, slow laptop
        # (OTHER_MACHINE) around 10.0s.
        return history([1.0, 1.1, 0.9]) + history(
            [10.0, 10.5, 9.8], machine=OTHER_MACHINE, start=3
        )

    def test_candidate_judged_only_against_its_own_machine(self):
        entries = self.two_machine_history()
        # 1.05s on the fast runner is fine even though the mixed median
        # would make it look like a huge improvement ...
        fast = gate(entries, "bench", {"m": 1.05})
        assert finding(fast).verdict == "ok"
        assert finding(fast).baseline == 1.0
        assert finding(fast).history == 3
        # ... and 2.0s on the fast runner regresses even though it beats
        # every laptop measurement.
        assert finding(gate(entries, "bench", {"m": 2.0})).verdict == "regression"

    def test_slow_machine_not_failed_by_fast_history(self):
        entries = self.two_machine_history()
        slow = gate(entries, "bench", {"m": 10.2}, machine=OTHER_MACHINE)
        one = finding(slow)
        assert one.verdict == "ok"
        assert one.baseline == 10.0
        assert one.machine == machine_label(OTHER_MACHINE)

    def test_unseen_machine_falls_back_to_skipped(self):
        entries = self.two_machine_history()
        report = gate(
            entries,
            "bench",
            {"m": 50.0},
            machine={"python": "3.13.0", "platform": "Windows-test"},
        )
        one = finding(report)
        assert one.verdict == "skipped"
        assert one.history == 0
        assert report.ok

    def test_default_machine_is_current_fingerprint(self):
        # Without an explicit machine the gate compares against entries
        # recorded on *this* host -- which the synthetic history is not.
        entries = history([1.0])
        assert finding(gate_candidate(entries, "bench", {"m": 9.0})).verdict == (
            "skipped"
        )
        mine = history([1.0], machine=machine_fingerprint())
        assert (
            finding(gate_candidate(mine, "bench", {"m": 9.0})).verdict
            == "regression"
        )

    def test_extra_machine_keys_do_not_split_the_partition(self):
        decorated = {**TEST_MACHINE, "hostname": "runner-17"}
        assert machine_key(decorated) == machine_key(TEST_MACHINE)
        entries = history([1.0], machine=decorated)
        assert finding(gate(entries, "bench", {"m": 1.0})).history == 1

    def test_trajectory_partitions_interleaved_machines(self):
        # Interleave the two hosts; replaying the whole journal must
        # judge each entry against its own machine's series only, so a
        # laptop entry after a runner entry is skipped (no history), not
        # flagged as a 10x regression.
        entries = [
            history([1.0])[0],
            history([10.0], machine=OTHER_MACHINE, start=1)[0],
            history([1.1], start=2)[0],
            history([10.4], machine=OTHER_MACHINE, start=3)[0],
        ]
        replay = gate_trajectory(entries, gate_all=True)
        assert replay.ok
        verdicts = [(f.machine, f.verdict, f.history) for f in replay.findings]
        assert verdicts == [
            (machine_label(OTHER_MACHINE), "skipped", 0),
            (machine_label(TEST_MACHINE), "ok", 1),
            (machine_label(OTHER_MACHINE), "ok", 1),
        ]

    def test_malformed_machine_is_its_own_partition(self):
        entries = history([1.0]) + [
            minimal_entry(kind="bench", sha="b" * 40, metrics={"m": 3.0})
        ]
        entries[-1]["machine"] = None
        report = gate_trajectory(entries)
        assert finding(report).verdict == "skipped"
