"""Schema, entry builders, and write -> read -> report round-trips."""

import json

import pytest

from repro.engine import EngineStats
from repro.experiments.results import (
    CircuitBasicResult,
    ExperimentResults,
    HeuristicOutcome,
    Table1Result,
    Table2Result,
    Table6Row,
)
from repro.journal import (
    SCHEMA_VERSION,
    SERVICE_EVENTS,
    JournalSchemaError,
    append_entry,
    encode_entry,
    read_journal,
    report_rows,
    service_entry,
    tables_entry,
    validate_entry,
)

# This repo collects ``bench_*`` functions as pytest-benchmark tests, so
# the builder must not be bound under its own name at module scope.
from repro.journal import bench_entry as make_bench_entry


def minimal_entry(**overrides) -> dict:
    entry = {
        "v": SCHEMA_VERSION,
        "kind": "bench",
        "ts": "2026-08-07T00:00:00+00:00",
        "sha": "a" * 40,
        "machine": {"python": "3.11.7", "platform": "Linux-test"},
        "metrics": {"tables_s27": 0.25},
    }
    entry.update(overrides)
    return entry


def sample_results() -> ExperimentResults:
    return ExperimentResults(
        scale="smoke",
        table1=Table1Result(
            circuit="s27",
            cap_paths=20,
            kept_paths=[("a", "b")],
            kept_lengths=[2],
            pruned_complete=1,
            min_length=2,
            max_length=2,
        ),
        table2=Table2Result(circuit="s1423_proxy", rows=[(0, 5, 4)]),
        basic={
            "s27": CircuitBasicResult(
                circuit="s27",
                i0=2,
                p0_total=10,
                p01_total=20,
                outcomes={
                    "values": HeuristicOutcome(
                        detected_p0=8,
                        tests=5,
                        detected_p01=12,
                        runtime_seconds=1.25,
                    ),
                    "uncomp": HeuristicOutcome(
                        detected_p0=7,
                        tests=9,
                        detected_p01=11,
                        runtime_seconds=2.5,
                        aborted=1,
                    ),
                },
            )
        },
        table6=[
            Table6Row(
                circuit="s27",
                i0=2,
                p0_total=10,
                p0_detected=9,
                p01_total=20,
                p01_detected=15,
                tests=6,
                runtime_seconds=3.75,
                aborted=2,
            )
        ],
    )


class TestValidateEntry:
    def test_minimal_entry_is_valid(self):
        assert validate_entry(minimal_entry()) == []

    def test_non_dict_rejected(self):
        assert validate_entry([1, 2]) != []

    @pytest.mark.parametrize("key", ["v", "kind", "ts", "sha", "machine", "metrics"])
    def test_each_required_key(self, key):
        entry = minimal_entry()
        del entry[key]
        assert validate_entry(entry) != []

    def test_unknown_kind_rejected(self):
        assert validate_entry(minimal_entry(kind="vibes")) != []

    def test_future_schema_version_rejected(self):
        assert validate_entry(minimal_entry(v=SCHEMA_VERSION + 1)) != []

    def test_non_numeric_metric_rejected(self):
        assert validate_entry(minimal_entry(metrics={"a": "fast"})) != []
        assert validate_entry(minimal_entry(metrics={"a": True})) != []

    def test_machine_needs_python_and_platform(self):
        assert validate_entry(minimal_entry(machine={"python": "3.11"})) != []

    def test_encode_rejects_invalid(self):
        with pytest.raises(JournalSchemaError):
            encode_entry(minimal_entry(kind="nope"))


class TestBuilders:
    def test_tables_entry_collects_runtime_series(self):
        stats = EngineStats()
        stats.hit("cone")
        stats.miss("cone")
        stats.count("budget.aborted", 3)
        stats.count("parallel.jobs", 2)
        stats.add_time("generate", 1.5)
        stats.max_time("shard.wall", 0.75)
        entry = tables_entry(
            sample_results(),
            stats,
            wall_seconds=9.5,
            config={"jobs": 2},
            jobs=[{"key": "s27", "kind": "circuit", "wall_seconds": 4.0}],
            sha="b" * 40,
            ts="2026-08-07T00:00:00+00:00",
        )
        assert validate_entry(entry) == []
        assert entry["kind"] == "tables"
        assert entry["metrics"]["tables.wall_seconds"] == 9.5
        assert entry["metrics"]["s27.values.seconds"] == 1.25
        assert entry["metrics"]["s27.uncomp.seconds"] == 2.5
        assert entry["metrics"]["s27.enrich.seconds"] == 3.75
        assert entry["counters"]["aborted.basic"] == 1
        assert entry["counters"]["aborted.enrich"] == 2
        assert entry["counters"]["budget.aborted"] == 3
        assert entry["counters"]["parallel.jobs"] == 2
        assert entry["caches"]["cone"] == {"hit": 1, "miss": 1, "rate": 0.5}
        assert entry["phases"]["generate"] == 1.5
        assert entry["phases"]["max.shard.wall"] == 0.75
        assert entry["jobs"][0]["key"] == "s27"
        assert entry["config"]["scale"] == "smoke"
        assert entry["config"]["jobs"] == 2

    def test_tables_entry_leaves_inputs_untouched(self):
        """Journaling must never perturb the experiment output."""
        results = sample_results()
        stats = EngineStats()
        before = results.canonical_json()
        counters_before = dict(stats.counters)
        tables_entry(results, stats, wall_seconds=1.0, sha="c" * 40)
        assert results.canonical_json() == before
        assert dict(stats.counters) == counters_before

    def test_bench_entry_uses_payload_results_and_meta(self):
        payload = {
            "meta": {"python": "3.9.1", "platform": "Linux-old"},
            "results": {"tables_s27": 0.4, "justify_cone": 0.7},
        }
        entry = make_bench_entry(payload, sha="d" * 40, config={"repeats": 6})
        assert validate_entry(entry) == []
        assert entry["metrics"] == {"tables_s27": 0.4, "justify_cone": 0.7}
        assert entry["machine"]["python"] == "3.9.1"
        assert entry["config"]["repeats"] == 6

    def test_entry_defaults_fill_sha_ts_machine(self):
        entry = make_bench_entry({"results": {"x": 1.0}})
        assert validate_entry(entry) == []
        assert entry["sha"]
        assert entry["ts"]
        assert "cpus" in entry["machine"]

    def test_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_SHA", "cafe" * 10)
        entry = make_bench_entry({"results": {"x": 1.0}})
        assert entry["sha"] == "cafe" * 10

    def test_explicit_sha_still_records_real_dirtiness(self, monkeypatch):
        # Passing a sha pins *which commit* was measured; it must not
        # also claim the tree was clean when it was not.
        monkeypatch.setattr("repro.journal.schema.git_dirty", lambda cwd=None: True)
        entry = make_bench_entry({"results": {"x": 1.0}}, sha="e" * 40)
        assert entry["dirty"] is True

    def test_sha_env_override_on_dirty_tree_is_dirty(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_SHA", "cafe" * 10)
        monkeypatch.setattr("repro.journal.schema.git_dirty", lambda cwd=None: True)
        entry = make_bench_entry({"results": {"x": 1.0}})
        assert entry["sha"] == "cafe" * 10
        assert entry["dirty"] is True

    def test_explicit_dirty_wins_over_probe(self, monkeypatch):
        monkeypatch.setattr("repro.journal.schema.git_dirty", lambda cwd=None: True)
        entry = make_bench_entry({"results": {"x": 1.0}}, sha="e" * 40, dirty=False)
        assert entry["dirty"] is False

    def test_backend_counters_are_journaled(self):
        stats = EngineStats()
        stats.count("backend.packed.runs", 7)
        entry = tables_entry(sample_results(), stats, wall_seconds=1.0, sha="f" * 40)
        assert entry["counters"]["backend.packed.runs"] == 7


class TestServiceEntries:
    """Schema v2: job-lifecycle events from the ``repro serve`` daemon."""

    def test_builder_produces_valid_entry(self):
        entry = service_entry(
            "done",
            "job-1",
            metrics={"service.wall_seconds": 2.5},
            detail={"attempts": 1},
            sha="a" * 40,
            ts="2026-08-07T00:00:00+00:00",
        )
        assert validate_entry(entry) == []
        assert entry["v"] == SCHEMA_VERSION
        assert entry["kind"] == "service"
        assert entry["event"] == "done"
        assert entry["job"] == "job-1"
        assert entry["metrics"] == {"service.wall_seconds": 2.5}
        assert entry["detail"] == {"attempts": 1}

    def test_metrics_default_to_empty(self):
        # Lifecycle chatter must not become trajectory trend points.
        entry = service_entry("leased", "job-1", sha="a" * 40)
        assert entry["metrics"] == {}
        assert validate_entry(entry) == []

    @pytest.mark.parametrize("event", SERVICE_EVENTS)
    def test_every_lifecycle_event_accepted(self, event):
        assert validate_entry(service_entry(event, "job-1", sha="a" * 40)) == []

    def test_builder_rejects_unknown_event(self):
        with pytest.raises(ValueError):
            service_entry("vibing", "job-1")

    def test_validate_rejects_unknown_event(self):
        entry = service_entry("done", "job-1", sha="a" * 40)
        entry["event"] = "vibing"
        assert validate_entry(entry) != []

    def test_validate_requires_job_id(self):
        entry = service_entry("done", "job-1", sha="a" * 40)
        del entry["job"]
        assert validate_entry(entry) != []
        entry["job"] = ""
        assert validate_entry(entry) != []

    def test_non_service_kinds_skip_service_checks(self):
        # A bench entry without event/job stays valid: the new required
        # keys are scoped to kind == "service".
        assert validate_entry(minimal_entry()) == []


class TestMixedVersionJournals:
    """Tolerant reader: a journal written across schema versions keeps
    working -- v1 tables/bench lines stay valid next to v2 service
    lines, and only entries *newer* than the library are rejected."""

    def test_v1_entries_remain_valid(self):
        assert validate_entry(minimal_entry(v=1)) == []

    def test_mixed_journal_reads_clean(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        v1 = minimal_entry(v=1, sha="1" * 40, metrics={"tables_s27": 0.4})
        v2 = minimal_entry(sha="2" * 40, metrics={"tables_s27": 0.3})
        lifecycle = service_entry(
            "done",
            "job-1",
            metrics={"service.wall_seconds": 1.0},
            sha="3" * 40,
            ts="2026-08-07T00:00:00+00:00",
        )
        for entry in (v1, v2, lifecycle):
            append_entry(journal, entry)
        read = read_journal(journal)
        assert read.problems == []
        assert [e.get("v") for e in read.entries] == [1, 2, 2]

    def test_report_spans_versions(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        append_entry(
            journal, minimal_entry(v=1, sha="1" * 40, metrics={"tables_s27": 0.4})
        )
        append_entry(
            journal, minimal_entry(sha="2" * 40, metrics={"tables_s27": 0.2})
        )
        headers, rows = report_rows(read_journal(journal).entries)
        assert headers == ["metric", "1111111", "2222222"]
        assert rows == [["tables_s27", "0.4", "0.2"]]

    def test_future_version_flagged_not_fatal(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        append_entry(journal, minimal_entry())
        with journal.open("a") as handle:
            handle.write(json.dumps(minimal_entry(v=SCHEMA_VERSION + 1)) + "\n")
        read = read_journal(journal)
        assert len(read.entries) == 1  # the good line still parses
        assert read.problems != []


class TestRoundTrip:
    def test_write_read_report(self, tmp_path):
        """The acceptance loop: write -> read -> report rows."""
        journal = tmp_path / "journal.jsonl"
        first = minimal_entry(sha="1" * 40, metrics={"tables_s27": 0.4})
        second = minimal_entry(sha="2" * 40, metrics={"tables_s27": 0.2})
        append_entry(journal, first)
        append_entry(journal, second)
        read = read_journal(journal)
        assert read.problems == []
        assert read.entries == [first, second]
        headers, rows = report_rows(read.entries)
        assert headers == ["metric", "1111111", "2222222"]
        assert rows == [["tables_s27", "0.4", "0.2"]]

    def test_lines_are_canonical_json(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        append_entry(journal, minimal_entry())
        line = journal.read_text().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True,
                                  separators=(",", ":"))

    def test_append_never_rewrites(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        append_entry(journal, minimal_entry(sha="1" * 40))
        before = journal.read_text()
        append_entry(journal, minimal_entry(sha="2" * 40))
        assert journal.read_text().startswith(before)

    def test_append_creates_parent_dirs(self, tmp_path):
        journal = tmp_path / "deep" / "nest" / "journal.jsonl"
        append_entry(journal, minimal_entry())
        assert journal.exists()
