"""Tolerant journal reading: corruption never raises, always localizes."""

from repro.journal import JournalProblem, encode_entry, read_journal

from .test_schema import minimal_entry


def write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    return path


def test_missing_file_is_empty_journal(tmp_path):
    read = read_journal(tmp_path / "absent.jsonl")
    assert read.entries == []
    assert read.problems == []


def test_blank_lines_skipped_silently(tmp_path):
    journal = write_lines(
        tmp_path / "j.jsonl",
        ["", encode_entry(minimal_entry()), "", "   ", ""],
    )
    read = read_journal(journal)
    assert len(read.entries) == 1
    assert read.problems == []


def test_corrupt_line_becomes_problem_with_line_number(tmp_path):
    journal = write_lines(
        tmp_path / "j.jsonl",
        [encode_entry(minimal_entry()), "{not json", encode_entry(minimal_entry())],
    )
    read = read_journal(journal)
    assert len(read.entries) == 2
    assert len(read.problems) == 1
    assert read.problems[0].line == 2
    assert "not valid JSON" in read.problems[0].reason


def test_truncated_final_line_tolerated(tmp_path):
    """The crash-mid-append case the writer's design promises to survive."""
    journal = tmp_path / "j.jsonl"
    good = encode_entry(minimal_entry())
    journal.write_text(good + "\n" + good[: len(good) // 2], encoding="utf-8")
    read = read_journal(journal)
    assert len(read.entries) == 1
    assert len(read.problems) == 1
    assert read.problems[0].line == 2


def test_schema_invalid_line_localized(tmp_path):
    journal = write_lines(
        tmp_path / "j.jsonl",
        [encode_entry(minimal_entry()), '{"v":1,"kind":"vibes"}'],
    )
    read = read_journal(journal)
    assert len(read.entries) == 1
    [problem] = read.problems
    assert problem.line == 2
    assert "kind" in problem.reason
    assert problem.describe().startswith("line 2: ")


def test_non_object_line_rejected(tmp_path):
    journal = write_lines(tmp_path / "j.jsonl", ["[1,2,3]", "42", '"hi"'])
    read = read_journal(journal)
    assert read.entries == []
    assert [p.line for p in read.problems] == [1, 2, 3]


def test_of_kind_and_kinds(tmp_path):
    journal = write_lines(
        tmp_path / "j.jsonl",
        [
            encode_entry(minimal_entry(kind="bench")),
            encode_entry(minimal_entry(kind="tables")),
            encode_entry(minimal_entry(kind="bench", sha="b" * 40)),
        ],
    )
    read = read_journal(journal)
    assert read.kinds == ["bench", "tables"]
    assert [e["sha"] for e in read.of_kind("bench")] == ["a" * 40, "b" * 40]
    assert len(read.of_kind("tables")) == 1


def test_problem_is_frozen_value_object():
    assert JournalProblem(3, "bad") == JournalProblem(3, "bad")
