"""End-to-end integration tests across the whole pipeline."""

import pytest

from repro import basic_atpg_circuit, enrich_circuit, prepare_targets
from repro.api import resolve_circuit
from repro.sim import FaultSimulator


class TestS27EndToEnd:
    def test_full_pipeline(self, s27):
        targets = prepare_targets(s27, max_faults=1000, p0_min_faults=20)
        report = enrich_circuit(s27, targets=targets, seed=3)

        # Every claim re-verified with an independent fault simulator.
        simulator = FaultSimulator(s27, targets.all_records)
        detected, total = simulator.coverage(report.result.test_vectors)
        assert detected == report.p01_detected
        assert total == report.p01_total

        # s27's P0 is fully robustly testable and must be fully detected.
        assert report.p0_detected == report.p0_total

        # Enrichment found P1 faults beyond P0.
        assert report.p01_detected > report.p0_detected

    def test_resolve_by_name_equals_fixture(self, s27):
        named = resolve_circuit("s27")
        assert [n.name for n in named.nodes] == [n.name for n in s27.nodes]


class TestProxyEndToEnd:
    @pytest.fixture(scope="class")
    def targets(self):
        return prepare_targets("b03_proxy", max_faults=160, p0_min_faults=40)

    def test_basic_and_enrich_consistency(self, targets):
        netlist = targets.netlist
        basic = basic_atpg_circuit(
            netlist,
            heuristic="values",
            targets=targets,
            seed=1,
            max_secondary_attempts=6,
        )
        enriched = enrich_circuit(
            netlist, targets=targets, seed=1, max_secondary_attempts=6
        )
        simulator = FaultSimulator(netlist, targets.all_records)

        accidental, _ = simulator.coverage(basic.test_vectors)
        assert enriched.p01_detected >= accidental
        assert enriched.num_tests <= basic.num_tests * 1.4 + 3

        # The enrichment's own bookkeeping agrees with re-simulation.
        redetected, _ = simulator.coverage(enriched.result.test_vectors)
        assert redetected == enriched.p01_detected

    def test_implication_filter_only_drops_undetectable(self, targets):
        """Everything the filter dropped must be un-justifiable: cross-check
        a sample with the complete branch-and-bound engine."""
        from repro.atpg import BranchAndBoundJustifier, RequirementSet
        from repro.faults import build_target_sets

        netlist = targets.netlist
        unfiltered = build_target_sets(netlist, max_faults=160, p0_min_faults=40)
        kept_keys = {record.fault.key() for record in targets.all_records}
        dropped = [
            record
            for record in unfiltered.all_records
            if record.fault.key() not in kept_keys
        ]
        bnb = BranchAndBoundJustifier(netlist)
        for record in dropped[:10]:
            assert not bnb.is_satisfiable(
                RequirementSet(record.sens.requirements), node_limit=200_000
            ), record.fault.format(netlist)


class TestXorCircuitEndToEnd:
    def test_xor_circuit_via_expansion(self):
        from repro.circuit import GateType, build_netlist

        netlist = build_netlist(
            "xored",
            inputs=["a", "b", "c", "d"],
            gates=[
                ("x1", GateType.XOR, ["a", "b"]),
                ("g1", GateType.AND, ["x1", "c"]),
                ("x2", GateType.XNOR, ["g1", "d"]),
            ],
            outputs=["x2"],
        )
        targets = prepare_targets(netlist, max_faults=400, p0_min_faults=4)
        assert len(targets.all_records) > 0
        report = enrich_circuit(netlist, targets=targets, seed=2)
        assert report.num_tests > 0
        assert report.p0_detected > 0
