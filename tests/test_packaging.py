"""Package hygiene: every public name in __all__ must exist and import."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.algebra",
    "repro.circuit",
    "repro.paths",
    "repro.faults",
    "repro.sim",
    "repro.atpg",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.api",
        "repro.cli",
        "repro.circuit.bench",
        "repro.circuit.synth",
        "repro.circuit.transform",
        "repro.circuit.validate",
        "repro.sim.testfile",
        "repro.sim.waveform",
        "repro.atpg.static_compaction",
        "repro.experiments.coverage",
        "repro.experiments.report",
    ],
)
def test_submodules_import(module_name):
    importlib.import_module(module_name)


def test_no_circular_import_fresh():
    """Importing the faults package first (the historical cycle) works."""
    import subprocess
    import sys

    code = "import repro.faults; import repro.paths; print('ok')"
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert "ok" in out.stdout


def test_version_consistency():
    import repro
    from repro._version import __version__

    assert repro.__version__ == __version__
