"""Where do enrichment's extra detections land?

The paper's motivation: a fault on a *next-to-longest* path can cause a
real timing failure (length estimates are inexact), so leaving P1
undetected is a test-quality hole.  This example plots -- as an ASCII
per-length table -- the detection profile of the basic P0-only test set
against the enriched one.  The extra coverage concentrates exactly on the
P1 lengths, right below the P0 boundary.

Run:  python examples/coverage_profile.py [circuit]
"""

import sys

from repro import basic_atpg_circuit, enrich_circuit, prepare_targets
from repro.experiments import coverage_by_length, format_coverage_profile
from repro.sim import FaultSimulator


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s641_proxy"
    targets = prepare_targets(circuit, max_faults=400, p0_min_faults=100)
    netlist = targets.netlist
    print(targets.summary())
    print(f"P0/P1 boundary: paths of length >= {targets.boundary_length} are P0")
    print()

    simulator = FaultSimulator(netlist, targets.all_records)

    basic = basic_atpg_circuit(
        netlist, heuristic="values", targets=targets, seed=1,
        max_secondary_attempts=16,
    )
    basic_detected = simulator.detected_records(basic.test_vectors)

    enriched = enrich_circuit(
        netlist, targets=targets, seed=1, max_secondary_attempts=16
    )
    enriched_detected = simulator.detected_records(enriched.result.test_vectors)

    print(
        format_coverage_profile(
            coverage_by_length(targets.all_records, basic_detected),
            title=f"Basic (P0 only, {basic.num_tests} tests)",
        )
    )
    print()
    print(
        format_coverage_profile(
            coverage_by_length(targets.all_records, enriched_detected),
            title=f"Enriched (P0 + P1, {enriched.num_tests} tests)",
        )
    )
    print()

    boundary = targets.boundary_length
    basic_p1 = sum(1 for r in basic_detected if r.length < boundary)
    enriched_p1 = sum(1 for r in enriched_detected if r.length < boundary)
    print(
        f"P1 faults detected: {basic_p1} accidentally vs "
        f"{enriched_p1} with enrichment "
        f"({enriched.num_tests} vs {basic.num_tests} tests)."
    )


if __name__ == "__main__":
    main()
