"""Exploring path populations (Table 1 / Table 2 machinery).

Walks through the bounded enumeration of Section 3.1 on s27 exactly as the
paper's example does (a cap of 20 paths), then prints the length table of a
larger proxy circuit, showing how the P0/P1 boundary i0 moves with N_P0.

Run:  python examples/path_explorer.py [circuit]
"""

import sys

from repro.circuit import analyze, load_circuit
from repro.experiments import run_table1, format_table1
from repro.faults import build_target_sets
from repro.paths import enumerate_paths, length_table_for_paths


def main() -> None:
    # Part 1: the paper's s27 walk-through.
    print(format_table1(run_table1(max_paths=20)))
    print()

    # Part 2: length table and P0 selection on a bigger circuit.
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s1423_proxy"
    netlist = load_circuit(circuit)
    print("Circuit:", analyze(netlist))
    enumeration = enumerate_paths(netlist, max_faults=600)
    print(
        f"Enumerated {len(enumeration.paths)} longest paths "
        f"(cap hit: {enumeration.cap_hit}, "
        f"pruned {enumeration.pruned_complete} complete / "
        f"{enumeration.pruned_partial} partial)"
    )
    table = length_table_for_paths(enumeration.paths)
    print(table.format())
    print()

    # How the P0/P1 split reacts to N_P0.
    for n_p0 in (50, 150, 300):
        targets = build_target_sets(netlist, max_faults=600, p0_min_faults=n_p0)
        print(
            f"N_P0={n_p0:4d}: i0={targets.i0} "
            f"(boundary length {targets.boundary_length}), "
            f"|P0|={len(targets.p0)}, |P1|={len(targets.p1)}"
        )


if __name__ == "__main__":
    main()
