"""Quickstart: path delay fault test enrichment on the paper's s27 circuit.

Opens a CircuitSession for the ISCAS-89 s27 circuit (Figure 1 of the
paper), enumerates its paths, builds the two target sets P0 (longest
paths) and P1 (next-to-longest paths), runs the enrichment procedure, and
prints the resulting two-pattern tests.  The session caches every derived
artifact -- one enumeration, one compiled simulator -- across all steps,
and its stats object shows the work performed.

Run:  python examples/quickstart.py
"""

from repro import CircuitSession, enrich_circuit
from repro.circuit import analyze

def main() -> None:
    # One session per circuit: every later step reuses its cached
    # simulator, justifier and target sets.
    session = CircuitSession("s27")
    netlist = session.netlist
    print("Circuit:", analyze(netlist))
    print()

    # Step 1: enumerate paths and split into P0 / P1.  s27 only has 28
    # paths, so a small N_P0 keeps P1 non-empty.
    targets = session.target_sets(max_faults=1000, p0_min_faults=20)
    print("Target sets:", targets.summary())
    print()
    print("Length table (paper Table 2 layout):")
    print(targets.length_table.format())
    print()

    # Step 2: the enrichment procedure -- primaries from P0, secondary
    # target faults from P0 first and P1 afterwards, so P1 detection is
    # free in terms of test count.  Passing the session reuses the cached
    # targets (same key) and the compiled simulator.
    report = enrich_circuit(
        netlist, max_faults=1000, p0_min_faults=20, seed=7, session=session
    )
    print("Enrichment:", report.summary())
    print()

    # Step 3: inspect the generated two-pattern tests.
    print(f"{report.num_tests} two-pattern tests (pattern1 -> pattern2):")
    for generated in report.result.tests:
        first, second = generated.test.patterns(netlist)
        print(
            f"  {first} -> {second}   targets {generated.num_targeted:2d},"
            f" detects {generated.num_detected:2d} faults"
        )

    # Every fault the generator claims is detected really is: re-check
    # with the independent fault simulator (also session-cached).
    simulator = session.fault_simulator(targets.all_records)
    detected, total = simulator.coverage(report.result.test_vectors)
    print()
    print(f"Independent fault simulation: {detected}/{total} faults detected")
    assert detected == report.p01_detected

    # The session recorded every cache hit, enumeration and simulation.
    print()
    print(session.stats.format())


if __name__ == "__main__":
    main()
