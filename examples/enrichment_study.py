"""The paper's headline experiment: accidental vs. explicit P1 detection.

Compares, on one circuit:

1. the basic procedure targeting only P0 (value-based compaction), with
   the P1 faults it happens to detect *accidentally* (Table 5), against
2. the enrichment procedure that explicitly offers P1 faults as secondary
   targets (Table 6),

showing that enrichment detects far more of P0 u P1 at essentially the
same number of tests -- the quality of the test set improves for free.

Run:  python examples/enrichment_study.py [circuit]
"""

import sys

from repro import basic_atpg_circuit, enrich_circuit, prepare_targets
from repro.experiments import render_table
from repro.sim import FaultSimulator


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "s641_proxy"
    targets = prepare_targets(circuit, max_faults=400, p0_min_faults=100)
    netlist = targets.netlist
    print(targets.summary())
    print()

    simulator = FaultSimulator(netlist, targets.all_records)
    p1_keys = {record.fault.key() for record in targets.p1}

    # Basic procedure: P1 detection is accidental.
    basic = basic_atpg_circuit(
        netlist, heuristic="values", targets=targets, seed=1,
        max_secondary_attempts=24,
    )
    basic_mask = simulator.detected_mask(basic.test_vectors)
    basic_p01 = int(basic_mask.sum())
    basic_p1 = sum(
        1
        for record, hit in zip(targets.all_records, basic_mask)
        if hit and record.fault.key() in p1_keys
    )

    # Enrichment: P1 faults are explicit (secondary-only) targets.
    enriched = enrich_circuit(
        netlist, targets=targets, seed=1, max_secondary_attempts=24
    )

    print(
        render_table(
            ["procedure", "tests", "P0 det", "P1 det", "P0+P1 det"],
            [
                (
                    "basic (values)",
                    basic.num_tests,
                    basic.detected_by_pool[0],
                    basic_p1,
                    basic_p01,
                ),
                (
                    "enrichment",
                    enriched.num_tests,
                    enriched.p0_detected,
                    enriched.p1_detected,
                    enriched.p01_detected,
                ),
            ],
            title=f"Accidental vs. explicit P1 detection on {netlist.name} "
            f"(|P0|={len(targets.p0)}, |P1|={len(targets.p1)})",
        )
    )
    print()
    if basic_p1 > 0:
        print(
            f"Enrichment detects {enriched.p1_detected} P1 faults vs "
            f"{basic_p1} accidental ({enriched.p1_detected / basic_p1:.1f}x) "
            f"with {enriched.num_tests} vs {basic.num_tests} tests."
        )
    else:
        print(
            f"Enrichment detects {enriched.p1_detected} P1 faults; the basic "
            "procedure detected none accidentally."
        )


if __name__ == "__main__":
    main()
