"""Whole-population coverage estimation by uniform path sampling.

Bounded enumeration only ever sees the N_P longest paths, so "faults
detected out of P0 u P1" says nothing about the millions of other paths.
This example draws paths *uniformly at random* from the full population
(exact uniformity via suffix-path counting) and estimates the test set's
true path-delay-fault coverage with a confidence interval -- the
sampling-based analogue of the non-enumerative estimation the paper cites
as reference [2].

Run:  python examples/population_coverage.py [circuit]
"""

import sys

from repro import basic_atpg_circuit, enrich_circuit, prepare_targets
from repro.circuit import analyze
from repro.experiments import estimate_coverage


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "b03_proxy"
    targets = prepare_targets(circuit, max_faults=400, p0_min_faults=100)
    netlist = targets.netlist
    stats = analyze(netlist)
    print(f"{stats}")
    print(
        f"Enumerated target sets: |P0|={len(targets.p0)}, |P1|={len(targets.p1)} "
        f"out of {2 * stats.num_paths} faults in the whole population"
    )
    print()

    basic = basic_atpg_circuit(
        netlist, heuristic="values", targets=targets, seed=1,
        max_secondary_attempts=16,
    )
    enriched = enrich_circuit(
        netlist, targets=targets, seed=1, max_secondary_attempts=16
    )

    for label, tests in (
        (f"basic  ({basic.num_tests} tests)", basic.test_vectors),
        (f"enrich ({enriched.num_tests} tests)", enriched.result.test_vectors),
    ):
        estimate = estimate_coverage(netlist, tests, samples=300, seed=7)
        print(f"{label}: {estimate}")

    print()
    print(
        "Note how whole-population coverage stays far below the P0 coverage "
        "percentage: most paths are short and were never targeted -- the "
        "motivation for targeting near-critical paths explicitly."
    )


if __name__ == "__main__":
    main()
