"""Using the library on your own circuit.

Shows the full pipeline on a hand-written ``.bench`` netlist:

1. parse a sequential .bench description (flip-flops are extracted into
   pseudo inputs/outputs, as the paper does for ISCAS-89);
2. inspect robust sensitization conditions A(p) for chosen faults;
3. prove a fault robustly untestable with the complete branch-and-bound
   justifier;
4. generate an enriched test set.

Run:  python examples/custom_circuit.py
"""

from repro import enrich_circuit, prepare_targets
from repro.atpg import BranchAndBoundJustifier, RequirementSet
from repro.circuit import analyze, parse_bench
from repro.faults import Path, PathDelayFault, Transition, sensitize

BENCH_TEXT = """
# A small sequential datapath: two pipeline stages with an enable.
INPUT(d0)
INPUT(d1)
INPUT(en)
INPUT(sel)
OUTPUT(out)

q0 = DFF(stage1)
q1 = DFF(stage2)

nsel   = NOT(sel)
gated0 = AND(d0, en)
gated1 = AND(d1, nsel)
stage1 = OR(gated0, gated1)
mix    = NAND(q0, en)
stage2 = AND(mix, d0)
out    = NOR(stage2, q1)
"""


def main() -> None:
    netlist, info = parse_bench(BENCH_TEXT, name="pipeline")
    print("Parsed:", analyze(netlist))
    print(
        f"Extracted {info.num_dffs} flip-flops; pseudo inputs: "
        f"{info.pseudo_inputs}, pseudo outputs: {info.pseudo_outputs}"
    )
    print()

    # Robust sensitization conditions for a specific fault.
    path = Path.from_names(netlist, ["d0", "gated0", "stage1"])
    fault = PathDelayFault(path, Transition.RISE)
    sens = sensitize(netlist, fault)
    assert sens is not None
    print("Example robust conditions:")
    print(" ", sens.format(netlist))
    print()

    # The slow-to-fall fault on (en, gated0, stage1): en falls to the AND's
    # controlling value, so the side input d0 only needs a final 1, but the
    # OR gate downstream demands gated1 steady 0 ...
    fall = PathDelayFault(
        Path.from_names(netlist, ["en", "gated0", "stage1"]), Transition.FALL
    )
    sens_fall = sensitize(netlist, fall)
    print("Second fault:")
    print(" ", sens_fall.format(netlist))

    # Is it robustly testable at all?  Ask the complete justifier.
    bnb = BranchAndBoundJustifier(netlist)
    satisfiable = bnb.is_satisfiable(RequirementSet(sens_fall.requirements))
    print(f"  robustly testable: {satisfiable}")
    print()

    # Full enrichment run on the custom circuit.
    targets = prepare_targets(netlist, max_faults=1000, p0_min_faults=8)
    report = enrich_circuit(netlist, targets=targets, seed=1)
    print(report.summary())
    for generated in report.result.tests:
        first, second = generated.test.patterns(netlist)
        print(f"  {first} -> {second}")


if __name__ == "__main__":
    main()
