"""Compare the compaction heuristics of Section 2 (Tables 3 and 4).

Runs the basic test generation procedure on one proxy circuit with each
of the four heuristics:

* ``uncomp`` -- no dynamic compaction (one primary target per test);
* ``arbit``  -- secondaries in arbitrary (fault list) order;
* ``length`` -- longest-path-first primaries and secondaries;
* ``values`` -- secondaries minimizing the number of new value
  components n_delta (the heuristic the paper selects).

Expected shape (matches the paper): all three compacting heuristics
produce clearly fewer tests than ``uncomp`` while detecting essentially
the same faults.

Run:  python examples/compaction_heuristics.py [circuit] [N_P] [N_P0]
"""

import sys

from repro import basic_atpg_circuit, prepare_targets
from repro.experiments import render_table
from repro.sim import FaultSimulator


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "b03_proxy"
    max_faults = int(sys.argv[2]) if len(sys.argv) > 2 else 400
    p0_min = int(sys.argv[3]) if len(sys.argv) > 3 else 100

    targets = prepare_targets(
        circuit, max_faults=max_faults, p0_min_faults=p0_min
    )
    print(targets.summary())
    netlist = targets.netlist
    simulator = FaultSimulator(netlist, targets.all_records)

    rows = []
    for heuristic in ("uncomp", "arbit", "length", "values"):
        result = basic_atpg_circuit(
            netlist,
            heuristic=heuristic,
            targets=targets,
            seed=1,
            max_secondary_attempts=24,
        )
        accidental, _ = simulator.coverage(result.test_vectors)
        rows.append(
            (
                heuristic,
                f"{result.detected_by_pool[0]}/{len(targets.p0)}",
                result.num_tests,
                f"{accidental}/{len(targets.all_records)}",
                f"{result.runtime_seconds:.1f}s",
            )
        )
        print(f"  finished {heuristic}")

    print()
    print(
        render_table(
            ["heuristic", "P0 detected", "tests", "P0+P1 detected", "time"],
            rows,
            title=f"Compaction heuristics on {netlist.name}",
        )
    )
    uncomp_tests = rows[0][2]
    best_tests = min(row[2] for row in rows[1:])
    print()
    print(
        f"Dynamic compaction saves {uncomp_tests - best_tests} of "
        f"{uncomp_tests} tests ({100 * (uncomp_tests - best_tests) / uncomp_tests:.0f}%)."
    )


if __name__ == "__main__":
    main()
