"""Working with finished test sets: files, waveforms, static compaction.

Generates an (intentionally wasteful) uncompacted test set for s27, then:

1. statically compacts it (reverse and greedy set-cover passes) without
   losing a single detected fault;
2. saves/reloads the compacted set as a text file;
3. renders the waveforms one test produces on the paper's example path.

Run:  python examples/test_set_tools.py
"""

from repro import basic_atpg_circuit, prepare_targets
from repro.atpg import compact_tests
from repro.sim import (
    FaultSimulator,
    dumps_tests,
    loads_tests,
    render_test,
)


def main() -> None:
    targets = prepare_targets("s27", max_faults=1000, p0_min_faults=20)
    netlist = targets.netlist

    # The uncompacted procedure: one primary target per test.
    run = basic_atpg_circuit(
        netlist, heuristic="uncomp", targets=targets, seed=5
    )
    print(f"uncomp generated {run.num_tests} tests "
          f"({run.detected_by_pool[0]}/{len(targets.p0)} P0 faults)")

    # Static compaction against the full population.
    for order in ("reverse", "greedy"):
        result = compact_tests(
            netlist, targets.all_records, run.test_vectors, order=order
        )
        print(
            f"  static({order:7s}): {result.num_tests} tests "
            f"(dropped {result.dropped}), still {result.detected} faults"
        )

    compacted = compact_tests(
        netlist, targets.all_records, run.test_vectors, order="greedy"
    )

    # Round-trip through the text format.
    text = dumps_tests(netlist, compacted.tests)
    print("\nTest file:")
    print("\n".join(text.splitlines()[:6]))
    reloaded = loads_tests(text, netlist)
    simulator = FaultSimulator(netlist, targets.all_records)
    detected, total = simulator.coverage(reloaded)
    print(f"... reloaded {len(reloaded)} tests detect {detected}/{total}")

    # Waveform view of the first test along the paper's example path.
    print("\nWaveforms of test 1 along (G1, G12, G13) and its side inputs:")
    print(
        render_test(
            netlist, compacted.tests[0], lines=["G1", "G7", "G2", "G12", "G13"]
        )
    )


if __name__ == "__main__":
    main()
