"""Cone-restricted vs full-netlist justification (PR 4's tentpole).

Justifies a fixed sample of single-fault requirement sets from each
benchmark circuit's P0, once on the cone-restricted kernel and once with
``use_cones=False``.  Both paths produce identical tests (asserted); the
cone path should win by roughly the circuit-size / cone-size ratio, which
the engine reports as ``justify.cone_nodes`` vs ``justify.full_nodes``.

The ``cone-packed`` round repeats the cone run on the bit-packed
{0,1,x} backend (PR 8's tentpole) so the two simulation kernels are
benchmarked side by side; its identity spot check compares against the
numpy cone path.
"""

import random

import pytest

from repro.atpg.justify import Justifier
from repro.atpg.requirements import RequirementSet
from repro.sim.batch import BatchSimulator

#: Justifications per benchmark round (a fixed slice of P0, pool order).
SAMPLE = 40


def _sample(targets):
    records = targets.p0[:SAMPLE]
    return [RequirementSet(record.sens.requirements) for record in records]


def _justify_all(justifier, sample, seed):
    rng = random.Random(seed)
    return [justifier.justify(requirements, rng) for requirements in sample]


@pytest.mark.parametrize(
    "use_cones,backend",
    [(True, "numpy"), (False, "numpy"), (True, "packed")],
    ids=["cone", "full", "cone-packed"],
)
def bench_justify(benchmark, circuit_targets, smoke_scale, use_cones, backend):
    name, targets = circuit_targets
    sample = _sample(targets)
    justifier = Justifier(
        targets.netlist,
        simulator=BatchSimulator(targets.netlist, backend=backend),
        use_cones=use_cones,
    )
    # Warm the cone-compilation cache outside the timed region: a steady-
    # state ATPG run reuses compilations across thousands of calls, and
    # that steady state is what the comparison should measure.
    _justify_all(justifier, sample, smoke_scale.seed)

    results = benchmark(_justify_all, justifier, sample, smoke_scale.seed)

    # Identity spot check against a reference path: the opposite kernel
    # for the numpy rounds, the numpy cone path for the packed round.
    # Same RNG draws, same tests either way.
    reference = _justify_all(
        Justifier(
            targets.netlist,
            use_cones=use_cones if backend == "packed" else not use_cones,
        ),
        sample,
        smoke_scale.seed,
    )
    for ours, theirs in zip(results, reference):
        if ours is None or theirs is None:
            assert (ours is None) == (theirs is None), name
        else:
            assert ours.test.assignment == theirs.test.assignment, name
