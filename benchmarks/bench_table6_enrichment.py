"""Table 6: the test enrichment procedure.

Benchmarks the enrichment run and asserts the paper's two headline
claims on every benchmark circuit:

1. enrichment detects at least as much of P0 u P1 as the basic compact
   procedure detects accidentally (usually much more), and
2. the number of tests stays essentially the size dictated by P0 alone
   (very close to the basic values-heuristic test count).
"""

from repro.sim import FaultSimulator


def bench_table6_enrichment(benchmark, run_cache, circuit_targets, smoke_scale):
    name, targets = circuit_targets

    report = benchmark.pedantic(
        run_cache.enriched, args=(name,), rounds=1, iterations=1
    )

    basic = run_cache.basic(name, "values")
    simulator = FaultSimulator(targets.netlist, targets.all_records)
    accidental, total = simulator.coverage(basic.test_vectors)

    # Claim 1: explicit targeting beats accidental detection.
    assert report.p01_detected >= accidental, (name, report.p01_detected, accidental)
    # Claim 2: the test count is determined by P0, not by P1 (allow the
    # small random variation the paper reports).
    assert report.num_tests <= basic.num_tests * 1.3 + 3, (
        name,
        report.num_tests,
        basic.num_tests,
    )


def bench_table6_p1_never_primary(benchmark, run_cache, circuit_targets):
    name, targets = circuit_targets

    report = benchmark.pedantic(
        run_cache.enriched, args=(name,), rounds=1, iterations=1
    )

    p0_keys = {record.fault.key() for record in targets.p0}
    for generated in report.result.tests:
        assert generated.primary.fault.key() in p0_keys
