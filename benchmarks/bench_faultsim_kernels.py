"""Covering-kernel benchmarks: vectorized (stacked) vs scalar loop.

``FaultSimulator.detection_matrix`` is the inner loop of every coverage
number in Tables 3-7 and of n-detection style analyses that fault-simulate
the same population many times.  These benches pin both kernels on the
benchmark circuits so the speedup (and the agreement) stays visible.
"""

import numpy as np

from repro.sim.faultsim import FaultSimulator


def _simulator(engine, name, targets, vectorized):
    session = engine.session(name)
    return FaultSimulator(
        session.netlist,
        targets.all_records,
        simulator=session.simulator,
        vectorized=vectorized,
    )


def bench_detection_matrix_vectorized(
    benchmark, engine, circuit_targets, run_cache
):
    name, targets = circuit_targets
    tests = run_cache.basic(name, "values").test_vectors
    simulator = _simulator(engine, name, targets, vectorized=True)
    simulator.detection_matrix(tests)  # warm the batch simulator
    matrix = benchmark(simulator.detection_matrix, tests)
    assert matrix.shape == (len(targets.all_records), len(tests))


def bench_detection_matrix_scalar(benchmark, engine, circuit_targets, run_cache):
    name, targets = circuit_targets
    tests = run_cache.basic(name, "values").test_vectors
    simulator = _simulator(engine, name, targets, vectorized=False)
    simulator.detection_matrix(tests)
    matrix = benchmark(simulator.detection_matrix, tests)
    assert matrix.shape == (len(targets.all_records), len(tests))


def bench_kernels_agree(benchmark, engine, circuit_targets, run_cache):
    """Equivalence doubles as a benchmark of one full round of each."""
    name, targets = circuit_targets
    tests = run_cache.basic(name, "values").test_vectors
    vectorized = _simulator(engine, name, targets, vectorized=True)
    scalar = _simulator(engine, name, targets, vectorized=False)

    def both():
        return (
            vectorized.detection_matrix(tests),
            scalar.detection_matrix(tests),
        )

    fast, slow = benchmark.pedantic(both, rounds=1, iterations=1)
    assert np.array_equal(fast, slow)
