"""Table 2: L_i / N_p(L_i) length table of the s1423 stand-in.

Benchmarks enumeration + histogram and asserts the paper's shape: the
cumulative fault count N_p(L_i) starts very small at the critical length
(n_p(L_0) = 4 in the paper) and grows monotonically -- roughly
geometrically -- as the length bound decreases.
"""

from repro.circuit import load_circuit
from repro.experiments import run_table2
from repro.faults.fault import faults_of_paths
from repro.paths import enumerate_paths, length_table_for_faults


def _build_table(netlist, max_faults):
    enumeration = enumerate_paths(netlist, max_faults=max_faults)
    return length_table_for_faults(faults_of_paths(enumeration.paths))


def bench_table2_length_table(benchmark, smoke_scale):
    netlist = load_circuit("s1423_proxy")

    table = benchmark(_build_table, netlist, smoke_scale.max_faults)

    rows = list(table)
    assert len(rows) >= 3
    # Monotone growth of the cumulative column.
    cumulative = [row.cumulative for row in rows]
    assert cumulative == sorted(cumulative)
    assert all(later > earlier for earlier, later in zip(cumulative, cumulative[1:]))
    # Few faults at the critical length, many more a few levels down --
    # the property that makes the P0/P1 boundary meaningful.
    assert rows[0].faults <= cumulative[-1] // 3


def bench_table2_driver(benchmark, smoke_scale):
    result = benchmark(run_table2, smoke_scale, "s1423_proxy", 20)
    assert result.circuit == "s1423_proxy"
    indices = [row[0] for row in result.rows]
    assert indices == list(range(len(result.rows)))
    lengths = [row[1] for row in result.rows]
    assert lengths == sorted(lengths, reverse=True)
