"""Ablation benchmarks for the design choices called out in DESIGN.md.

* robust vs non-robust sensitization: non-robust conditions are weaker,
  so fewer faults are dropped as undetectable;
* simulation-based vs branch-and-bound justification: BnB is complete --
  it succeeds on everything the randomized engine solves;
* datapath (chain) vs unstructured (mesh) proxies: the longest paths of
  random meshes are mostly robust-untestable, which is why the proxy
  circuits use the chain style (DESIGN.md section 2);
* secondary-attempt budget: a small budget keeps most of the compaction
  at a fraction of the run time.
"""

import random

from repro.atpg import (
    AtpgConfig,
    BranchAndBoundJustifier,
    Justifier,
    RequirementSet,
    generate_basic,
)
from repro.circuit import load_circuit
from repro.faults import build_target_sets


def bench_ablation_robust_vs_nonrobust(benchmark):
    netlist = load_circuit("s641_proxy")

    def build_both():
        robust = build_target_sets(netlist, max_faults=240, p0_min_faults=60)
        relaxed = build_target_sets(
            netlist, max_faults=240, p0_min_faults=60, mode="non_robust"
        )
        return robust, relaxed

    robust, relaxed = benchmark.pedantic(build_both, rounds=1, iterations=1)

    assert relaxed.dropped_conflict <= robust.dropped_conflict
    assert len(relaxed.all_records) >= len(robust.all_records)


def bench_ablation_bnb_completeness(benchmark, circuit_targets):
    """BnB succeeds wherever the randomized engine does."""
    name, targets = circuit_targets
    justifier = Justifier(targets.netlist)
    bnb = BranchAndBoundJustifier(targets.netlist)
    rng = random.Random(0)

    def compare(sample=8):
        agree = 0
        solved = 0
        for record in targets.p0[:sample]:
            requirements = RequirementSet(record.sens.requirements)
            if justifier.justify(requirements, rng) is not None:
                solved += 1
                if bnb.is_satisfiable(requirements, node_limit=100_000):
                    agree += 1
        return solved, agree

    solved, agree = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert agree == solved


def bench_ablation_chain_vs_mesh_testability(benchmark):
    """Long mesh paths are nearly all undetectable; chain paths are not.

    This is the measurement that justified the proxy-style substitution
    documented in DESIGN.md.
    """

    def survival(name):
        netlist = load_circuit(name)
        targets = build_target_sets(netlist, max_faults=240, p0_min_faults=60)
        population = len(targets.all_records) + targets.dropped_conflict
        return len(targets.all_records) / max(population, 1)

    rates = benchmark.pedantic(
        lambda: (survival("mesh_deep"), survival("s641_proxy")),
        rounds=1,
        iterations=1,
    )
    mesh_rate, chain_rate = rates
    assert chain_rate > mesh_rate


def bench_ablation_secondary_budget(benchmark, circuit_targets, smoke_scale):
    """A small attempt budget keeps compaction close to unlimited."""
    name, targets = circuit_targets

    def run(budget):
        config = AtpgConfig(
            heuristic="values", seed=1, max_secondary_attempts=budget
        )
        return generate_basic(targets.netlist, targets.p0, config)

    limited = benchmark.pedantic(run, args=(4,), rounds=1, iterations=1)
    baseline = run(None)

    assert limited.num_tests <= baseline.num_tests * 1.6 + 4
    assert limited.secondary_attempts <= 4 * max(limited.num_tests, 1)
