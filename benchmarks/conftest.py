"""Shared fixtures for the benchmark harness.

Benchmarks run at the ``smoke`` scale so a full ``pytest benchmarks/
--benchmark-only`` finishes in minutes; the ``default``-scale numbers that
EXPERIMENTS.md reports come from ``repro-pdf tables --scale default``.

Heavy precomputation is owned by one session-scoped
:class:`repro.engine.Engine`: every bench module shares each circuit's
enumeration, target sets and compiled simulators, and the benchmarked
bodies are the algorithms themselves.
"""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.experiments import get_scale

SMOKE = get_scale("smoke")

#: Circuits used by the per-table benchmarks (a fast but representative
#: subset of the paper's eight; the full set runs via the CLI driver).
BENCH_CIRCUITS = ("s641_proxy", "b03_proxy", "b04_proxy")


@pytest.fixture(scope="session")
def smoke_scale():
    return SMOKE


@pytest.fixture(scope="session")
def engine():
    """One engine for the whole benchmark session."""
    return Engine()


@pytest.fixture(scope="session")
def targets_by_circuit(engine):
    """Target sets for the benchmark circuits at smoke scale."""
    return {
        name: engine.session(name).target_sets(
            max_faults=SMOKE.max_faults,
            p0_min_faults=SMOKE.p0_min_faults,
        )
        for name in BENCH_CIRCUITS
    }


@pytest.fixture(scope="session", params=BENCH_CIRCUITS)
def circuit_targets(request, targets_by_circuit):
    """(name, TargetSets) for each benchmark circuit."""
    return request.param, targets_by_circuit[request.param]


@pytest.fixture(scope="session")
def run_cache(engine, targets_by_circuit):
    """Lazy session cache of generation runs shared across bench modules.

    ``cache.basic(name, heuristic)`` and ``cache.enriched(name)`` run once
    per key; Tables 3/4/5/6/7 all consume the same underlying runs, just
    as the paper's experiments do.
    """
    from repro.atpg import AtpgConfig

    class _Cache:
        def __init__(self):
            self._basic = {}
            self._enriched = {}

        def _config(self, heuristic):
            return AtpgConfig(
                heuristic=heuristic,
                seed=SMOKE.seed,
                max_secondary_attempts=SMOKE.max_secondary_attempts,
            )

        def basic(self, name, heuristic):
            key = (name, heuristic)
            if key not in self._basic:
                targets = targets_by_circuit[name]
                self._basic[key] = engine.session(name).generate_basic(
                    targets.p0, self._config(heuristic)
                )
            return self._basic[key]

        def enriched(self, name):
            if name not in self._enriched:
                targets = targets_by_circuit[name]
                self._enriched[name] = engine.session(name).generate_enriched(
                    targets, self._config("values")
                )
            return self._enriched[name]

    return _Cache()
