"""Shared fixtures for the benchmark harness.

Benchmarks run at the ``smoke`` scale so a full ``pytest benchmarks/
--benchmark-only`` finishes in minutes; the ``default``-scale numbers that
EXPERIMENTS.md reports come from ``repro-pdf tables --scale default``.

Heavy precomputation (target sets) is session-scoped; the benchmarked
bodies are the algorithms themselves.
"""

from __future__ import annotations

import pytest

from repro.api import prepare_targets, resolve_circuit
from repro.experiments import get_scale

SMOKE = get_scale("smoke")

#: Circuits used by the per-table benchmarks (a fast but representative
#: subset of the paper's eight; the full set runs via the CLI driver).
BENCH_CIRCUITS = ("s641_proxy", "b03_proxy", "b04_proxy")


@pytest.fixture(scope="session")
def smoke_scale():
    return SMOKE


@pytest.fixture(scope="session")
def targets_by_circuit():
    """Target sets for the benchmark circuits at smoke scale."""
    out = {}
    for name in BENCH_CIRCUITS:
        netlist = resolve_circuit(name)
        out[name] = prepare_targets(
            netlist,
            max_faults=SMOKE.max_faults,
            p0_min_faults=SMOKE.p0_min_faults,
        )
    return out


@pytest.fixture(scope="session", params=BENCH_CIRCUITS)
def circuit_targets(request, targets_by_circuit):
    """(name, TargetSets) for each benchmark circuit."""
    return request.param, targets_by_circuit[request.param]


@pytest.fixture(scope="session")
def run_cache(targets_by_circuit):
    """Lazy session cache of generation runs shared across bench modules.

    ``cache.basic(name, heuristic)`` and ``cache.enriched(name)`` run once
    per key; Tables 3/4/5/6/7 all consume the same underlying runs, just
    as the paper's experiments do.
    """
    from repro.atpg import AtpgConfig, generate_basic, generate_enriched

    class _Cache:
        def __init__(self):
            self._basic = {}
            self._enriched = {}

        def _config(self, heuristic):
            return AtpgConfig(
                heuristic=heuristic,
                seed=SMOKE.seed,
                max_secondary_attempts=SMOKE.max_secondary_attempts,
            )

        def basic(self, name, heuristic):
            key = (name, heuristic)
            if key not in self._basic:
                targets = targets_by_circuit[name]
                self._basic[key] = generate_basic(
                    targets.netlist, targets.p0, self._config(heuristic)
                )
            return self._basic[key]

        def enriched(self, name):
            if name not in self._enriched:
                targets = targets_by_circuit[name]
                self._enriched[name] = generate_enriched(
                    targets.netlist, targets, self._config("values")
                )
            return self._enriched[name]

    return _Cache()
