"""Table 1: bounded path enumeration on s27 (the paper's walk-through).

Benchmarks the enumeration itself and asserts the paper's qualitative
outcome: with a cap of 20 paths, the surviving set contains only the
longest paths (the short complete paths, such as the length-2 path the
paper removes first, are pruned) and every longest path survives.
"""

from repro.circuit import load_circuit
from repro.experiments import run_table1
from repro.paths import enumerate_paths


def bench_table1_enumeration(benchmark):
    netlist = load_circuit("s27")

    result = benchmark(enumerate_paths, netlist, 40, False)

    assert result.cap_hit
    assert result.num_faults < 40
    # The paper's run ends with paths well above the minimum length; the
    # shortest complete paths (length 2 and 3 here) must be gone.
    assert result.min_kept_length >= 4
    assert result.max_kept_length == 7
    # All longest paths survive.
    full = enumerate_paths(netlist, max_faults=10_000)
    longest = [p for p in full.paths if p.length == 7]
    for path in longest:
        assert path in result.paths


def bench_table1_distance_variant(benchmark):
    netlist = load_circuit("s27")

    result = benchmark(enumerate_paths, netlist, 40, True)

    assert result.cap_hit
    assert result.max_kept_length == 7
    # The distance-based variant prunes at least as aggressively.
    assert result.min_kept_length >= 4


def bench_table1_driver(benchmark):
    result = benchmark(run_table1, 20)
    assert result.cap_paths == 20
    assert len(result.kept_paths) <= 20
    assert result.max_length == 7
