"""Cold session build vs warm artifact-store load (PR 9's tentpole).

Builds the ``s1423_proxy`` enumeration + target sets from a fresh engine
twice: once against an empty :class:`repro.artifacts.ArtifactStore`
(cold -- full compute, then publish) and once against a pre-seeded one
(warm -- both artifacts load from disk and the fault records are
re-sensitized).  The warm round must be the ``artifact.hit`` path, and
the loaded target sets are asserted identical to a cold build: same
fault identities in the same order, same requirement sets, same table.

The default-scale ratio that gates the tentpole ( warm / cold <= 0.2,
i.e. >= 5x ) lives in ``tools/bench_compare.py --cached`` against
``benchmarks/BENCH_PR9.json``; these rounds track the same two paths at
the harness's smoke scale.
"""

import shutil
import tempfile

import pytest

from repro.artifacts import ArtifactStore
from repro.engine import Engine

CIRCUIT = "s1423_proxy"


def _build(store, scale):
    engine = Engine(artifacts=store)
    session = engine.session(CIRCUIT)
    session.enumeration(scale.max_faults)
    targets = session.target_sets(
        max_faults=scale.max_faults, p0_min_faults=scale.p0_min_faults
    )
    return engine, targets


def bench_artifact_cold(benchmark, smoke_scale):
    """Empty store every iteration: compute + publish."""
    dirs = []

    def cold_build():
        directory = tempfile.mkdtemp(prefix="bench-artifact-cold-")
        dirs.append(directory)
        return _build(ArtifactStore(directory), smoke_scale)

    try:
        engine, _ = benchmark(cold_build)
    finally:
        for directory in dirs:
            shutil.rmtree(directory, ignore_errors=True)
    assert engine.stats.counter("artifact.hit") == 0
    assert engine.stats.counter("artifact.write") == 2


def bench_artifact_warm(benchmark, smoke_scale):
    """Pre-seeded store: both artifacts load instead of recomputing."""
    directory = tempfile.mkdtemp(prefix="bench-artifact-warm-")
    try:
        store = ArtifactStore(directory)
        _, reference = _build(store, smoke_scale)

        engine, targets = benchmark(_build, ArtifactStore(directory), smoke_scale)

        assert engine.stats.counter("artifact.hit") == 2
        assert engine.stats.counter("artifact.corrupt") == 0
        assert [r.fault.key() for r in targets.all_records] == [
            r.fault.key() for r in reference.all_records
        ]
        assert all(
            ours.sens.requirements == theirs.sens.requirements
            for ours, theirs in zip(targets.all_records, reference.all_records)
        )
        assert targets.summary() == reference.summary()
        assert tuple(targets.length_table) == tuple(reference.length_table)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(
        pytest.main([__file__, "--benchmark-only", "-q"])
    )
