"""Table 5: accidental detection of P0 u P1 by the basic test sets.

Benchmarks the fault simulation of the basic (values) test set against
the full population and asserts the paper's observation: only a modest
fraction of P1 is detected *accidentally* -- the headroom the enrichment
procedure exploits -- and the non-compact test set barely beats the
compact ones despite being much larger.
"""

from repro.sim import FaultSimulator


def bench_table5_fault_simulation(benchmark, run_cache, circuit_targets):
    name, targets = circuit_targets
    run = run_cache.basic(name, "values")
    simulator = FaultSimulator(targets.netlist, targets.all_records)

    detected_mask = benchmark(simulator.detected_mask, run.test_vectors)

    p1_keys = {record.fault.key() for record in targets.p1}
    accidental_p1 = sum(
        1
        for record, hit in zip(targets.all_records, detected_mask)
        if hit and record.fault.key() in p1_keys
    )
    if targets.p1:
        # Most of P1 goes undetected when it is not targeted explicitly.
        assert accidental_p1 <= 0.7 * len(targets.p1), (
            name,
            accidental_p1,
            len(targets.p1),
        )


def bench_table5_noncompact_barely_better(benchmark, run_cache, circuit_targets):
    """The paper: accidental P1 detection of the big uncompacted test set
    is only slightly higher than that of the much smaller compact sets."""
    name, targets = circuit_targets
    simulator = FaultSimulator(targets.netlist, targets.all_records)

    def accidental(heuristic):
        run = run_cache.basic(name, heuristic)
        detected, _ = simulator.coverage(run.test_vectors)
        return detected

    counts = benchmark.pedantic(
        lambda: {h: accidental(h) for h in ("uncomp", "values")},
        rounds=1,
        iterations=1,
    )

    # Allow the uncompacted set a modest edge only (or none at all).
    assert counts["uncomp"] <= counts["values"] + 0.25 * len(targets.all_records)
