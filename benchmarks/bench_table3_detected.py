"""Table 3: faults of P0 detected by the basic procedure.

Benchmarks one value-based generation run per circuit and asserts the
paper's shape: the four heuristics detect near-identical fault counts
(the compaction heuristics trade *test count*, not coverage -- Table 3
of the paper shows variations of at most a few faults).
"""

from repro.atpg import AtpgConfig, generate_basic
from repro.experiments import HEURISTICS


def bench_table3_values_run(benchmark, circuit_targets, smoke_scale):
    name, targets = circuit_targets
    config = AtpgConfig(
        heuristic="values",
        seed=smoke_scale.seed,
        max_secondary_attempts=smoke_scale.max_secondary_attempts,
    )

    result = benchmark.pedantic(
        generate_basic,
        args=(targets.netlist, targets.p0, config),
        rounds=1,
        iterations=1,
    )

    assert result.num_tests > 0
    assert 0 < result.detected_by_pool[0] <= len(targets.p0)


def bench_table3_heuristics_agree_on_coverage(benchmark, run_cache, circuit_targets):
    """Detected-fault counts across heuristics stay within a narrow band."""
    name, targets = circuit_targets

    def collect():
        return {h: run_cache.basic(name, h).detected_by_pool[0] for h in HEURISTICS}

    detected = benchmark.pedantic(collect, rounds=1, iterations=1)

    values = sorted(detected.values())
    lowest, highest = values[0], values[-1]
    assert lowest > 0, detected
    # Paper: variations are "small", caused only by random value choices.
    # The randomized justifier makes the band wider at smoke scale; the
    # compacting heuristics additionally recover failed primaries as
    # secondaries, so uncomp may trail them somewhat.
    assert highest - lowest <= max(8, 0.3 * highest), detected
    compacting = sorted(detected[h] for h in ("arbit", "length", "values"))
    assert compacting[-1] - compacting[0] <= max(6, 0.25 * compacting[-1]), detected
