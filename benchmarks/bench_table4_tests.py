"""Table 4: numbers of tests under the four compaction heuristics.

Asserts the paper's central compaction result: every dynamic-compaction
heuristic produces fewer tests than the uncompacted procedure, and the
test count per detected fault improves.
"""

from repro.experiments import HEURISTICS


def bench_table4_compaction_ratio(benchmark, run_cache, circuit_targets):
    name, targets = circuit_targets

    def collect():
        return {h: run_cache.basic(name, h) for h in HEURISTICS}

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)

    uncomp = runs["uncomp"]

    def density(run):
        return run.detected_by_pool[0] / max(run.num_tests, 1)

    # The paper's claim, normalized for the detected-fault count: per
    # detected fault, compaction needs no more tests than uncomp (a
    # compacting run may use a few more tests in absolute terms when it
    # also detects more faults).
    for heuristic in ("arbit", "length", "values"):
        compacted = runs[heuristic]
        assert compacted.num_tests * uncomp.detected_by_pool[0] <= (
            uncomp.num_tests * compacted.detected_by_pool[0] * 1.05 + 3
        ), (name, heuristic, compacted.num_tests, uncomp.num_tests)

    # And the best compacting heuristic strictly improves test density.
    best = max(density(runs[h]) for h in ("arbit", "length", "values"))
    assert best >= density(uncomp)


def bench_table4_uncomp_one_target_per_test(benchmark, run_cache, circuit_targets):
    name, _ = circuit_targets

    run = benchmark.pedantic(
        run_cache.basic, args=(name, "uncomp"), rounds=1, iterations=1
    )

    assert all(test.num_targeted == 1 for test in run.tests)
