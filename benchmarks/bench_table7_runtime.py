"""Table 7: run-time ratio of enrichment over the basic procedure.

The paper reports ratios between 0.94 and 2.51: enrichment costs at most
a modest constant factor.  The benchmark times both procedures on fresh
runs (cache-independent) and asserts the ratio stays within an order of
magnitude of 1.
"""

import time

from repro.atpg import AtpgConfig, generate_basic, generate_enriched


def bench_table7_runtime_ratio(benchmark, circuit_targets, smoke_scale):
    name, targets = circuit_targets
    config = AtpgConfig(
        heuristic="values",
        seed=smoke_scale.seed,
        max_secondary_attempts=smoke_scale.max_secondary_attempts,
    )

    def both():
        start = time.perf_counter()
        generate_basic(targets.netlist, targets.p0, config)
        basic_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        generate_enriched(targets.netlist, targets, config)
        enrich_elapsed = time.perf_counter() - start
        return basic_elapsed, enrich_elapsed

    basic_elapsed, enrich_elapsed = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    ratio = enrich_elapsed / max(basic_elapsed, 1e-9)
    # Paper: 0.94 .. 2.51.  Allow generous slack for the smaller scale and
    # Python timing noise, but the ratio must stay bounded.
    assert 0.2 <= ratio <= 10.0, (name, ratio)
