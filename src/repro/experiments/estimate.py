"""Non-enumerative path-delay-fault coverage estimation.

The paper motivates path selection with the impossibility of targeting
every path ([2]: an efficient non-enumerative coverage estimate).  This
module provides the sampling-based analogue: draw faults on uniformly
random paths (:mod:`repro.paths.sampling`), fault-simulate them under a
test set, and report the detected fraction with a confidence interval --
an unbiased estimate of whole-population path-delay-fault coverage, not
just coverage of the enumerated longest paths.

This puts the enrichment story in context: a P0-only test set may cover
100% of the *critical* paths while its whole-population coverage stays
tiny; enrichment moves the needle on the population metric too.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..circuit.netlist import Netlist
from ..faults.conditions import Mode, sensitize
from ..faults.fault import faults_of_paths
from ..faults.universe import FaultRecord
from ..paths.sampling import PathSampler
from ..sim.faultsim import FaultSimulator
from ..sim.vectors import TwoPatternTest

__all__ = ["CoverageEstimate", "estimate_coverage"]


@dataclass(frozen=True)
class CoverageEstimate:
    """Sampled estimate of whole-population PDF coverage.

    ``detected_fraction`` counts a sampled fault as covered only when the
    test set detects it; ``undetectable_fraction`` reports how many
    sampled faults were provably undetectable (conflicting ``A(p)``) --
    those can never be covered by any test.
    """

    sampled_faults: int
    detected: int
    undetectable: int
    total_paths: int

    @property
    def detected_fraction(self) -> float:
        """Detected share of all sampled faults."""
        return self.detected / self.sampled_faults if self.sampled_faults else 0.0

    @property
    def undetectable_fraction(self) -> float:
        """Provably undetectable share of all sampled faults."""
        return self.undetectable / self.sampled_faults if self.sampled_faults else 0.0

    @property
    def detectable_coverage(self) -> float:
        """Detected share of the faults that are not provably undetectable."""
        detectable = self.sampled_faults - self.undetectable
        return self.detected / detectable if detectable else 0.0

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation interval for ``detected_fraction``."""
        if self.sampled_faults == 0:
            return (0.0, 0.0)
        p = self.detected_fraction
        half = z * math.sqrt(p * (1 - p) / self.sampled_faults)
        return (max(0.0, p - half), min(1.0, p + half))

    def __str__(self) -> str:
        low, high = self.confidence_interval()
        return (
            f"{100 * self.detected_fraction:.1f}% of sampled faults detected "
            f"(95% CI {100 * low:.1f}%..{100 * high:.1f}%; "
            f"{100 * self.undetectable_fraction:.1f}% provably undetectable; "
            f"population: {self.total_paths} paths)"
        )


def estimate_coverage(
    netlist: Netlist,
    tests: Sequence[TwoPatternTest],
    samples: int = 200,
    seed: int = 0,
    mode: Mode = "robust",
) -> CoverageEstimate:
    """Estimate whole-population PDF coverage of ``tests`` by sampling.

    ``samples`` paths are drawn uniformly (two faults each).  Faults whose
    ``A(p)`` self-conflicts are counted as undetectable rather than
    silently dropped, so the estimate stays unbiased over the full fault
    population.
    """
    sampler = PathSampler(netlist)
    rng = random.Random(seed)
    paths = sampler.sample_many(samples, rng)
    records: list[FaultRecord] = []
    undetectable = 0
    for fault in faults_of_paths(paths):
        sens = sensitize(netlist, fault, mode=mode)
        if sens is None:
            undetectable += 1
        else:
            records.append(FaultRecord(fault, sens))
    detected = 0
    if records and tests:
        simulator = FaultSimulator(netlist, records)
        detected = int(simulator.detected_mask(tests).sum())
    return CoverageEstimate(
        sampled_faults=2 * len(paths),
        detected=detected,
        undetectable=undetectable,
        total_paths=sampler.total_paths,
    )
