"""Experiment scaling presets.

The paper runs with ``N_P = 10000`` and ``N_P0 = 1000`` on circuits of up
to ~10k gates, using compiled C code.  A pure-Python reproduction needs a
smaller default working point; the *relationships* the paper demonstrates
(compaction ratios, accidental-vs-explicit P1 detection, test-count
invariance of enrichment) are preserved at every scale.

Three presets:

* ``paper``   -- the paper's parameters (slow in pure Python; hours).
* ``default`` -- the standard reproduction scale used by EXPERIMENTS.md.
* ``smoke``   -- small enough for CI benchmarks (seconds per run).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """One working point for the experiment drivers.

    Attributes
    ----------
    name:
        Preset name.
    max_faults:
        The paper's ``N_P`` (cap on enumerated faults).
    p0_min_faults:
        The paper's ``N_P0`` (minimum size of the first target set).
    max_secondary_attempts:
        Budget of secondary justification attempts per test.  ``None``
        reproduces the paper's "consider every fault once per test"
        exactly; a small budget trades a little compaction quality for a
        large speedup (see EXPERIMENTS.md for the measured difference).
    seed:
        Base RNG seed for generation runs.
    """

    name: str
    max_faults: int
    p0_min_faults: int
    max_secondary_attempts: int | None
    seed: int = 1


SCALES: dict[str, ExperimentScale] = {
    "paper": ExperimentScale(
        name="paper",
        max_faults=10_000,
        p0_min_faults=1_000,
        max_secondary_attempts=None,
    ),
    "default": ExperimentScale(
        name="default",
        max_faults=600,
        p0_min_faults=150,
        max_secondary_attempts=24,
    ),
    "smoke": ExperimentScale(
        name="smoke",
        max_faults=240,
        p0_min_faults=60,
        max_secondary_attempts=8,
    ),
}


def get_scale(name_or_scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a preset name (or pass an explicit scale through)."""
    if isinstance(name_or_scale, ExperimentScale):
        return name_or_scale
    try:
        return SCALES[name_or_scale]
    except KeyError:
        raise KeyError(
            f"unknown scale {name_or_scale!r}; presets: {sorted(SCALES)}"
        ) from None
