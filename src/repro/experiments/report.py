"""Fixed-width table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table (right-aligned numbers)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def fmt(row: Sequence[str]) -> str:
        parts = []
        for column, value in enumerate(row):
            if column == 0:
                parts.append(value.ljust(widths[column]))
            else:
                parts.append(value.rjust(widths[column]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)
