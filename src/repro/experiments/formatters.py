"""Renderers that lay the measured data out in the paper's table formats.

Pure functions from the result dataclasses of
:mod:`repro.experiments.results` to text; no computation happens here, so
cached JSON results render identically to fresh runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .report import render_table
from .results import CircuitBasicResult, Table1Result, Table2Result, Table6Row
from .workloads import HEURISTICS

__all__ = [
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_table7",
    "format_aborted_faults",
]


def format_table1(result: Table1Result) -> str:
    rows = [
        (" -> ".join(names), length)
        for names, length in zip(result.kept_paths, result.kept_lengths)
    ]
    table = render_table(
        ["path", "len"],
        rows,
        title=(
            f"Table 1: {result.circuit} bounded enumeration "
            f"(cap {result.cap_paths} paths; kept {len(rows)}, "
            f"lengths {result.min_length}..{result.max_length}, "
            f"pruned {result.pruned_complete} short complete paths)"
        ),
    )
    return table


def format_table2(result: Table2Result) -> str:
    return render_table(
        ["i", "L_i", "N_p(L_i)"],
        result.rows,
        title=f"Table 2: numbers of faults in {result.circuit}",
    )


def _basic_rows(results: Mapping[str, CircuitBasicResult], key):
    rows = []
    for name, entry in results.items():
        rows.append(
            [name, entry.i0]
            + [key(entry, entry.outcomes[h]) for h in HEURISTICS if h in entry.outcomes]
        )
    return rows


def format_table3(results: Mapping[str, CircuitBasicResult]) -> str:
    rows = []
    for name, entry in results.items():
        rows.append(
            [name, entry.i0, entry.p0_total]
            + [entry.outcomes[h].detected_p0 for h in HEURISTICS if h in entry.outcomes]
        )
    return render_table(
        ["circuit", "i0", "P0 flts", "uncomp", "arbit", "length", "values"],
        rows,
        title="Table 3: basic test generation using P0 (detected faults)",
    )


def format_table4(results: Mapping[str, CircuitBasicResult]) -> str:
    rows = _basic_rows(results, lambda entry, outcome: outcome.tests)
    return render_table(
        ["circuit", "i0", "uncomp", "arbit", "length", "values"],
        rows,
        title="Table 4: basic test generation using P0 (numbers of tests)",
    )


def format_table5(results: Mapping[str, CircuitBasicResult]) -> str:
    rows = []
    for name, entry in results.items():
        rows.append(
            [name, entry.i0, entry.p01_total]
            + [
                entry.outcomes[h].detected_p01
                for h in HEURISTICS
                if h in entry.outcomes
            ]
        )
    return render_table(
        ["circuit", "i0", "P0,P1 flts", "uncomp", "arbit", "length", "values"],
        rows,
        title="Table 5: simulation of P0 u P1 (accidental detection)",
    )


def format_table6(rows: Sequence[Table6Row]) -> str:
    # The aborted column appears only when some run actually degraded:
    # unbudgeted output stays byte-identical to the pre-budget layout.
    show_aborted = any(getattr(row, "aborted", 0) for row in rows)
    headers = [
        "circuit",
        "i0",
        "P0 total",
        "P0 detect",
        "P0,P1 total",
        "P0,P1 detect",
        "tests",
    ]
    if show_aborted:
        headers.append("aborted")
    body = []
    for row in rows:
        cells = (
            row.circuit,
            row.i0,
            row.p0_total,
            row.p0_detected,
            row.p01_total,
            row.p01_detected,
            row.tests,
        )
        body.append(cells + (row.aborted,) if show_aborted else cells)
    return render_table(
        headers,
        body,
        title="Table 6: results of test enrichment using P0 and P1",
    )


def format_aborted_faults(rows: Sequence[Table6Row], limit: int = 20) -> str:
    """Per-fault abort report for degraded enrichment runs.

    One line per aborted fault -- circuit, fault identity, machine-
    readable reason and the pipeline phase that tripped -- capped at
    ``limit`` rows per circuit (the remainder is summarized); returns
    ``""`` when nothing was aborted, so unbudgeted output is unchanged.
    """
    body: list[tuple] = []
    for row in rows:
        faults = getattr(row, "aborted_faults", [])
        for fault, pool, reason, phase in faults[:limit]:
            body.append((row.circuit, fault, f"P{pool}", reason, phase))
        overflow = len(faults) - limit
        if overflow > 0:
            body.append((row.circuit, f"... and {overflow} more", "", "", ""))
    if not body:
        return ""
    return render_table(
        ["circuit", "fault", "pool", "reason", "phase"],
        body,
        title="Aborted faults (budget exhausted before a verdict)",
    )


def format_table7(
    basic: Mapping[str, CircuitBasicResult], enriched: Sequence[Table6Row]
) -> str:
    """Run-time ratio RT_enrich / RT_basic for the values heuristic."""
    enriched_by_name = {row.circuit: row for row in enriched}
    rows = []
    for name, entry in basic.items():
        if name not in enriched_by_name or "values" not in entry.outcomes:
            continue
        basic_rt = entry.outcomes["values"].runtime_seconds
        enrich_rt = enriched_by_name[name].runtime_seconds
        ratio = enrich_rt / basic_rt if basic_rt > 0 else float("inf")
        rows.append((name, entry.i0, f"{ratio:.2f}"))
    return render_table(
        ["circuit", "i0", "ratio"],
        rows,
        title="Table 7: run time ratios (enrich / basic, values heuristic)",
    )
