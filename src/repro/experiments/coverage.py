"""Per-length coverage profiles.

The enrichment procedure's value proposition is *where* the extra
detections land: on the next-to-longest paths, exactly the region a plain
`P0`-only test set leaves exposed.  These helpers break a detection result
down by path length so examples and reports can show that profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..faults.universe import FaultRecord
from .report import render_table

__all__ = ["LengthCoverage", "coverage_by_length", "format_coverage_profile"]


@dataclass(frozen=True)
class LengthCoverage:
    """Detection counts for one path length."""

    length: int
    detected: int
    total: int

    @property
    def fraction(self) -> float:
        """Detected fraction (0 when the bucket is empty)."""
        return self.detected / self.total if self.total else 0.0


def coverage_by_length(
    records: Sequence[FaultRecord],
    detected: Iterable[FaultRecord] | Iterable[tuple],
) -> list[LengthCoverage]:
    """Aggregate detection per path length, longest first.

    ``detected`` may be the detected records themselves or their
    ``fault.key()`` values.
    """
    detected_keys = set()
    for item in detected:
        detected_keys.add(item.fault.key() if isinstance(item, FaultRecord) else item)
    totals: dict[int, int] = {}
    hits: dict[int, int] = {}
    for record in records:
        totals[record.length] = totals.get(record.length, 0) + 1
        if record.fault.key() in detected_keys:
            hits[record.length] = hits.get(record.length, 0) + 1
    return [
        LengthCoverage(length=length, detected=hits.get(length, 0), total=totals[length])
        for length in sorted(totals, reverse=True)
    ]


def format_coverage_profile(
    profile: Sequence[LengthCoverage], title: str | None = None
) -> str:
    """Render a per-length coverage profile as a table."""
    rows = [
        (
            entry.length,
            entry.detected,
            entry.total,
            f"{100 * entry.fraction:.0f}%",
        )
        for entry in profile
    ]
    return render_table(
        ["length", "detected", "total", "coverage"],
        rows,
        title=title or "Coverage by path length",
    )
