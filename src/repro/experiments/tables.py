"""Drivers that regenerate every table of the paper's evaluation.

Each ``run_*`` function returns plain dataclasses; ``format_*`` renders the
paper's layout.  ``run_all`` produces everything in one sweep, reusing the
(expensive) target-set construction and basic-generation runs across
Tables 3, 4, 5 and 7, exactly as the paper's experiments share them.

Mapping to the paper:

* Table 1 -- bounded path enumeration on s27 (N_P = 20 paths).
* Table 2 -- L_i / N_p(L_i) length table of the s1423 stand-in.
* Table 3 -- faults of P0 detected by the basic procedure, 4 heuristics.
* Table 4 -- numbers of tests for the same runs.
* Table 5 -- accidental P0 u P1 detection of the basic test sets.
* Table 6 -- the enrichment procedure on 8 + 3 circuits.
* Table 7 -- run-time ratio enrichment / basic (values heuristic).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Mapping, Sequence

from ..api import enrich_circuit, prepare_targets, resolve_circuit
from ..atpg import AtpgConfig, generate_basic
from ..paths.enumerate import enumerate_paths
from ..paths.lengths import length_table_for_faults
from ..sim.faultsim import FaultSimulator
from .report import render_table
from .scale import ExperimentScale, get_scale
from .workloads import HEURISTICS, TABLE3_CIRCUITS, TABLE6_CIRCUITS

__all__ = [
    "Table1Result",
    "Table2Result",
    "HeuristicOutcome",
    "CircuitBasicResult",
    "Table6Row",
    "ExperimentResults",
    "run_table1",
    "run_table2",
    "run_basic_experiments",
    "run_table6",
    "run_all",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_table7",
]


# ----------------------------------------------------------------------
# Table 1: s27 enumeration example
# ----------------------------------------------------------------------


@dataclass
class Table1Result:
    """Outcome of the paper's s27 walk-through (N_P = 20 paths)."""

    circuit: str
    cap_paths: int
    kept_paths: list[tuple[str, ...]]
    kept_lengths: list[int]
    pruned_complete: int
    min_length: int
    max_length: int


def run_table1(max_paths: int = 20, use_distances: bool = False) -> Table1Result:
    """Reproduce the s27 enumeration of Section 3.1 / Table 1."""
    netlist = resolve_circuit("s27")
    result = enumerate_paths(
        netlist,
        max_faults=2 * max_paths,  # the example counts paths, not faults
        use_distances=use_distances,
    )
    return Table1Result(
        circuit="s27",
        cap_paths=max_paths,
        kept_paths=[path.names(netlist) for path in result.paths],
        kept_lengths=[path.length for path in result.paths],
        pruned_complete=result.pruned_complete,
        min_length=result.min_kept_length,
        max_length=result.max_kept_length,
    )


def format_table1(result: Table1Result) -> str:
    rows = [
        (" -> ".join(names), length)
        for names, length in zip(result.kept_paths, result.kept_lengths)
    ]
    table = render_table(
        ["path", "len"],
        rows,
        title=(
            f"Table 1: {result.circuit} bounded enumeration "
            f"(cap {result.cap_paths} paths; kept {len(rows)}, "
            f"lengths {result.min_length}..{result.max_length}, "
            f"pruned {result.pruned_complete} short complete paths)"
        ),
    )
    return table


# ----------------------------------------------------------------------
# Table 2: length table
# ----------------------------------------------------------------------


@dataclass
class Table2Result:
    """L_i and N_p(L_i) rows for one circuit."""

    circuit: str
    rows: list[tuple[int, int, int]]  # (i, L_i, N_p(L_i))


def run_table2(
    scale: str | ExperimentScale = "default",
    circuit: str = "s1423_proxy",
    max_rows: int = 20,
) -> Table2Result:
    """Length table of the enumerated fault population (paper's Table 2)."""
    scale = get_scale(scale)
    netlist = resolve_circuit(circuit)
    enumeration = enumerate_paths(netlist, max_faults=scale.max_faults)
    from ..faults.fault import faults_of_paths

    table = length_table_for_faults(faults_of_paths(enumeration.paths))
    rows = [(row.index, row.length, row.cumulative) for row in table][:max_rows]
    return Table2Result(circuit=circuit, rows=rows)


def format_table2(result: Table2Result) -> str:
    return render_table(
        ["i", "L_i", "N_p(L_i)"],
        result.rows,
        title=f"Table 2: numbers of faults in {result.circuit}",
    )


# ----------------------------------------------------------------------
# Tables 3, 4, 5: basic generation with the four heuristics
# ----------------------------------------------------------------------


@dataclass
class HeuristicOutcome:
    """One basic-generation run (one circuit, one heuristic)."""

    detected_p0: int
    tests: int
    detected_p01: int
    runtime_seconds: float


@dataclass
class CircuitBasicResult:
    """All four heuristic runs for one circuit."""

    circuit: str
    i0: int
    p0_total: int
    p01_total: int
    outcomes: dict[str, HeuristicOutcome] = field(default_factory=dict)


def run_basic_experiments(
    scale: str | ExperimentScale = "default",
    circuits: Sequence[str] = TABLE3_CIRCUITS,
    heuristics: Sequence[str] = HEURISTICS,
) -> dict[str, CircuitBasicResult]:
    """Run the basic procedure for every circuit x heuristic (Tables 3-5).

    Target sets are built once per circuit and shared across heuristics;
    Table 5's accidental-detection numbers come from fault-simulating each
    run's test set against ``P0 u P1``.
    """
    scale = get_scale(scale)
    results: dict[str, CircuitBasicResult] = {}
    for name in circuits:
        netlist = resolve_circuit(name)
        targets = prepare_targets(
            netlist,
            max_faults=scale.max_faults,
            p0_min_faults=scale.p0_min_faults,
        )
        simulator = FaultSimulator(netlist, targets.all_records)
        entry = CircuitBasicResult(
            circuit=name,
            i0=targets.i0,
            p0_total=len(targets.p0),
            p01_total=len(targets.all_records),
        )
        for heuristic in heuristics:
            config = AtpgConfig(
                heuristic=heuristic,
                seed=scale.seed,
                max_secondary_attempts=scale.max_secondary_attempts,
            )
            run = generate_basic(netlist, targets.p0, config)
            detected_p01, _ = simulator.coverage(run.test_vectors)
            entry.outcomes[heuristic] = HeuristicOutcome(
                detected_p0=run.detected_by_pool[0],
                tests=run.num_tests,
                detected_p01=detected_p01,
                runtime_seconds=run.runtime_seconds,
            )
        results[name] = entry
    return results


def _basic_rows(results: Mapping[str, CircuitBasicResult], key):
    rows = []
    for name, entry in results.items():
        rows.append(
            [name, entry.i0]
            + [key(entry, entry.outcomes[h]) for h in HEURISTICS if h in entry.outcomes]
        )
    return rows


def format_table3(results: Mapping[str, CircuitBasicResult]) -> str:
    rows = []
    for name, entry in results.items():
        rows.append(
            [name, entry.i0, entry.p0_total]
            + [entry.outcomes[h].detected_p0 for h in HEURISTICS if h in entry.outcomes]
        )
    return render_table(
        ["circuit", "i0", "P0 flts", "uncomp", "arbit", "length", "values"],
        rows,
        title="Table 3: basic test generation using P0 (detected faults)",
    )


def format_table4(results: Mapping[str, CircuitBasicResult]) -> str:
    rows = _basic_rows(results, lambda entry, outcome: outcome.tests)
    return render_table(
        ["circuit", "i0", "uncomp", "arbit", "length", "values"],
        rows,
        title="Table 4: basic test generation using P0 (numbers of tests)",
    )


def format_table5(results: Mapping[str, CircuitBasicResult]) -> str:
    rows = []
    for name, entry in results.items():
        rows.append(
            [name, entry.i0, entry.p01_total]
            + [
                entry.outcomes[h].detected_p01
                for h in HEURISTICS
                if h in entry.outcomes
            ]
        )
    return render_table(
        ["circuit", "i0", "P0,P1 flts", "uncomp", "arbit", "length", "values"],
        rows,
        title="Table 5: simulation of P0 u P1 (accidental detection)",
    )


# ----------------------------------------------------------------------
# Table 6: enrichment
# ----------------------------------------------------------------------


@dataclass
class Table6Row:
    """One circuit's enrichment outcome."""

    circuit: str
    i0: int
    p0_total: int
    p0_detected: int
    p01_total: int
    p01_detected: int
    tests: int
    runtime_seconds: float


def run_table6(
    scale: str | ExperimentScale = "default",
    circuits: Sequence[str] = TABLE6_CIRCUITS,
) -> list[Table6Row]:
    """The proposed enrichment procedure on each circuit (Table 6)."""
    scale = get_scale(scale)
    rows: list[Table6Row] = []
    for name in circuits:
        report = enrich_circuit(
            name,
            max_faults=scale.max_faults,
            p0_min_faults=scale.p0_min_faults,
            seed=scale.seed,
            max_secondary_attempts=scale.max_secondary_attempts,
        )
        rows.append(
            Table6Row(
                circuit=name,
                i0=report.targets.i0,
                p0_total=report.p0_total,
                p0_detected=report.p0_detected,
                p01_total=report.p01_total,
                p01_detected=report.p01_detected,
                tests=report.num_tests,
                runtime_seconds=report.result.runtime_seconds,
            )
        )
    return rows


def format_table6(rows: Sequence[Table6Row]) -> str:
    return render_table(
        [
            "circuit",
            "i0",
            "P0 total",
            "P0 detect",
            "P0,P1 total",
            "P0,P1 detect",
            "tests",
        ],
        [
            (
                row.circuit,
                row.i0,
                row.p0_total,
                row.p0_detected,
                row.p01_total,
                row.p01_detected,
                row.tests,
            )
            for row in rows
        ],
        title="Table 6: results of test enrichment using P0 and P1",
    )


# ----------------------------------------------------------------------
# Table 7: run-time ratios
# ----------------------------------------------------------------------


def format_table7(
    basic: Mapping[str, CircuitBasicResult], enriched: Sequence[Table6Row]
) -> str:
    """Run-time ratio RT_enrich / RT_basic for the values heuristic."""
    enriched_by_name = {row.circuit: row for row in enriched}
    rows = []
    for name, entry in basic.items():
        if name not in enriched_by_name or "values" not in entry.outcomes:
            continue
        basic_rt = entry.outcomes["values"].runtime_seconds
        enrich_rt = enriched_by_name[name].runtime_seconds
        ratio = enrich_rt / basic_rt if basic_rt > 0 else float("inf")
        rows.append((name, entry.i0, f"{ratio:.2f}"))
    return render_table(
        ["circuit", "i0", "ratio"],
        rows,
        title="Table 7: run time ratios (enrich / basic, values heuristic)",
    )


# ----------------------------------------------------------------------
# Everything at once (with JSON caching for the benchmark harness)
# ----------------------------------------------------------------------


@dataclass
class ExperimentResults:
    """All measured data needed to print Tables 1-7."""

    scale: str
    table1: Table1Result
    table2: Table2Result
    basic: dict[str, CircuitBasicResult]
    table6: list[Table6Row]

    def format_all(self) -> str:
        """Render every table, separated by blank lines."""
        return "\n\n".join(
            [
                format_table1(self.table1),
                format_table2(self.table2),
                format_table3(self.basic),
                format_table4(self.basic),
                format_table5(self.basic),
                format_table6(self.table6),
                format_table7(self.basic, self.table6),
            ]
        )

    def to_json(self) -> str:
        """Serialize for caching (see ``from_json``)."""
        payload = {
            "scale": self.scale,
            "table1": asdict(self.table1),
            "table2": asdict(self.table2),
            "basic": {k: asdict(v) for k, v in self.basic.items()},
            "table6": [asdict(row) for row in self.table6],
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResults":
        payload = json.loads(text)
        table1 = Table1Result(**{
            **payload["table1"],
            "kept_paths": [tuple(p) for p in payload["table1"]["kept_paths"]],
        })
        table2 = Table2Result(
            circuit=payload["table2"]["circuit"],
            rows=[tuple(r) for r in payload["table2"]["rows"]],
        )
        basic = {}
        for name, entry in payload["basic"].items():
            outcomes = {
                h: HeuristicOutcome(**o) for h, o in entry["outcomes"].items()
            }
            basic[name] = CircuitBasicResult(
                circuit=entry["circuit"],
                i0=entry["i0"],
                p0_total=entry["p0_total"],
                p01_total=entry["p01_total"],
                outcomes=outcomes,
            )
        table6 = [Table6Row(**row) for row in payload["table6"]]
        return cls(
            scale=payload["scale"],
            table1=table1,
            table2=table2,
            basic=basic,
            table6=table6,
        )


def run_all(
    scale: str | ExperimentScale = "default",
    circuits: Sequence[str] = TABLE3_CIRCUITS,
    table6_circuits: Sequence[str] = TABLE6_CIRCUITS,
) -> ExperimentResults:
    """Regenerate the data behind every table of the paper."""
    scale = get_scale(scale)
    return ExperimentResults(
        scale=scale.name,
        table1=run_table1(),
        table2=run_table2(scale),
        basic=run_basic_experiments(scale, circuits),
        table6=run_table6(scale, table6_circuits),
    )
