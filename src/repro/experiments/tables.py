"""Drivers that regenerate every table of the paper's evaluation.

Each ``run_*`` function returns the plain dataclasses of
:mod:`repro.experiments.results`; the ``format_*`` renderers live in
:mod:`repro.experiments.formatters` (both re-exported here for
compatibility).  All drivers route through the engine layer: pass one
:class:`repro.engine.Engine` and every table shares one
:class:`~repro.engine.CircuitSession` per circuit, so path enumeration,
target-set construction and simulator compilation happen exactly once per
circuit across the whole sweep -- the same reuse the paper's experiments
rely on.  ``run_all`` does this automatically.

Mapping to the paper:

* Table 1 -- bounded path enumeration on s27 (N_P = 20 paths).
* Table 2 -- L_i / N_p(L_i) length table of the s1423 stand-in.
* Table 3 -- faults of P0 detected by the basic procedure, 4 heuristics.
* Table 4 -- numbers of tests for the same runs.
* Table 5 -- accidental P0 u P1 detection of the basic test sets.
* Table 6 -- the enrichment procedure on 8 + 3 circuits.
* Table 7 -- run-time ratio enrichment / basic (values heuristic).
"""

from __future__ import annotations

from typing import Sequence

from ..atpg import AtpgConfig
from ..atpg.enrich import EnrichmentReport
from ..engine import CircuitSession, Engine
from ..faults.fault import faults_of_paths
from ..parallel import (
    CircuitJob,
    FaultShardJob,
    ParallelRunner,
    RunCheckpoint,
    merge_shard_results,
    resolve_jobs,
)
from ..paths.lengths import length_table_for_faults
from ..robustness import Budget, RetryPolicy
from .formatters import (
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    format_table7,
)
from .results import (
    CircuitBasicResult,
    ExperimentResults,
    HeuristicOutcome,
    Table1Result,
    Table2Result,
    Table6Row,
)
from .scale import ExperimentScale, get_scale
from .workloads import HEURISTICS, TABLE3_CIRCUITS, TABLE6_CIRCUITS

__all__ = [
    "Table1Result",
    "Table2Result",
    "HeuristicOutcome",
    "CircuitBasicResult",
    "Table6Row",
    "ExperimentResults",
    "run_table1",
    "run_table2",
    "run_basic_circuit",
    "run_basic_experiments",
    "run_table6_circuit",
    "run_table6",
    "run_all",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_table7",
]


# ----------------------------------------------------------------------
# Table 1: s27 enumeration example
# ----------------------------------------------------------------------


def run_table1(
    max_paths: int = 20,
    use_distances: bool = False,
    engine: Engine | None = None,
) -> Table1Result:
    """Reproduce the s27 enumeration of Section 3.1 / Table 1."""
    session = (engine or Engine()).session("s27")
    result = session.enumeration(
        # the example counts paths, not faults
        max_faults=2 * max_paths,
        use_distances=use_distances,
    )
    return Table1Result(
        circuit="s27",
        cap_paths=max_paths,
        kept_paths=[path.names(session.netlist) for path in result.paths],
        kept_lengths=[path.length for path in result.paths],
        pruned_complete=result.pruned_complete,
        min_length=result.min_kept_length,
        max_length=result.max_kept_length,
    )


# ----------------------------------------------------------------------
# Table 2: length table
# ----------------------------------------------------------------------


def run_table2(
    scale: str | ExperimentScale = "default",
    circuit: str = "s1423_proxy",
    max_rows: int = 20,
    engine: Engine | None = None,
) -> Table2Result:
    """Length table of the enumerated fault population (paper's Table 2)."""
    scale = get_scale(scale)
    session = (engine or Engine()).session(circuit)
    enumeration = session.enumeration(max_faults=scale.max_faults)
    table = length_table_for_faults(faults_of_paths(enumeration.paths))
    rows = [(row.index, row.length, row.cumulative) for row in table][:max_rows]
    return Table2Result(circuit=circuit, rows=rows)


# ----------------------------------------------------------------------
# Tables 3, 4, 5: basic generation with the four heuristics
# ----------------------------------------------------------------------


def _resolve_budget(engine: Engine, budget: Budget | None) -> Budget | None:
    """An explicit ``budget`` argument wins over ``engine.budget``.

    Null budgets normalize to ``None`` so the unbudgeted fast path stays
    byte-identical to the pre-budget behaviour.
    """
    if budget is not None:
        return None if budget.is_null else budget
    return engine.budget


def run_basic_circuit(
    session: CircuitSession,
    scale: str | ExperimentScale = "default",
    heuristics: Sequence[str] | None = None,
) -> CircuitBasicResult:
    """One circuit's basic runs across ``heuristics`` (Tables 3-5 unit).

    This is the per-circuit body shared by the serial sweep below and
    :mod:`repro.parallel`'s pool workers.  Target sets are built once per
    circuit and shared across heuristics; Table 5's accidental-detection
    numbers come from fault-simulating each run's test set against
    ``P0 u P1`` with the session-cached simulator.
    """
    scale = get_scale(scale)
    if heuristics is None:
        heuristics = HEURISTICS
    targets = session.target_sets(
        max_faults=scale.max_faults,
        p0_min_faults=scale.p0_min_faults,
    )
    simulator = session.fault_simulator(targets.all_records)
    entry = CircuitBasicResult(
        circuit=session.netlist.name,
        i0=targets.i0,
        p0_total=len(targets.p0),
        p01_total=len(targets.all_records),
    )
    for heuristic in heuristics:
        config = AtpgConfig(
            heuristic=heuristic,
            seed=scale.seed,
            max_secondary_attempts=scale.max_secondary_attempts,
        )
        run = session.generate_basic(targets.p0, config)
        detected_p01, _ = simulator.coverage(run.test_vectors)
        entry.outcomes[heuristic] = HeuristicOutcome(
            detected_p0=run.detected_by_pool[0],
            tests=run.num_tests,
            detected_p01=detected_p01,
            runtime_seconds=run.runtime_seconds,
            aborted=run.num_aborted,
        )
    return entry


def run_basic_experiments(
    scale: str | ExperimentScale = "default",
    circuits: Sequence[str] = TABLE3_CIRCUITS,
    heuristics: Sequence[str] = HEURISTICS,
    engine: Engine | None = None,
    jobs: int | None = 1,
    max_retries: int = 1,
    timeout: float | None = None,
    budget: Budget | None = None,
) -> dict[str, CircuitBasicResult]:
    """Run the basic procedure for every circuit x heuristic (Tables 3-5).

    ``jobs`` fans circuits out over :class:`repro.parallel.ParallelRunner`
    (``None`` = all CPUs); results are keyed in ``circuits`` order either
    way and identical to the serial path up to wall-clock fields.
    ``max_retries``/``timeout`` configure the runner's fault tolerance;
    ``budget`` caps per-fault resources (see :mod:`repro.robustness`) --
    faults it denies a verdict come back ``aborted`` instead of failing
    the sweep.
    """
    scale = get_scale(scale)
    engine = engine or Engine()
    engine.budget = _resolve_budget(engine, budget)
    if resolve_jobs(jobs) > 1 and len(circuits) > 1:
        runner = ParallelRunner(
            jobs, engine=engine, max_retries=max_retries, timeout=timeout
        )
        outcomes = runner.run(
            CircuitJob(name, scale, tuple(heuristics), run_basic=True)
            for name in circuits
        )
        return {result.circuit: result.basic for result in outcomes}
    return {
        name: run_basic_circuit(engine.session(name), scale, heuristics)
        for name in circuits
    }


# ----------------------------------------------------------------------
# Table 6: enrichment
# ----------------------------------------------------------------------


def run_table6_circuit(
    session: CircuitSession,
    scale: str | ExperimentScale = "default",
) -> Table6Row:
    """One circuit's enrichment run (Table 6 unit; see
    :func:`run_basic_circuit` for the sharing contract)."""
    scale = get_scale(scale)
    targets = session.target_sets(
        max_faults=scale.max_faults,
        p0_min_faults=scale.p0_min_faults,
    )
    config = AtpgConfig(
        heuristic="values",
        seed=scale.seed,
        max_secondary_attempts=scale.max_secondary_attempts,
    )
    report = session.generate_enriched(targets, config)
    assert isinstance(report, EnrichmentReport)
    return Table6Row(
        circuit=session.netlist.name,
        i0=report.targets.i0,
        p0_total=report.p0_total,
        p0_detected=report.p0_detected,
        p01_total=report.p01_total,
        p01_detected=report.p01_detected,
        tests=report.num_tests,
        runtime_seconds=report.result.runtime_seconds,
        aborted=report.aborted,
        aborted_faults=[f.as_row() for f in report.aborted_faults],
    )


def run_table6(
    scale: str | ExperimentScale = "default",
    circuits: Sequence[str] = TABLE6_CIRCUITS,
    engine: Engine | None = None,
    jobs: int | None = 1,
    max_retries: int = 1,
    timeout: float | None = None,
    budget: Budget | None = None,
) -> list[Table6Row]:
    """The proposed enrichment procedure on each circuit (Table 6).

    ``jobs`` fans circuits out over :class:`repro.parallel.ParallelRunner`
    (``None`` = all CPUs); rows come back in ``circuits`` order either way.
    ``max_retries``/``timeout`` configure the runner's fault tolerance;
    ``budget`` enables graceful degradation (aborted faults are reported
    in each row instead of failing the sweep).
    """
    scale = get_scale(scale)
    engine = engine or Engine()
    engine.budget = _resolve_budget(engine, budget)
    if resolve_jobs(jobs) > 1 and len(circuits) > 1:
        runner = ParallelRunner(
            jobs, engine=engine, max_retries=max_retries, timeout=timeout
        )
        outcomes = runner.run(
            CircuitJob(name, scale, run_table6=True) for name in circuits
        )
        return [result.table6 for result in outcomes]
    return [run_table6_circuit(engine.session(name), scale) for name in circuits]


# ----------------------------------------------------------------------
# Everything at once
# ----------------------------------------------------------------------


def run_all(
    scale: str | ExperimentScale = "default",
    circuits: Sequence[str] = TABLE3_CIRCUITS,
    table6_circuits: Sequence[str] = TABLE6_CIRCUITS,
    engine: Engine | None = None,
    jobs: int | None = 1,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    max_retries: int = 1,
    timeout: float | None = None,
    budget: Budget | None = None,
    shards: int | None = None,
    shard_min_faults: int = 1,
    retry_policy: "RetryPolicy | None" = None,
    heartbeat_dir: str | None = None,
    heartbeat_interval: float | None = None,
    stale_after: float | None = None,
) -> ExperimentResults:
    """Regenerate the data behind every table of the paper.

    One engine backs the whole sweep: Tables 3-5 and 6-7 share each
    circuit's enumeration and target sets, and Table 2 reuses the
    enumeration of its circuit when it also appears in ``circuits``.

    With ``jobs`` > 1 (``None`` = all CPUs) the per-circuit work of
    Tables 3-7 fans out over one shared process pool -- a circuit in both
    sweeps is a *single* job, so its worker session still builds each
    artifact once.  Tables 1-2 are cheap single-circuit work and stay in
    the parent.  Results are merged in circuit order and identical to
    ``jobs=1`` up to wall-clock fields.

    ``checkpoint_dir`` persists each circuit's result as it completes
    (see :class:`repro.parallel.RunCheckpoint`); with ``resume=True``,
    circuits whose matching checkpoint already exists are loaded instead
    of recomputed -- the merged output is ``canonical_json``-identical to
    an uninterrupted run.  Without ``resume``, an existing checkpoint
    directory is cleared first (a fresh run must not inherit stale
    files).  ``max_retries``/``timeout`` are the runner's fault-tolerance
    knobs; a circuit that still fails after its retries raises
    :class:`repro.parallel.ParallelRunError` with every completed
    circuit's result salvaged (and checkpointed, when enabled).

    ``budget`` (or a pre-assigned ``engine.budget``) enables graceful
    degradation: per-fault resource trips surface as aborted faults in
    the results rather than failures, and the run still exits normally.
    The budget joins the checkpoint parameter envelope, so resumed runs
    never reuse results computed under a different budget.

    ``shards`` opts into intra-circuit fault sharding (see
    :mod:`repro.parallel.sharding`): every circuit of Tables 3-7 is
    split into ``shards`` deterministic slices of its primary-fault
    universe, each its own pool task, merged in canonical fault order.
    The sharded output is identical for every ``(shards, jobs)``
    combination -- ``shards=1, jobs=1`` is its serial reference -- but
    uses the shard-stable generation semantics, which is a *different*
    (equally deterministic) contract from the legacy ``shards=None``
    path; the two are not byte-identical to each other.
    ``shard_min_faults`` collapses the plan for small circuits: a
    circuit never uses more shards than ``|P0| // shard_min_faults``.

    ``retry_policy`` supersedes ``max_retries`` with a full backoff
    policy, and ``heartbeat_dir``/``heartbeat_interval``/``stale_after``
    enable the runner's per-job heartbeats and stuck-worker watchdog
    (see :class:`repro.parallel.ParallelRunner`) -- the supervision
    hooks the ``repro serve`` daemon threads through here.
    """
    scale = get_scale(scale)
    engine = engine or Engine()
    engine.budget = _resolve_budget(engine, budget)
    n_jobs = resolve_jobs(jobs)
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shard_min_faults < 1:
        raise ValueError(
            f"shard_min_faults must be >= 1, got {shard_min_faults}"
        )
    basic_names = list(circuits)
    table6_names = list(table6_circuits)
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = RunCheckpoint(
            checkpoint_dir,
            budget=engine.budget,
            timeout=timeout,
            stats=engine.stats,
        )
        if not resume:
            checkpoint.clear()
    elif resume:
        raise ValueError("resume=True requires a checkpoint_dir")
    ordered = basic_names + [
        name for name in table6_names if name not in basic_names
    ]
    supervision: dict = {}
    if retry_policy is not None:
        supervision["retry_policy"] = retry_policy
    if heartbeat_dir is not None:
        supervision["heartbeat_dir"] = heartbeat_dir
    if heartbeat_interval is not None:
        supervision["heartbeat_interval"] = heartbeat_interval
    if stale_after is not None:
        supervision["stale_after"] = stale_after
    runner = ParallelRunner(
        n_jobs,
        engine=engine,
        max_retries=max_retries,
        timeout=timeout,
        **supervision,
    )
    if shards is not None:
        shard_jobs = [
            FaultShardJob(
                circuit=name,
                scale=scale,
                shard_index=index,
                shard_count=shards,
                heuristics=tuple(HEURISTICS),
                run_basic=name in basic_names,
                run_table6=name in table6_names,
                min_faults=shard_min_faults,
            )
            for name in ordered
            for index in range(shards)
        ]
        by_circuit: dict[str, list] = {name: [] for name in ordered}
        for result in runner.run(shard_jobs, checkpoint=checkpoint):
            by_circuit[result.circuit].append(result)
        # Re-apply the *parent* abort cap at merge time: shard-local
        # shares are floored at 1, so their sum may exceed it.
        abort_limit = engine.budget.abort_limit if engine.budget else None
        merged = {
            name: merge_shard_results(by_circuit[name], abort_limit=abort_limit)
            for name in ordered
        }
        basic = {name: merged[name][0] for name in basic_names}
        table6 = [merged[name][1] for name in table6_names]
    else:
        outcomes = {
            result.circuit: result
            for result in runner.run(
                [
                    CircuitJob(
                        name,
                        scale,
                        tuple(HEURISTICS),
                        run_basic=name in basic_names,
                        run_table6=name in table6_names,
                    )
                    for name in ordered
                ],
                checkpoint=checkpoint,
            )
        }
        basic = {name: outcomes[name].basic for name in basic_names}
        table6 = [outcomes[name].table6 for name in table6_names]
    return ExperimentResults(
        scale=scale.name,
        table1=run_table1(engine=engine),
        table2=run_table2(scale, engine=engine),
        basic=basic,
        table6=table6,
    )
