"""Experiment drivers reproducing the paper's Tables 1-7."""

from .coverage import LengthCoverage, coverage_by_length, format_coverage_profile
from .estimate import CoverageEstimate, estimate_coverage
from .formatters import (
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    format_table7,
)
from .report import render_table
from .results import (
    CircuitBasicResult,
    ExperimentResults,
    HeuristicOutcome,
    Table1Result,
    Table2Result,
    Table6Row,
)
from .scale import SCALES, ExperimentScale, get_scale
from .tables import (
    run_all,
    run_basic_circuit,
    run_basic_experiments,
    run_table1,
    run_table2,
    run_table6,
    run_table6_circuit,
)
from .workloads import (
    HEURISTICS,
    TABLE3_CIRCUITS,
    TABLE6_CIRCUITS,
    TABLE6_EXTRA_CIRCUITS,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "run_table1",
    "run_table2",
    "run_basic_circuit",
    "run_basic_experiments",
    "run_table6_circuit",
    "run_table6",
    "run_all",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
    "format_table6",
    "format_table7",
    "Table1Result",
    "Table2Result",
    "Table6Row",
    "HeuristicOutcome",
    "CircuitBasicResult",
    "ExperimentResults",
    "TABLE3_CIRCUITS",
    "TABLE6_CIRCUITS",
    "TABLE6_EXTRA_CIRCUITS",
    "HEURISTICS",
    "render_table",
    "LengthCoverage",
    "coverage_by_length",
    "format_coverage_profile",
    "CoverageEstimate",
    "estimate_coverage",
]
