"""Result containers for the paper's Tables 1-7.

Plain dataclasses produced by the drivers in
:mod:`repro.experiments.tables` and rendered by
:mod:`repro.experiments.formatters`; :class:`ExperimentResults` bundles
everything with JSON round-tripping for the benchmark harness and the
``repro-pdf tables --from-json`` cache path.  The per-row ``from_dict``
constructors are also the deserialization half of the parallel runner's
checkpoint files (:mod:`repro.parallel.checkpoint`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "Table1Result",
    "Table2Result",
    "HeuristicOutcome",
    "CircuitBasicResult",
    "Table6Row",
    "ExperimentResults",
]


def _strip_empty_budget_keys(payload: dict) -> None:
    """Drop falsy budget-taxonomy keys from a serialized row in place.

    Keeps unbudgeted output byte-identical to the pre-budget format; the
    ``from_dict`` constructors restore the dataclass defaults.
    """
    for key in ("aborted", "aborted_faults"):
        if key in payload and not payload[key]:
            del payload[key]


@dataclass
class Table1Result:
    """Outcome of the paper's s27 walk-through (N_P = 20 paths)."""

    circuit: str
    cap_paths: int
    kept_paths: list[tuple[str, ...]]
    kept_lengths: list[int]
    pruned_complete: int
    min_length: int
    max_length: int

    @classmethod
    def from_dict(cls, payload: dict) -> "Table1Result":
        return cls(**{
            **payload,
            "kept_paths": [tuple(p) for p in payload["kept_paths"]],
        })


@dataclass
class Table2Result:
    """L_i and N_p(L_i) rows for one circuit."""

    circuit: str
    rows: list[tuple[int, int, int]]  # (i, L_i, N_p(L_i))

    @classmethod
    def from_dict(cls, payload: dict) -> "Table2Result":
        return cls(
            circuit=payload["circuit"],
            rows=[tuple(r) for r in payload["rows"]],
        )


@dataclass
class HeuristicOutcome:
    """One basic-generation run (one circuit, one heuristic).

    ``aborted`` counts the target faults a resource budget denied a
    verdict (the third leg of the detected / untestable / aborted
    taxonomy); it is 0 -- and omitted from serialized output -- on
    unbudgeted runs.
    """

    detected_p0: int
    tests: int
    detected_p01: int
    runtime_seconds: float
    aborted: int = 0

    @classmethod
    def from_dict(cls, payload: dict) -> "HeuristicOutcome":
        return cls(**payload)


@dataclass
class CircuitBasicResult:
    """All four heuristic runs for one circuit."""

    circuit: str
    i0: int
    p0_total: int
    p01_total: int
    outcomes: dict[str, HeuristicOutcome] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, payload: dict) -> "CircuitBasicResult":
        return cls(
            circuit=payload["circuit"],
            i0=payload["i0"],
            p0_total=payload["p0_total"],
            p01_total=payload["p01_total"],
            outcomes={
                h: HeuristicOutcome.from_dict(o)
                for h, o in payload["outcomes"].items()
            },
        )


@dataclass
class Table6Row:
    """One circuit's enrichment outcome.

    ``aborted`` / ``aborted_faults`` carry the budget-degradation
    breakdown: each entry of ``aborted_faults`` is a JSON-ready
    ``[fault, pool, reason, phase]`` row
    (:meth:`repro.robustness.AbortedFault.as_row`).  Both stay empty --
    and are omitted from serialized output -- on unbudgeted runs.
    """

    circuit: str
    i0: int
    p0_total: int
    p0_detected: int
    p01_total: int
    p01_detected: int
    tests: int
    runtime_seconds: float
    aborted: int = 0
    aborted_faults: list = field(default_factory=list)

    @classmethod
    def from_dict(cls, payload: dict) -> "Table6Row":
        return cls(**payload)


@dataclass
class ExperimentResults:
    """All measured data needed to print Tables 1-7."""

    scale: str
    table1: Table1Result
    table2: Table2Result
    basic: dict[str, CircuitBasicResult]
    table6: list[Table6Row]

    def format_all(self) -> str:
        """Render every table, separated by blank lines.

        Degraded (budgeted) runs append the aborted-fault report; it
        renders from the serialized rows alone, so ``--from-json``
        output is identical to the fresh run that produced the file.
        """
        from .formatters import (
            format_aborted_faults,
            format_table1,
            format_table2,
            format_table3,
            format_table4,
            format_table5,
            format_table6,
            format_table7,
        )

        sections = [
            format_table1(self.table1),
            format_table2(self.table2),
            format_table3(self.basic),
            format_table4(self.basic),
            format_table5(self.basic),
            format_table6(self.table6),
            format_table7(self.basic, self.table6),
        ]
        aborted = format_aborted_faults(self.table6)
        if aborted:
            sections.append(aborted)
        return "\n\n".join(sections)

    def to_json(self) -> str:
        """Serialize for caching (see ``from_json``).

        Budget-taxonomy keys (``aborted``, ``aborted_faults``) are
        emitted only when non-empty: an unbudgeted run's JSON is
        byte-identical to the output before budgets existed, so cached
        results, golden files and downstream diffs stay stable.
        """
        payload = {
            "scale": self.scale,
            "table1": asdict(self.table1),
            "table2": asdict(self.table2),
            "basic": {k: asdict(v) for k, v in self.basic.items()},
            "table6": [asdict(row) for row in self.table6],
        }
        for entry in payload["basic"].values():
            for outcome in entry["outcomes"].values():
                _strip_empty_budget_keys(outcome)
        for row in payload["table6"]:
            _strip_empty_budget_keys(row)
        return json.dumps(payload, indent=1)

    def canonical_json(self) -> str:
        """JSON with wall-clock fields zeroed.

        Every field except the measured ``runtime_seconds`` values is a
        deterministic function of ``(scale, circuits, seed)``; this is the
        determinism contract the parallel runner is tested against:
        ``run_all(..., jobs=N).canonical_json()`` is byte-identical for
        every ``N``.
        """
        payload = json.loads(self.to_json())
        for entry in payload["basic"].values():
            for outcome in entry["outcomes"].values():
                outcome["runtime_seconds"] = 0.0
        for row in payload["table6"]:
            row["runtime_seconds"] = 0.0
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResults":
        payload = json.loads(text)
        return cls(
            scale=payload["scale"],
            table1=Table1Result.from_dict(payload["table1"]),
            table2=Table2Result.from_dict(payload["table2"]),
            basic={
                name: CircuitBasicResult.from_dict(entry)
                for name, entry in payload["basic"].items()
            },
            table6=[Table6Row.from_dict(row) for row in payload["table6"]],
        )
