"""Circuit workloads for each experiment.

The paper's Tables 3-5 use eight circuits (five ISCAS-89, three ITC-99);
Table 6 adds three "more testable" resynthesized circuits.  Our proxies
carry the same names with a ``_proxy`` suffix; see DESIGN.md section 2 for
the substitution rationale and ``repro.circuit.library`` for the profiles.
"""

from __future__ import annotations

__all__ = [
    "TABLE3_CIRCUITS",
    "TABLE6_EXTRA_CIRCUITS",
    "TABLE6_CIRCUITS",
    "HEURISTICS",
]

#: Tables 3, 4, 5 and 7: the eight comparison circuits.
TABLE3_CIRCUITS: tuple[str, ...] = (
    "s641_proxy",
    "s953_proxy",
    "s1196_proxy",
    "s1423_proxy",
    "s1488_proxy",
    "b03_proxy",
    "b04_proxy",
    "b09_proxy",
)

#: The resynthesized circuits added in Table 6 (starred in the paper).
TABLE6_EXTRA_CIRCUITS: tuple[str, ...] = (
    "s1423r_proxy",
    "s5378r_proxy",
    "s9234r_proxy",
)

#: Table 6 evaluates the union.
TABLE6_CIRCUITS: tuple[str, ...] = TABLE3_CIRCUITS + TABLE6_EXTRA_CIRCUITS

#: Compaction heuristics compared in Tables 3-5, in paper column order.
HEURISTICS: tuple[str, ...] = ("uncomp", "arbit", "length", "values")
