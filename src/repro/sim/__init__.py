"""Simulation layer: waveform-triple simulators and robust fault simulation."""

from .batch import BatchSimulator, ConeSimulator
from .cover import CompiledRequirements, StackedRequirements
from .faultsim import FaultSimulator, detected_count, detection_matrix
from .logicsim import simulate_logic
from .packed import PackedConeSimulator
from .scalar import simulate_triples
from .testfile import (
    TestFileError,
    dump_tests,
    dumps_tests,
    load_tests,
    loads_tests,
)
from .vectors import TwoPatternTest
from .waveform import render_test, render_waveforms

__all__ = [
    "BatchSimulator",
    "ConeSimulator",
    "PackedConeSimulator",
    "CompiledRequirements",
    "StackedRequirements",
    "FaultSimulator",
    "detection_matrix",
    "detected_count",
    "simulate_triples",
    "simulate_logic",
    "TwoPatternTest",
    "dump_tests",
    "dumps_tests",
    "load_tests",
    "loads_tests",
    "TestFileError",
    "render_test",
    "render_waveforms",
]
