"""Reading and writing two-pattern test sets as text files.

The on-disk format is deliberately simple and diff-friendly -- one test
per line, the two patterns over the primary inputs in declaration order,
separated by ``->``::

    # circuit: s27
    # inputs: G0 G1 G2 G3 G5 G6 G7
    1101011 -> 0111010
    0011011 -> 1001011

``x`` is legal in patterns (partially specified tests).  The header
records the input order so a file can be validated against the circuit it
is later applied to.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from ..algebra.ternary import X, value_from_char
from ..algebra.triple import Triple
from ..circuit.netlist import Netlist
from .vectors import TwoPatternTest

__all__ = ["dump_tests", "dumps_tests", "load_tests", "loads_tests", "TestFileError"]


class TestFileError(ValueError):
    """Raised on malformed test files or circuit mismatches."""

    __test__ = False  # not a pytest test class despite the name


def dumps_tests(netlist: Netlist, tests: Sequence[TwoPatternTest]) -> str:
    """Serialize tests for ``netlist`` to the text format."""
    lines = [
        f"# circuit: {netlist.name}",
        f"# inputs: {' '.join(netlist.input_names)}",
    ]
    for test in tests:
        first, second = test.patterns(netlist)
        lines.append(f"{first} -> {second}")
    return "\n".join(lines) + "\n"


def dump_tests(
    path: str | Path, netlist: Netlist, tests: Sequence[TwoPatternTest]
) -> None:
    """Write tests to ``path``."""
    Path(path).write_text(dumps_tests(netlist, tests))


def loads_tests(text: str, netlist: Netlist) -> list[TwoPatternTest]:
    """Parse tests, validating the ``# circuit:`` and ``# inputs:``
    headers against ``netlist`` (files without headers are accepted)."""
    tests: list[TwoPatternTest] = []
    expected_inputs = list(netlist.input_names)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("circuit:"):
                declared_name = body.split(":", 1)[1].strip()
                if declared_name and declared_name != netlist.name:
                    raise TestFileError(
                        f"line {line_no}: test file is for circuit "
                        f"'{declared_name}', not '{netlist.name}'"
                    )
            elif body.startswith("inputs:"):
                declared = body.split(":", 1)[1].split()
                if declared != expected_inputs:
                    if len(declared) != len(expected_inputs):
                        detail = (
                            f"file has {len(declared)} inputs, circuit has "
                            f"{len(expected_inputs)}"
                        )
                    else:
                        pos, got, want = next(
                            (i, a, b)
                            for i, (a, b) in enumerate(
                                zip(declared, expected_inputs)
                            )
                            if a != b
                        )
                        detail = (
                            f"first difference at position {pos}: file has "
                            f"'{got}', circuit has '{want}'"
                        )
                    raise TestFileError(
                        f"line {line_no}: input order mismatch ({detail})"
                    )
            continue
        if "->" not in line:
            raise TestFileError(f"line {line_no}: missing '->' separator")
        first_text, second_text = (part.strip() for part in line.split("->", 1))
        if len(first_text) != len(expected_inputs) or len(second_text) != len(
            expected_inputs
        ):
            raise TestFileError(
                f"line {line_no}: pattern width {len(first_text)}/"
                f"{len(second_text)} does not match "
                f"{len(expected_inputs)} inputs"
            )
        assignment = {}
        for pi, first_char, second_char in zip(
            netlist.input_indices, first_text, second_text
        ):
            try:
                v1 = value_from_char(first_char)
                v3 = value_from_char(second_char)
            except ValueError as exc:
                raise TestFileError(f"line {line_no}: {exc}") from None
            mid = v1 if (v1 == v3 and v1 != X) else X
            assignment[pi] = Triple.of(v1, mid, v3)
        tests.append(TwoPatternTest(assignment))
    return tests


def load_tests(path: str | Path, netlist: Netlist) -> list[TwoPatternTest]:
    """Read tests from ``path``."""
    return loads_tests(Path(path).read_text(), netlist)
