"""Plain single-pattern three-valued logic simulation.

Used for cross-validation: positions 1 and 3 of the waveform-triple
simulators must behave exactly like two independent single-pattern
simulations (the intermediate position is the only place where the
two-pattern semantics differ).  Also handy for quick truth-table style
exploration of a netlist.
"""

from __future__ import annotations

from typing import Mapping

from ..algebra.ternary import (
    AND_TABLE,
    NOT_TABLE,
    ONE,
    OR_TABLE,
    X,
    XOR_TABLE,
    ZERO,
)
from ..circuit.netlist import GateType, Netlist

__all__ = ["simulate_logic"]

_REDUCE = {
    GateType.AND: (AND_TABLE, False),
    GateType.NAND: (AND_TABLE, True),
    GateType.OR: (OR_TABLE, False),
    GateType.NOR: (OR_TABLE, True),
    GateType.XOR: (XOR_TABLE, False),
    GateType.XNOR: (XOR_TABLE, True),
}


def simulate_logic(netlist: Netlist, pi_values: Mapping[str, int]) -> dict[str, int]:
    """Evaluate one input pattern; unknown inputs default to ``x``.

    ``pi_values`` maps input names to ternary codes (0, 1 or
    :data:`repro.algebra.ternary.X`).  Returns a code for every node.
    """
    unknown_names = set(pi_values) - set(netlist.input_names)
    if unknown_names:
        raise ValueError(f"not primary inputs: {sorted(unknown_names)}")

    values = [X] * len(netlist)
    for index in netlist.topo_order:
        node = netlist.node_at(index)
        if node.is_input:
            values[index] = pi_values.get(node.name, X)
        elif node.gate_type is GateType.CONST0:
            values[index] = ZERO
        elif node.gate_type is GateType.CONST1:
            values[index] = ONE
        elif node.gate_type is GateType.BUF:
            values[index] = values[netlist.fanin_indices(index)[0]]
        elif node.gate_type is GateType.NOT:
            values[index] = int(NOT_TABLE[values[netlist.fanin_indices(index)[0]]])
        else:
            table, invert = _REDUCE[node.gate_type]
            fanin = netlist.fanin_indices(index)
            acc = values[fanin[0]]
            for operand in fanin[1:]:
                acc = int(table[acc, values[operand]])
            if invert:
                acc = int(NOT_TABLE[acc])
            values[index] = acc
    return {netlist.node_at(i).name: values[i] for i in range(len(netlist))}
