"""Vectorized levelized waveform-triple simulator.

Simulates ``K`` two-pattern assignments at once over a compiled netlist.
This is the workhorse behind both the test generator (which checks many
candidate input assignments per decision) and the fault simulator (which
simulates a whole test set in one call).

Internals
---------

Values use the *ordered* ternary encoding (0 -> 0, x -> 1, 1 -> 2) so AND is
``min`` and OR is ``max``; NOT is ``2 - v``.  The value state is an int8
array of shape ``(3, n_nodes, K)`` -- one plane per triple position.

The netlist is compiled once into per-level groups keyed by
``(gate_type, arity)``; each group evaluates with a handful of numpy
operations regardless of its gate count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algebra.ternary import FROM_ORD, ONE, TO_ORD, X, ZERO
from ..algebra.triple import Triple
from ..circuit.netlist import GateType, Netlist

__all__ = ["BatchSimulator"]

# Ordered-encoding constants.
_ORD0 = 0
_ORDX = 1
_ORD1 = 2

# XOR on the ordered encoding: x dominates, else boolean xor.
_XOR_ORD = np.array(
    [
        [_ORD0, _ORDX, _ORD1],
        [_ORDX, _ORDX, _ORDX],
        [_ORD1, _ORDX, _ORD0],
    ],
    dtype=np.int8,
)
_XOR_ORD.setflags(write=False)


@dataclass(frozen=True)
class _Group:
    """All gates of one (type, arity) within one level."""

    gate_type: GateType
    out_idx: np.ndarray  # (n,)
    in_idx: np.ndarray  # (n, arity)


class BatchSimulator:
    """Simulates batches of two-pattern assignments on one netlist.

    The simulator is stateless between calls; construct once per netlist
    and reuse (compilation walks the whole circuit).
    """

    def __init__(self, netlist: Netlist, stats=None) -> None:
        """``stats`` is an optional EngineStats-compatible sink (anything
        with ``count(name, n)``); when set, every ``run_codes`` call records
        ``batch.runs`` and ``batch.columns``."""
        self.netlist = netlist
        self.stats = stats
        self.n_nodes = len(netlist)
        self.pi_index = np.array(netlist.input_indices, dtype=np.int64)
        self._pi_pos = {int(node): row for row, node in enumerate(self.pi_index)}
        self._const0: list[int] = []
        self._const1: list[int] = []
        self._levels = self._compile()

    def _compile(self) -> list[list[_Group]]:
        netlist = self.netlist
        by_level: dict[int, dict[tuple[GateType, int], tuple[list[int], list[list[int]]]]]
        by_level = {}
        for index in netlist.topo_order:
            node = netlist.node_at(index)
            if node.is_input:
                continue
            if node.gate_type is GateType.CONST0:
                self._const0.append(index)
                continue
            if node.gate_type is GateType.CONST1:
                self._const1.append(index)
                continue
            level = netlist.level(index)
            fanin = list(netlist.fanin_indices(index))
            key = (node.gate_type, len(fanin))
            outs, ins = by_level.setdefault(level, {}).setdefault(key, ([], []))
            outs.append(index)
            ins.append(fanin)
        levels: list[list[_Group]] = []
        for level in sorted(by_level):
            groups = []
            for (gate_type, _arity), (outs, ins) in sorted(
                by_level[level].items(), key=lambda kv: (kv[0][0].value, kv[0][1])
            ):
                groups.append(
                    _Group(
                        gate_type=gate_type,
                        out_idx=np.array(outs, dtype=np.int64),
                        in_idx=np.array(ins, dtype=np.int64),
                    )
                )
            levels.append(groups)
        return levels

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def run_codes(self, pi_codes: np.ndarray) -> np.ndarray:
        """Simulate from raw ternary codes.

        ``pi_codes``: int8 array of shape ``(n_pis, 3, K)`` with values in
        {ZERO, ONE, X}.  Returns ``(n_nodes, 3, K)`` codes for every node.
        """
        n_pis, three, k = pi_codes.shape
        if three != 3 or n_pis != len(self.pi_index):
            raise ValueError(
                f"expected shape ({len(self.pi_index)}, 3, K), got {pi_codes.shape}"
            )
        if self.stats is not None:
            self.stats.count("batch.runs")
            self.stats.count("batch.columns", k)
        vals = np.full((3, self.n_nodes, k), _ORDX, dtype=np.int8)
        ord_in = TO_ORD[pi_codes]  # (n_pis, 3, K)
        for position in range(3):
            vals[position, self.pi_index, :] = ord_in[:, position, :]
        for index in self._const0:
            vals[:, index, :] = _ORD0
        for index in self._const1:
            vals[:, index, :] = _ORD1
        self._propagate(vals)
        out = FROM_ORD[vals]  # (3, n_nodes, K)
        return np.ascontiguousarray(out.transpose(1, 0, 2))

    def run_triples(self, assignments: list[dict[int, Triple]]) -> np.ndarray:
        """Simulate a list of sparse assignments (node index -> Triple).

        Unassigned primary inputs are ``xxx``.  Returns codes of shape
        ``(n_nodes, 3, K)`` with ``K = len(assignments)``.
        """
        k = len(assignments)
        pi_codes = np.full((len(self.pi_index), 3, k), X, dtype=np.int8)
        pi_pos = self._pi_pos
        for column, assignment in enumerate(assignments):
            for node, triple in assignment.items():
                row = pi_pos.get(node)
                if row is None:
                    raise ValueError(
                        f"node {node} is not a primary input of {self.netlist.name}"
                    )
                pi_codes[row, 0, column] = triple.v1
                pi_codes[row, 1, column] = triple.v2
                pi_codes[row, 2, column] = triple.v3
        return self.run_codes(pi_codes)

    def run_two_pattern(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        """Simulate fully/partially specified two-pattern tests.

        ``first``/``second``: ``(n_pis, K)`` ternary codes for pattern 1 and
        pattern 2.  The intermediate value of each input is its stable value
        when both patterns agree on a specified value, else ``x``.
        """
        if first.shape != second.shape:
            raise ValueError("pattern arrays must have identical shapes")
        mid = np.where((first == second) & (first != X), first, X).astype(np.int8)
        pi_codes = np.stack([first, mid, second], axis=1).astype(np.int8)
        return self.run_codes(pi_codes)

    # ------------------------------------------------------------------

    def _propagate(self, vals: np.ndarray) -> None:
        """Evaluate all levels in place on the ordered-encoding state."""
        for groups in self._levels:
            for group in groups:
                gathered = vals[:, group.in_idx, :]  # (3, n, arity, K)
                gate_type = group.gate_type
                if gate_type is GateType.AND:
                    result = gathered.min(axis=2)
                elif gate_type is GateType.NAND:
                    result = 2 - gathered.min(axis=2)
                elif gate_type is GateType.OR:
                    result = gathered.max(axis=2)
                elif gate_type is GateType.NOR:
                    result = 2 - gathered.max(axis=2)
                elif gate_type is GateType.BUF:
                    result = gathered[:, :, 0, :]
                elif gate_type is GateType.NOT:
                    result = 2 - gathered[:, :, 0, :]
                elif gate_type in (GateType.XOR, GateType.XNOR):
                    result = gathered[:, :, 0, :]
                    for operand in range(1, gathered.shape[2]):
                        result = _XOR_ORD[result, gathered[:, :, operand, :]]
                    if gate_type is GateType.XNOR:
                        result = 2 - result
                else:  # pragma: no cover - compile() filters these out
                    raise AssertionError(f"unexpected gate type {gate_type}")
                vals[:, group.out_idx, :] = result
