"""Vectorized levelized waveform-triple simulator.

Simulates ``K`` two-pattern assignments at once over a compiled netlist.
This is the workhorse behind both the test generator (which checks many
candidate input assignments per decision) and the fault simulator (which
simulates a whole test set in one call).

Internals
---------

Values use the *ordered* ternary encoding (0 -> 0, x -> 1, 1 -> 2) so AND is
``min`` and OR is ``max``; NOT is ``2 - v``.  The value state is an int8
array of shape ``(3, n_nodes, K)`` -- one plane per triple position.

The netlist is compiled once into per-level groups keyed by
``(gate_type, arity)``; each group evaluates with a handful of numpy
operations regardless of its gate count.

:meth:`BatchSimulator.restricted` compiles the same kernel over just the
transitive-fanin cone of a node set.  Justification only ever inspects the
values of its required lines, which depend exclusively on that cone, so the
cone simulator produces *identical* codes on cone nodes at a fraction of
the per-column cost (see :class:`ConeSimulator`).  Compilations are
LRU-cached per requirement-node key -- and deduplicated per resolved cone
-- so the many overlapping requirement sets of one ATPG run share them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..algebra.ternary import FROM_ORD, ONE, TO_ORD, X, ZERO
from ..algebra.triple import Triple
from ..circuit.analysis import input_cone
from ..circuit.netlist import GateType, Netlist
from ..envflags import BACKENDS, simulation_backend

__all__ = ["BatchSimulator", "ConeSimulator", "LRU_CACHE_SIZE"]

#: Shared bound for the per-simulator LRU caches (cone compilations here,
#: support lists in :class:`repro.atpg.justify.Justifier`).
LRU_CACHE_SIZE = 4096

# Ordered-encoding constants.
_ORD0 = 0
_ORDX = 1
_ORD1 = 2

# XOR on the ordered encoding: x dominates, else boolean xor.
_XOR_ORD = np.array(
    [
        [_ORD0, _ORDX, _ORD1],
        [_ORDX, _ORDX, _ORDX],
        [_ORD1, _ORDX, _ORD0],
    ],
    dtype=np.int8,
)
_XOR_ORD.setflags(write=False)


@dataclass(frozen=True)
class _Fused:
    """All gates of one reduction family within one level.

    Gate types sharing a reduction collapse into one op: ``min`` evaluates
    AND/NAND/BUF/NOT (BUF/NOT are arity-1 reductions), ``max`` evaluates
    OR/NOR, ``xor`` evaluates XOR/XNOR.  ``in_idx`` rows are padded to the
    family's max arity with the index of a dedicated pad row holding the
    reduction's neutral element (ordered 2 for ``min``, 0 for ``max`` and
    ``xor``), and the inverting types (NAND/NOT/NOR/XNOR) are applied as a
    post-reduction inversion of their rows.  This keeps the per-simulation
    numpy call count at <= 3 per level regardless of the gate-type/arity
    mix -- the dominant cost for the justifier's many small cone batches.
    """

    kind: str  # "min" | "max" | "xor"
    out_idx: np.ndarray  # (n,)
    in_idx: np.ndarray  # (n, max_arity), padded
    invert: np.ndarray | None  # family-local rows to invert; None = none
    invert_all: bool


# Reduction family + inversion per gate type.
_FAMILY = {
    GateType.AND: ("min", False),
    GateType.NAND: ("min", True),
    GateType.BUF: ("min", False),
    GateType.NOT: ("min", True),
    GateType.OR: ("max", False),
    GateType.NOR: ("max", True),
    GateType.XOR: ("xor", False),
    GateType.XNOR: ("xor", True),
}

#: Extra value-state rows appended after the node rows: the ``min`` pad
#: (held at ordered 2) and the ``max``/``xor`` pad (held at ordered 0).
_N_PAD = 2


def _compile_levels(
    netlist: Netlist,
    indices: Iterable[int],
    n_rows: int,
    remap: dict[int, int] | None = None,
) -> tuple[list[list[_Fused]], np.ndarray, np.ndarray]:
    """Fuse the gates among ``indices`` by (level, reduction family).

    ``indices`` must be fanin-closed (every fanin of a member is a member);
    ``remap`` optionally translates dense node indices into a local index
    space; ``n_rows`` is the node-row count of that space (pad rows live at
    ``n_rows`` and ``n_rows + 1``).  Returns ``(levels, const0, const1)``
    with all indices already remapped.  Grouping by level is
    evaluation-order safe because a gate's level strictly exceeds every
    fanin's level.
    """
    pad_min = n_rows
    pad_max = n_rows + 1
    const0: list[int] = []
    const1: list[int] = []
    # level -> family kind -> (outs, fanin lists, inverted row flags)
    by_level: dict[int, dict[str, tuple[list[int], list[list[int]], list[bool]]]]
    by_level = {}
    for index in indices:
        node = netlist.node_at(index)
        if node.is_input:
            continue
        out = index if remap is None else remap[index]
        if node.gate_type is GateType.CONST0:
            const0.append(out)
            continue
        if node.gate_type is GateType.CONST1:
            const1.append(out)
            continue
        family = _FAMILY.get(node.gate_type)
        if family is None:  # pragma: no cover - freeze() rejects these
            raise AssertionError(f"unexpected gate type {node.gate_type}")
        kind, inverted = family
        level = netlist.level(index)
        fanin = list(netlist.fanin_indices(index))
        if remap is not None:
            fanin = [remap[ref] for ref in fanin]
        outs, ins, invs = by_level.setdefault(level, {}).setdefault(
            kind, ([], [], [])
        )
        outs.append(out)
        ins.append(fanin)
        invs.append(inverted)
    levels: list[list[_Fused]] = []
    for level in sorted(by_level):
        fused = []
        for kind in sorted(by_level[level]):
            outs, ins, invs = by_level[level][kind]
            arity = max(len(fanin) for fanin in ins)
            pad = pad_min if kind == "min" else pad_max
            in_idx = np.full((len(ins), arity), pad, dtype=np.int64)
            for row, fanin in enumerate(ins):
                in_idx[row, : len(fanin)] = fanin
            invert_rows = np.nonzero(invs)[0]
            fused.append(
                _Fused(
                    kind=kind,
                    out_idx=np.array(outs, dtype=np.int64),
                    in_idx=in_idx,
                    invert=invert_rows if invert_rows.size else None,
                    invert_all=bool(invert_rows.size == len(ins)),
                )
            )
        levels.append(fused)
    return levels, np.array(const0, dtype=np.int64), np.array(const1, dtype=np.int64)


def _propagate(levels: list[list[_Fused]], vals: np.ndarray) -> None:
    """Evaluate all levels in place on the ordered-encoding state.

    ``vals`` has shape ``(3, n_rows + 2, K)`` with the two pad rows already
    held at their neutral values.
    """
    for fused_groups in levels:
        for fused in fused_groups:
            gathered = vals[:, fused.in_idx, :]  # (3, n, arity, K)
            if fused.kind == "min":
                result = gathered.min(axis=2)
            elif fused.kind == "max":
                result = gathered.max(axis=2)
            else:  # xor
                result = gathered[:, :, 0, :]
                for operand in range(1, gathered.shape[2]):
                    result = _XOR_ORD[result, gathered[:, :, operand, :]]
            if fused.invert_all:
                result = 2 - result
            elif fused.invert is not None:
                result[:, fused.invert, :] = 2 - result[:, fused.invert, :]
            vals[:, fused.out_idx, :] = result


class BatchSimulator:
    """Simulates batches of two-pattern assignments on one netlist.

    The simulator is stateless between calls; construct once per netlist
    and reuse (compilation walks the whole circuit).
    """

    def __init__(self, netlist: Netlist, stats=None, backend: str | None = None) -> None:
        """``stats`` is an optional EngineStats-compatible sink (anything
        with ``count(name, n)``); when set, every ``run_codes`` call records
        ``batch.runs`` and ``batch.columns``, and :meth:`restricted` records
        ``cone.hit`` / ``cone.miss`` / ``cone.compile``.

        ``backend`` selects the cone-screening kernel ("numpy" or
        "packed"); ``None`` snapshots :func:`repro.envflags.simulation_backend`
        (the ``REPRO_BACKEND`` seam).  The full-netlist entry points below
        always run the numpy kernel -- the packed backend only changes what
        :meth:`restricted` hands to the justifier.
        """
        self.netlist = netlist
        self.stats = stats
        self.backend = simulation_backend() if backend is None else backend
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        self.n_nodes = len(netlist)
        self.pi_index = np.array(netlist.input_indices, dtype=np.int64)
        self._pi_pos = {int(node): row for row, node in enumerate(self.pi_index)}
        self._levels, self._const0, self._const1 = _compile_levels(
            netlist, netlist.topo_order, self.n_nodes
        )
        # Requirement-node key -> ConeSimulator, plus a second map keyed by
        # the resolved cone so distinct requirement sets with equal cones
        # share one compilation.  Both LRU-bounded by LRU_CACHE_SIZE.
        self._cone_by_seed: "OrderedDict[frozenset[int], ConeSimulator]" = OrderedDict()
        self._cone_by_cone: "OrderedDict[frozenset[int], ConeSimulator]" = OrderedDict()

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def restricted(self, nodes: Iterable[int]) -> "ConeSimulator":
        """Cone-restricted sub-simulator for the fanin cone of ``nodes``.

        The cone is the transitive-fanin closure
        (:func:`repro.circuit.analysis.input_cone`) of the seed set -- the
        smallest fanin-closed sub-circuit that computes every seed node, and
        hence exactly what a justification of requirements on ``nodes``
        has to simulate.  Results are LRU-cached: once per seed key, and
        compilations are additionally shared between seed sets that resolve
        to the same cone.
        """
        key = frozenset(int(node) for node in nodes)
        cone_sim = self._cone_by_seed.get(key)
        if cone_sim is not None:
            self._cone_by_seed.move_to_end(key)
            if self.stats is not None:
                self.stats.count("cone.hit")
            return self._dispatch(cone_sim)
        if self.stats is not None:
            self.stats.count("cone.miss")
        cone_key = frozenset(input_cone(self.netlist, key))
        cone_sim = self._cone_by_cone.get(cone_key)
        if cone_sim is None:
            if self.stats is not None:
                self.stats.count("cone.compile")
            cone_sim = ConeSimulator(self, cone_key)
            self._cone_by_cone[cone_key] = cone_sim
            while len(self._cone_by_cone) > LRU_CACHE_SIZE:
                self._cone_by_cone.popitem(last=False)
        else:
            self._cone_by_cone.move_to_end(cone_key)
        self._cone_by_seed[key] = cone_sim
        while len(self._cone_by_seed) > LRU_CACHE_SIZE:
            self._cone_by_seed.popitem(last=False)
        return self._dispatch(cone_sim)

    def _dispatch(self, cone_sim: "ConeSimulator"):
        """Wrap a cached cone in the selected backend's simulator.

        The packed twin shares the cone's compiled levels and is cached on
        the cone itself, so its lifetime follows the cone LRU entries.
        """
        if self.backend != "packed":
            return cone_sim
        packed = getattr(cone_sim, "_packed_twin", None)
        if packed is None:
            from .packed import PackedConeSimulator

            packed = PackedConeSimulator(cone_sim)
            cone_sim._packed_twin = packed
            if self.stats is not None:
                self.stats.count("backend.packed.cones")
        return packed

    def run_codes(self, pi_codes: np.ndarray) -> np.ndarray:
        """Simulate from raw ternary codes.

        ``pi_codes``: int8 array of shape ``(n_pis, 3, K)`` with values in
        {ZERO, ONE, X}.  Returns ``(n_nodes, 3, K)`` codes for every node.
        """
        n_pis, three, k = pi_codes.shape
        if three != 3 or n_pis != len(self.pi_index):
            raise ValueError(
                f"expected shape ({len(self.pi_index)}, 3, K), got {pi_codes.shape}"
            )
        if self.stats is not None:
            self.stats.count("batch.runs")
            self.stats.count("batch.columns", k)
        vals = np.full((3, self.n_nodes + _N_PAD, k), _ORDX, dtype=np.int8)
        vals[:, self.n_nodes, :] = _ORD1  # min-family pad (neutral for min)
        vals[:, self.n_nodes + 1, :] = _ORD0  # max/xor-family pad
        ord_in = TO_ORD[pi_codes]  # (n_pis, 3, K)
        vals[:, self.pi_index, :] = ord_in.transpose(1, 0, 2)
        if self._const0.size:
            vals[:, self._const0, :] = _ORD0
        if self._const1.size:
            vals[:, self._const1, :] = _ORD1
        _propagate(self._levels, vals)
        out = FROM_ORD[vals[:, : self.n_nodes, :]]  # (3, n_nodes, K)
        # The transpose view keeps the test axis contiguous (stride 1),
        # which is what every downstream fancy-indexing consumer gathers
        # along; materializing a C-contiguous copy buys nothing.
        return out.transpose(1, 0, 2)

    def run_triples(self, assignments: list[dict[int, Triple]]) -> np.ndarray:
        """Simulate a list of sparse assignments (node index -> Triple).

        Unassigned primary inputs are ``xxx``.  Returns codes of shape
        ``(n_nodes, 3, K)`` with ``K = len(assignments)``.
        """
        k = len(assignments)
        pi_codes = np.full((len(self.pi_index), 3, k), X, dtype=np.int8)
        pi_pos = self._pi_pos
        for column, assignment in enumerate(assignments):
            for node, triple in assignment.items():
                row = pi_pos.get(node)
                if row is None:
                    raise ValueError(
                        f"node {node} is not a primary input of {self.netlist.name}"
                    )
                pi_codes[row, 0, column] = triple.v1
                pi_codes[row, 1, column] = triple.v2
                pi_codes[row, 2, column] = triple.v3
        return self.run_codes(pi_codes)

    def run_two_pattern(self, first: np.ndarray, second: np.ndarray) -> np.ndarray:
        """Simulate fully/partially specified two-pattern tests.

        ``first``/``second``: ``(n_pis, K)`` ternary codes for pattern 1 and
        pattern 2.  The intermediate value of each input is its stable value
        when both patterns agree on a specified value, else ``x``.
        """
        if first.shape != second.shape:
            raise ValueError("pattern arrays must have identical shapes")
        mid = np.where((first == second) & (first != X), first, X).astype(np.int8)
        pi_codes = np.stack([first, mid, second], axis=1).astype(np.int8)
        return self.run_codes(pi_codes)


class ConeSimulator:
    """The level-grouped kernel compiled over one fanin-closed cone.

    Rows of every input/output array are *cone-local*: row ``i`` holds the
    node with global dense index ``nodes[i]`` (ascending).  ``pi_index``
    lists the cone's primary inputs as global indices -- exactly the
    support inputs of the seed set -- and defines the row order of
    ``run_codes`` input columns.

    Invariant (tested property): for any input assignment,
    ``run_codes`` equals the full :class:`BatchSimulator` result restricted
    to ``nodes``, because the cone is fanin-closed and primary inputs
    outside it cannot influence any cone node.
    """

    def __init__(self, parent: BatchSimulator, cone: frozenset[int]) -> None:
        netlist = parent.netlist
        self.netlist = netlist
        self.stats = parent.stats
        self.nodes = np.array(sorted(cone), dtype=np.int64)
        self.n_nodes = len(self.nodes)
        self.global_to_local = np.full(len(netlist), -1, dtype=np.int64)
        self.global_to_local[self.nodes] = np.arange(self.n_nodes)
        self.pi_index = np.array(
            [pi for pi in netlist.input_indices if pi in cone], dtype=np.int64
        )
        #: The cone's primary inputs as plain ints (the support of the seed
        #: nodes, ascending) -- row order of ``run_codes`` inputs.
        self.support = [int(pi) for pi in self.pi_index]
        self._pi_local = self.global_to_local[self.pi_index]
        remap = {int(g): int(l) for g, l in zip(self.nodes, range(self.n_nodes))}
        self._levels, self._const0, self._const1 = _compile_levels(
            netlist, [int(index) for index in self.nodes], self.n_nodes, remap
        )

    def local_indices(self, global_indices: np.ndarray) -> np.ndarray:
        """Map global dense indices to cone-local rows (-1 when outside)."""
        return self.global_to_local[global_indices]

    def localize(self, compiled):
        """Remap a :class:`~repro.sim.cover.CompiledRequirements` into
        cone-local rows; every requirement node must lie inside the cone."""
        return compiled.remapped(self.global_to_local)

    def run_codes(self, pi_codes: np.ndarray) -> np.ndarray:
        """Simulate from raw ternary codes over the cone.

        ``pi_codes``: int8 array ``(n_cone_pis, 3, K)``, rows ordered as
        :attr:`pi_index`.  Returns ``(n_cone_nodes, 3, K)`` cone-local
        codes.
        """
        n_pis, three, k = pi_codes.shape
        if three != 3 or n_pis != len(self.pi_index):
            raise ValueError(
                f"expected shape ({len(self.pi_index)}, 3, K), got {pi_codes.shape}"
            )
        if self.stats is not None:
            self.stats.count("batch.runs")
            self.stats.count("batch.columns", k)
            self.stats.count("cone.runs")
            self.stats.count("cone.columns", k)
        vals = np.full((3, self.n_nodes + _N_PAD, k), _ORDX, dtype=np.int8)
        vals[:, self.n_nodes, :] = _ORD1  # min-family pad (neutral for min)
        vals[:, self.n_nodes + 1, :] = _ORD0  # max/xor-family pad
        if n_pis:
            vals[:, self._pi_local, :] = TO_ORD[pi_codes].transpose(1, 0, 2)
        if self._const0.size:
            vals[:, self._const0, :] = _ORD0
        if self._const1.size:
            vals[:, self._const1, :] = _ORD1
        _propagate(self._levels, vals)
        out = FROM_ORD[vals[:, : self.n_nodes, :]]
        # The transpose view keeps the test axis contiguous (stride 1),
        # which is what every downstream fancy-indexing consumer gathers
        # along; materializing a C-contiguous copy buys nothing.
        return out.transpose(1, 0, 2)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ConeSimulator({self.netlist.name!r}, {self.n_nodes}/"
            f"{len(self.netlist)} nodes, {len(self.pi_index)} PIs)"
        )
