"""Robust path-delay-fault simulation of two-pattern test sets.

Robust detection of a fault ``p`` by a fully specified test ``t`` is
equivalent to ``t`` assigning all values in ``A(p)`` (Section 2.1 of the
paper: the condition is necessary and sufficient).  Fault simulation is
therefore:

1. simulate all tests in one batch with the waveform-triple simulator
   (hazards appear as ``x`` intermediate components, which correctly fail
   steady-value requirements);
2. for every fault, check whether any test's simulated values *cover* its
   requirement set.

Cost: one levelized batch simulation plus an O(|A(p)| * tests) covering
check per fault.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit.netlist import Netlist
from ..faults.universe import FaultRecord
from .batch import BatchSimulator
from .cover import CompiledRequirements
from .vectors import TwoPatternTest

__all__ = ["FaultSimulator", "detection_matrix", "detected_count"]


class FaultSimulator:
    """Simulates a fixed fault population against arbitrary test sets."""

    def __init__(
        self,
        netlist: Netlist,
        records: Sequence[FaultRecord],
        simulator: BatchSimulator | None = None,
    ) -> None:
        self.netlist = netlist
        self.records = list(records)
        self.simulator = simulator or BatchSimulator(netlist)
        self._compiled = [
            CompiledRequirements(record.sens.requirements) for record in self.records
        ]

    def simulate(self, tests: Sequence[TwoPatternTest]) -> np.ndarray:
        """Simulate the test set; returns node codes ``(n_nodes, 3, K)``."""
        return self.simulator.run_triples([test.assignment for test in tests])

    def detection_matrix(self, tests: Sequence[TwoPatternTest]) -> np.ndarray:
        """Boolean matrix ``(n_faults, n_tests)``: test j detects fault i."""
        if not tests:
            return np.zeros((len(self.records), 0), dtype=bool)
        sim_codes = self.simulate(tests)
        matrix = np.zeros((len(self.records), len(tests)), dtype=bool)
        for row, compiled in enumerate(self._compiled):
            matrix[row, :] = compiled.covered_by(sim_codes)
        return matrix

    def detected_mask(self, tests: Sequence[TwoPatternTest]) -> np.ndarray:
        """Boolean vector: fault i detected by at least one test."""
        if not tests:
            return np.zeros(len(self.records), dtype=bool)
        return self.detection_matrix(tests).any(axis=1)

    def detected_records(self, tests: Sequence[TwoPatternTest]) -> list[FaultRecord]:
        """The records detected by the test set."""
        mask = self.detected_mask(tests)
        return [record for record, hit in zip(self.records, mask) if hit]

    def coverage(self, tests: Sequence[TwoPatternTest]) -> tuple[int, int]:
        """``(detected, total)`` fault counts for the test set."""
        mask = self.detected_mask(tests)
        return int(mask.sum()), len(self.records)


def detection_matrix(
    netlist: Netlist,
    records: Sequence[FaultRecord],
    tests: Sequence[TwoPatternTest],
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`FaultSimulator`."""
    return FaultSimulator(netlist, records).detection_matrix(tests)


def detected_count(
    netlist: Netlist,
    records: Sequence[FaultRecord],
    tests: Sequence[TwoPatternTest],
) -> int:
    """Number of ``records`` detected by ``tests``."""
    simulator = FaultSimulator(netlist, records)
    return int(simulator.detected_mask(tests).sum())
