"""Robust path-delay-fault simulation of two-pattern test sets.

Robust detection of a fault ``p`` by a fully specified test ``t`` is
equivalent to ``t`` assigning all values in ``A(p)`` (Section 2.1 of the
paper: the condition is necessary and sufficient).  Fault simulation is
therefore:

1. simulate all tests in one batch with the waveform-triple simulator
   (hazards appear as ``x`` intermediate components, which correctly fail
   steady-value requirements);
2. for every fault, check whether any test's simulated values *cover* its
   requirement set.

Cost: one levelized batch simulation plus a covering check.  The covering
check is vectorized across the whole fault population by default (all
faults' requirements stacked into padded arrays once, see
:class:`~repro.sim.cover.StackedRequirements`); set ``REPRO_SCALAR_COVER=1``
to fall back to the original per-fault loop (the flag is snapshotted on
first use -- see :mod:`repro.envflags`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..circuit.netlist import Netlist
from ..envflags import SCALAR_COVER_ENV, scalar_cover_requested
from ..faults.universe import FaultRecord
from .batch import BatchSimulator
from .cover import CompiledRequirements, StackedRequirements
from .vectors import TwoPatternTest

if TYPE_CHECKING:  # engine imports sim; keep the reverse edge type-only
    from ..engine.session import CircuitSession

__all__ = [
    "FaultSimulator",
    "shared_fault_simulator",
    "mark_pool_worker",
    "detection_matrix",
    "detected_count",
    "SCALAR_COVER_ENV",
]


class FaultSimulator:
    """Simulates a fixed fault population against arbitrary test sets.

    ``vectorized`` selects the covering kernel: ``True`` stacks every
    fault's requirements once and computes the detection matrix with
    array ops; ``False`` keeps the per-fault loop; ``None`` (default)
    vectorizes unless ``REPRO_SCALAR_COVER`` is set.
    """

    def __init__(
        self,
        netlist: Netlist,
        records: Sequence[FaultRecord],
        simulator: BatchSimulator | None = None,
        vectorized: bool | None = None,
    ) -> None:
        self.netlist = netlist
        self.records = list(records)
        self.simulator = simulator or BatchSimulator(netlist)
        self._compiled = [
            CompiledRequirements(record.sens.requirements) for record in self.records
        ]
        if vectorized is None:
            vectorized = not scalar_cover_requested()
        self.vectorized = vectorized
        self._stacked = StackedRequirements(self._compiled) if vectorized else None

    def simulate(self, tests: Sequence[TwoPatternTest]) -> np.ndarray:
        """Simulate the test set; returns node codes ``(n_nodes, 3, K)``."""
        return self.simulator.run_triples([test.assignment for test in tests])

    def detection_matrix(self, tests: Sequence[TwoPatternTest]) -> np.ndarray:
        """Boolean matrix ``(n_faults, n_tests)``: test j detects fault i."""
        if not tests:
            return np.zeros((len(self.records), 0), dtype=bool)
        sim_codes = self.simulate(tests)
        if self._stacked is not None:
            return self._stacked.covered_matrix(sim_codes)
        matrix = np.zeros((len(self.records), len(tests)), dtype=bool)
        for row, compiled in enumerate(self._compiled):
            matrix[row, :] = compiled.covered_by(sim_codes)
        return matrix

    def detected_mask(self, tests: Sequence[TwoPatternTest]) -> np.ndarray:
        """Boolean vector: fault i detected by at least one test."""
        if not tests:
            return np.zeros(len(self.records), dtype=bool)
        return self.detection_matrix(tests).any(axis=1)

    def detected_records(self, tests: Sequence[TwoPatternTest]) -> list[FaultRecord]:
        """The records detected by the test set."""
        mask = self.detected_mask(tests)
        return [record for record, hit in zip(self.records, mask) if hit]

    def coverage(self, tests: Sequence[TwoPatternTest]) -> tuple[int, int]:
        """``(detected, total)`` fault counts for the test set."""
        mask = self.detected_mask(tests)
        return int(mask.sum()), len(self.records)


# Small module-level cache so back-to-back one-shot calls on the same
# (netlist, records) share one FaultSimulator instead of recompiling the
# requirement matrices.  Keys are object identities; each entry keeps the
# netlist and records alive, so ids cannot be recycled while cached.
# Guarded by a lock: the parallel runner's threads/processes may race on
# it, and an eviction between another thread's get and move_to_end would
# otherwise corrupt the OrderedDict.
_SHARED_MAX = 8
_shared: "OrderedDict[tuple, tuple[Netlist, tuple, FaultSimulator]]" = OrderedDict()
_shared_lock = threading.Lock()
_in_pool_worker = False


def mark_pool_worker(active: bool = True) -> None:
    """Flag this process as a parallel-pool worker.

    Workers bypass the module-level cache entirely: with ``fork`` start
    they inherit a populated ``_shared`` whose entries alias parent-built
    simulators, and a short-lived worker gains nothing from caching its
    own.  Called by :mod:`repro.parallel`'s pool initializer.
    """
    global _in_pool_worker
    _in_pool_worker = active


def shared_fault_simulator(
    netlist: Netlist,
    records: Sequence[FaultRecord],
    sim: "FaultSimulator | CircuitSession | None" = None,
) -> FaultSimulator:
    """Resolve the fault simulator the one-shot wrappers should use.

    ``sim`` may be an explicit :class:`FaultSimulator`, anything with a
    session-style ``fault_simulator(records)`` accessor (e.g.
    :class:`repro.engine.CircuitSession`), or ``None`` to fall back to the
    bounded module-level cache (bypassed inside pool workers).
    """
    if isinstance(sim, FaultSimulator):
        return sim
    if sim is not None:
        return sim.fault_simulator(records)
    records = list(records)
    if _in_pool_worker:
        return FaultSimulator(netlist, records)
    key = (id(netlist), tuple(map(id, records)))
    with _shared_lock:
        entry = _shared.get(key)
        if entry is not None:
            _shared.move_to_end(key)
            return entry[2]
    # Compile outside the lock (construction is the expensive part); a
    # concurrent builder of the same key just wins the final insert.
    simulator = FaultSimulator(netlist, records)
    with _shared_lock:
        entry = _shared.get(key)
        if entry is not None:
            _shared.move_to_end(key)
            return entry[2]
        _shared[key] = (netlist, tuple(records), simulator)
        while len(_shared) > _SHARED_MAX:
            _shared.popitem(last=False)
    return simulator


def detection_matrix(
    netlist: Netlist,
    records: Sequence[FaultRecord],
    tests: Sequence[TwoPatternTest],
    sim: "FaultSimulator | CircuitSession | None" = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`FaultSimulator`."""
    return shared_fault_simulator(netlist, records, sim).detection_matrix(tests)


def detected_count(
    netlist: Netlist,
    records: Sequence[FaultRecord],
    tests: Sequence[TwoPatternTest],
    sim: "FaultSimulator | CircuitSession | None" = None,
) -> int:
    """Number of ``records`` detected by ``tests``."""
    simulator = shared_fault_simulator(netlist, records, sim)
    return int(simulator.detected_mask(tests).sum())
