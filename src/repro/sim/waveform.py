"""ASCII waveform rendering of two-pattern tests.

Debugging aid: render the waveform triple of selected lines under a test
as a three-column timing diagram, e.g.::

    G1   0 _/~ 1    (0x1: rising)
    G2   0 ___ 0    (000: steady low)
    G7   1 ~~~ 1    (111: steady high)
    G9   x ??? 0    (xx0)

Used by examples and by failing-test diagnostics; has no effect on the
algorithms.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..algebra.ternary import ONE, X, ZERO
from ..algebra.triple import Triple
from ..circuit.netlist import Netlist
from .batch import BatchSimulator
from .vectors import TwoPatternTest

__all__ = ["render_waveforms", "render_test"]

_EDGE = {
    (ZERO, ZERO): "___",
    (ONE, ONE): "~~~",
    (ZERO, ONE): "_/~",
    (ONE, ZERO): "~\\_",
}


def _shape(triple: Triple) -> str:
    if triple.v1 in (ZERO, ONE) and triple.v3 in (ZERO, ONE):
        if triple.v2 == X and triple.v1 == triple.v3:
            return "_?_" if triple.v1 == ZERO else "~?~"  # possible glitch
        return _EDGE[(triple.v1, triple.v3)]
    return "???"


def _char(value: int) -> str:
    return "01x"[value]


def render_waveforms(
    netlist: Netlist,
    values: Mapping[str, Triple],
    lines: Sequence[str] | None = None,
) -> str:
    """Render the waveform of each named line (default: all, topological)."""
    if lines is None:
        lines = [netlist.node_at(i).name for i in netlist.topo_order]
    width = max((len(name) for name in lines), default=1)
    rows = []
    for name in lines:
        triple = values[name]
        rows.append(
            f"{name:<{width}}  {_char(triple.v1)} {_shape(triple)} "
            f"{_char(triple.v3)}   ({triple})"
        )
    return "\n".join(rows)


def render_test(
    netlist: Netlist,
    test: TwoPatternTest,
    lines: Iterable[str] | None = None,
    simulator: BatchSimulator | None = None,
) -> str:
    """Simulate ``test`` and render the waveforms of ``lines``.

    ``lines`` defaults to the primary inputs followed by the primary
    outputs.
    """
    simulator = simulator or BatchSimulator(netlist)
    sim = simulator.run_triples([test.assignment])
    values = {
        netlist.node_at(i).name: Triple.of(*(int(v) for v in sim[i, :, 0]))
        for i in range(len(netlist))
    }
    if lines is None:
        lines = list(netlist.input_names) + [
            name for name in netlist.output_names if name not in netlist.input_names
        ]
    return render_waveforms(netlist, values, list(lines))
