"""Vectorized requirement checking against simulated values.

``A(p)`` is a sparse set of required value components.  Both the fault
simulator and the test generator repeatedly ask, for a batch of simulated
assignments:

* **covers** -- does the simulated value satisfy every required component
  exactly?  (Detection check; an ``x`` simulated component fails a
  specified requirement.)
* **consistent** -- does the simulated value *contradict* any required
  component?  (Search pruning; ``x`` may still be refined and is fine.)

:class:`CompiledRequirements` flattens a requirement mapping into parallel
``(node, position, value)`` arrays once, so each check is a single fancy
index plus a reduction over the batch.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..algebra.ternary import X
from ..algebra.triple import Triple

__all__ = ["CompiledRequirements"]


class CompiledRequirements:
    """A requirement mapping flattened for batch checking.

    Parameters
    ----------
    requirements:
        Mapping node index -> required :class:`Triple`; only specified
        components are recorded.
    """

    __slots__ = ("nodes", "positions", "values", "num_components")

    def __init__(self, requirements: Mapping[int, Triple]) -> None:
        nodes: list[int] = []
        positions: list[int] = []
        values: list[int] = []
        for node, triple in requirements.items():
            for position, value in enumerate(triple.components()):
                if value != X:
                    nodes.append(node)
                    positions.append(position)
                    values.append(value)
        self.nodes = np.array(nodes, dtype=np.int64)
        self.positions = np.array(positions, dtype=np.int64)
        self.values = np.array(values, dtype=np.int8)
        self.num_components = len(nodes)

    def covered_by(self, sim_codes: np.ndarray) -> np.ndarray:
        """Boolean array over the batch: requirement fully satisfied.

        ``sim_codes``: array ``(n_nodes, 3, K)`` of ternary codes.
        """
        if self.num_components == 0:
            return np.ones(sim_codes.shape[2], dtype=bool)
        observed = sim_codes[self.nodes, self.positions, :]  # (m, K)
        return np.all(observed == self.values[:, None], axis=0)

    def consistent_with(self, sim_codes: np.ndarray) -> np.ndarray:
        """Boolean array over the batch: no component contradicted.

        A contradiction is a *specified* simulated component differing from
        the required value; ``x`` never contradicts.
        """
        if self.num_components == 0:
            return np.ones(sim_codes.shape[2], dtype=bool)
        observed = sim_codes[self.nodes, self.positions, :]
        contradiction = (observed != X) & (observed != self.values[:, None])
        return ~np.any(contradiction, axis=0)

    def __len__(self) -> int:
        return self.num_components
