"""Vectorized requirement checking against simulated values.

``A(p)`` is a sparse set of required value components.  Both the fault
simulator and the test generator repeatedly ask, for a batch of simulated
assignments:

* **covers** -- does the simulated value satisfy every required component
  exactly?  (Detection check; an ``x`` simulated component fails a
  specified requirement.)
* **consistent** -- does the simulated value *contradict* any required
  component?  (Search pruning; ``x`` may still be refined and is fine.)

:class:`CompiledRequirements` flattens a requirement mapping into parallel
``(node, position, value)`` arrays once, so each check is a single fancy
index plus a reduction over the batch.

:class:`StackedRequirements` goes one step further for fault simulation:
it buckets faults by component count and stacks each bucket into
rectangular blocks, so the whole detection matrix is a few array ops per
distinct length instead of a per-fault Python loop.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..algebra.ternary import X
from ..algebra.triple import Triple

__all__ = ["CompiledRequirements", "StackedRequirements"]


class CompiledRequirements:
    """A requirement mapping flattened for batch checking.

    Parameters
    ----------
    requirements:
        Mapping node index -> required :class:`Triple`; only specified
        components are recorded.
    """

    __slots__ = ("nodes", "positions", "values", "num_components")

    def __init__(self, requirements: Mapping[int, Triple]) -> None:
        nodes: list[int] = []
        positions: list[int] = []
        values: list[int] = []
        for node, triple in requirements.items():
            for position, value in enumerate(triple.components()):
                if value != X:
                    nodes.append(node)
                    positions.append(position)
                    values.append(value)
        self.nodes = np.array(nodes, dtype=np.int64)
        self.positions = np.array(positions, dtype=np.int64)
        self.values = np.array(values, dtype=np.int8)
        self.num_components = len(nodes)

    def covered_by(self, sim_codes: np.ndarray) -> np.ndarray:
        """Boolean array over the batch: requirement fully satisfied.

        ``sim_codes``: array ``(n_nodes, 3, K)`` of ternary codes.
        """
        if self.num_components == 0:
            return np.ones(sim_codes.shape[2], dtype=bool)
        observed = sim_codes[self.nodes, self.positions, :]  # (m, K)
        return np.all(observed == self.values[:, None], axis=0)

    def consistent_with(self, sim_codes: np.ndarray) -> np.ndarray:
        """Boolean array over the batch: no component contradicted.

        A contradiction is a *specified* simulated component differing from
        the required value; ``x`` never contradicts.
        """
        if self.num_components == 0:
            return np.ones(sim_codes.shape[2], dtype=bool)
        observed = sim_codes[self.nodes, self.positions, :]
        contradiction = (observed != X) & (observed != self.values[:, None])
        return ~np.any(contradiction, axis=0)

    def __len__(self) -> int:
        return self.num_components


class StackedRequirements:
    """A whole fault population's requirements bucketed for batch checking.

    Faults are grouped by component count ``L``; each group's ``(node,
    position, value)`` arrays are stacked into rectangular ``(group, L)``
    blocks.  The detection matrix is then one gather + compare +
    ``all(axis=1)`` per *distinct length* (a few dozen groups) instead of
    one per *fault* (thousands), with zero padding waste.  Measured ~2-3x
    faster than the per-fault loop on default-scale populations; segment
    reductions (``reduceat``/``cumsum``) and padded layouts both lose to
    it because numpy's contiguous middle-axis reduce is far cheaper.

    Parameters
    ----------
    compiled:
        One :class:`CompiledRequirements` per fault, in fault order.
    """

    __slots__ = ("buckets", "n_faults", "total_components", "_max_block")

    def __init__(self, compiled: Sequence[CompiledRequirements]) -> None:
        self.n_faults = len(compiled)
        self.total_components = sum(c.num_components for c in compiled)
        by_length: dict[int, list[int]] = {}
        for index, requirements in enumerate(compiled):
            by_length.setdefault(requirements.num_components, []).append(index)
        # (rows, nodes, positions, values); the arrays are None for the
        # zero-component bucket (those faults are covered by every test).
        self.buckets: list[tuple] = []
        self._max_block = 1
        for length in sorted(by_length):
            members = by_length[length]
            rows = np.array(members, dtype=np.int64)
            if length == 0:
                self.buckets.append((rows, None, None, None))
                continue
            nodes = np.stack([compiled[i].nodes for i in members])
            positions = np.stack([compiled[i].positions for i in members])
            values = np.stack([compiled[i].values for i in members])
            self.buckets.append((rows, nodes, positions, values))
            self._max_block = max(self._max_block, nodes.size)

    def covered_matrix(
        self, sim_codes: np.ndarray, max_elements: int = 32_000_000
    ) -> np.ndarray:
        """Boolean matrix ``(n_faults, K)``: test k covers fault i.

        ``sim_codes``: array ``(n_nodes, 3, K)`` of ternary codes.
        ``max_elements`` bounds the per-bucket ``(group, L, columns)``
        temporaries by chunking over the test axis, so huge populations
        never allocate more than ~tens of MB at once.
        """
        batch = sim_codes.shape[2]
        if self.n_faults == 0:
            return np.zeros((0, batch), dtype=bool)
        out = np.empty((self.n_faults, batch), dtype=bool)
        cols = max(1, max_elements // self._max_block)
        for begin in range(0, batch, cols):
            end = min(begin + cols, batch)
            chunk = sim_codes[:, :, begin:end]
            for rows, nodes, positions, values in self.buckets:
                if nodes is None:  # no specified components: always covered
                    out[rows, begin:end] = True
                    continue
                observed = chunk[nodes, positions, :]  # (group, L, cols)
                out[rows, begin:end] = (
                    observed == values[:, :, None]
                ).all(axis=1)
        return out

    def __len__(self) -> int:
        return self.n_faults
