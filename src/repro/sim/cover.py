"""Vectorized requirement checking against simulated values.

``A(p)`` is a sparse set of required value components.  Both the fault
simulator and the test generator repeatedly ask, for a batch of simulated
assignments:

* **covers** -- does the simulated value satisfy every required component
  exactly?  (Detection check; an ``x`` simulated component fails a
  specified requirement.)
* **consistent** -- does the simulated value *contradict* any required
  component?  (Search pruning; ``x`` may still be refined and is fine.)

:class:`CompiledRequirements` flattens a requirement mapping into parallel
``(node, position, value)`` arrays once, so each check is a single fancy
index plus a reduction over the batch.

:class:`StackedRequirements` goes one step further for fault simulation:
it buckets faults by component count and stacks each bucket into
rectangular blocks, so the whole detection matrix is a few array ops per
distinct length instead of a per-fault Python loop.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..algebra.ternary import X
from ..algebra.triple import Triple

__all__ = ["CompiledRequirements", "StackedRequirements"]


class CompiledRequirements:
    """A requirement mapping flattened for batch checking.

    Parameters
    ----------
    requirements:
        Mapping node index -> required :class:`Triple`; only specified
        components are recorded.
    """

    __slots__ = ("nodes", "positions", "values", "num_components")

    def __init__(self, requirements: Mapping[int, Triple]) -> None:
        nodes: list[int] = []
        positions: list[int] = []
        values: list[int] = []
        for node, triple in requirements.items():
            for position, value in enumerate(triple.components()):
                if value != X:
                    nodes.append(node)
                    positions.append(position)
                    values.append(value)
        self.nodes = np.array(nodes, dtype=np.int64)
        self.positions = np.array(positions, dtype=np.int64)
        self.values = np.array(values, dtype=np.int8)
        self.num_components = len(nodes)

    def covered_by(self, sim_codes: np.ndarray) -> np.ndarray:
        """Boolean array over the batch: requirement fully satisfied.

        ``sim_codes``: array ``(n_nodes, 3, K)`` of ternary codes.
        """
        if self.num_components == 0:
            return np.ones(sim_codes.shape[2], dtype=bool)
        observed = sim_codes[self.nodes, self.positions, :]  # (m, K)
        return np.all(observed == self.values[:, None], axis=0)

    def consistent_with(self, sim_codes: np.ndarray) -> np.ndarray:
        """Boolean array over the batch: no component contradicted.

        A contradiction is a *specified* simulated component differing from
        the required value; ``x`` never contradicts.
        """
        if self.num_components == 0:
            return np.ones(sim_codes.shape[2], dtype=bool)
        observed = sim_codes[self.nodes, self.positions, :]
        contradiction = (observed != X) & (observed != self.values[:, None])
        return ~np.any(contradiction, axis=0)

    def remapped(self, index_map: np.ndarray) -> "CompiledRequirements":
        """Copy with node indices translated through ``index_map``.

        Used by :class:`~repro.sim.batch.ConeSimulator` to rebase
        requirements into cone-local rows; every node must be mapped
        (``index_map[node] >= 0``).
        """
        result = CompiledRequirements.__new__(CompiledRequirements)
        nodes = index_map[self.nodes]
        if self.num_components and nodes.min() < 0:
            missing = self.nodes[nodes < 0][:3]
            raise ValueError(f"requirement nodes outside the cone: {missing.tolist()}")
        result.nodes = nodes
        result.positions = self.positions
        result.values = self.values
        result.num_components = self.num_components
        return result

    def __len__(self) -> int:
        return self.num_components


class StackedRequirements:
    """A whole fault population's requirements bucketed for batch checking.

    Faults are grouped by component count ``L``; each group's ``(node,
    position, value)`` arrays are stacked into rectangular ``(group, L)``
    blocks.  The detection matrix is then one gather + compare +
    ``all(axis=1)`` per *distinct length* (a few dozen groups) instead of
    one per *fault* (thousands), with zero padding waste.  Measured ~2-3x
    faster than the per-fault loop on default-scale populations; segment
    reductions (``reduceat``/``cumsum``) and padded layouts both lose to
    it because numpy's contiguous middle-axis reduce is far cheaper.

    Parameters
    ----------
    compiled:
        One :class:`CompiledRequirements` per fault, in fault order.
    """

    __slots__ = ("buckets", "n_faults", "total_components", "_max_block")

    def __init__(self, compiled: Sequence[CompiledRequirements]) -> None:
        self.n_faults = len(compiled)
        self.total_components = sum(c.num_components for c in compiled)
        by_length: dict[int, list[int]] = {}
        for index, requirements in enumerate(compiled):
            by_length.setdefault(requirements.num_components, []).append(index)
        # (rows, nodes, positions, values); the arrays are None for the
        # zero-component bucket (those faults are covered by every test).
        self.buckets: list[tuple] = []
        self._max_block = 1
        for length in sorted(by_length):
            members = by_length[length]
            rows = np.array(members, dtype=np.int64)
            if length == 0:
                self.buckets.append((rows, None, None, None))
                continue
            nodes = np.stack([compiled[i].nodes for i in members])
            positions = np.stack([compiled[i].positions for i in members])
            values = np.stack([compiled[i].values for i in members])
            self.buckets.append((rows, nodes, positions, values))
            self._max_block = max(self._max_block, nodes.size)

    def covered_matrix(
        self, sim_codes: np.ndarray, max_elements: int = 32_000_000
    ) -> np.ndarray:
        """Boolean matrix ``(n_faults, K)``: test k covers fault i.

        ``sim_codes``: array ``(n_nodes, 3, K)`` of ternary codes.
        ``max_elements`` bounds the per-bucket ``(group, L, columns)``
        temporaries by chunking over the test axis, so huge populations
        never allocate more than ~tens of MB at once.
        """
        batch = sim_codes.shape[2]
        if self.n_faults == 0:
            return np.zeros((0, batch), dtype=bool)
        out = np.empty((self.n_faults, batch), dtype=bool)
        cols = max(1, max_elements // self._max_block)
        for begin in range(0, batch, cols):
            end = min(begin + cols, batch)
            chunk = sim_codes[:, :, begin:end]
            for rows, nodes, positions, values in self.buckets:
                if nodes is None:  # no specified components: always covered
                    out[rows, begin:end] = True
                    continue
                observed = chunk[nodes, positions, :]  # (group, L, cols)
                out[rows, begin:end] = (
                    observed == values[:, :, None]
                ).all(axis=1)
        return out

    def covered_single(self, sim_codes: np.ndarray) -> np.ndarray:
        """Boolean vector ``(n_faults,)`` for one test's codes ``(n_nodes, 3)``.

        Convenience for the generator's per-test screening: equivalent to
        ``covered_matrix(sim_codes[:, :, None])[:, 0]``.
        """
        return self.covered_matrix(sim_codes[:, :, None])[:, 0]

    def delta_against(self, dense_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched ``n_delta`` / conflict screening against a requirement union.

        ``dense_values``: int8 array ``(n_nodes, 3)`` of the current union
        ``U A(p_j)``, with ``x`` marking unconstrained components.  Returns
        ``(delta, conflict)`` over the fault axis: ``delta[i]`` counts fault
        ``i``'s components not already implied by the union
        (:meth:`repro.algebra.triple.Triple.new_components_vs` summed over
        its lines, plus fully new lines), and ``conflict[i]`` is True when
        some component contradicts the union (the batched equivalents of
        ``RequirementSet.delta_count`` returning ``None`` /
        ``RequirementSet.conflicts_with``).
        """
        delta = np.zeros(self.n_faults, dtype=np.int64)
        conflict = np.zeros(self.n_faults, dtype=bool)
        for rows, nodes, positions, values in self.buckets:
            if nodes is None:  # no specified components: nothing new, no conflict
                continue
            observed = dense_values[nodes, positions]  # (group, L)
            unconstrained = observed == X
            delta[rows] = unconstrained.sum(axis=1)
            conflict[rows] = (~unconstrained & (observed != values)).any(axis=1)
        return delta, conflict

    def __len__(self) -> int:
        return self.n_faults
