"""Two-pattern test vectors.

A :class:`TwoPatternTest` assigns a waveform triple to every primary input
of a circuit.  Tests produced by the generator are fully specified (the
simulation-based justification procedure always drives every input to a
stable value or a transition); partially specified tests are legal for
analysis purposes.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..algebra.ternary import X
from ..algebra.triple import Triple, UNKNOWN
from ..circuit.netlist import Netlist

__all__ = ["TwoPatternTest"]


class TwoPatternTest:
    """An immutable two-pattern test: primary-input index -> triple."""

    __slots__ = ("assignment",)

    def __init__(self, assignment: Mapping[int, Triple]) -> None:
        object.__setattr__(self, "assignment", dict(assignment))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TwoPatternTest is immutable")

    @classmethod
    def from_names(cls, netlist: Netlist, values: Mapping[str, str | Triple]) -> "TwoPatternTest":
        """Build a test from input names and triple strings (``"0x1"``)."""
        assignment: dict[int, Triple] = {}
        for name, value in values.items():
            triple = value if isinstance(value, Triple) else Triple.parse(value)
            index = netlist.index_of(name)
            if not netlist.node_at(index).is_input:
                raise ValueError(f"{name!r} is not a primary input")
            assignment[index] = triple
        return cls(assignment)

    def triple_for(self, pi_index: int) -> Triple:
        """Triple assigned to one primary input (``xxx`` if unassigned)."""
        return self.assignment.get(pi_index, UNKNOWN)

    def is_fully_specified(self, netlist: Netlist) -> bool:
        """True when every primary input has specified first/final values.

        The intermediate position of a transitioning input is inherently
        ``x``, so only positions 1 and 3 are checked.
        """
        for pi in netlist.input_indices:
            triple = self.triple_for(pi)
            if triple.v1 == X or triple.v3 == X:
                return False
        return True

    def patterns(self, netlist: Netlist) -> tuple[str, str]:
        """Render the two patterns as bit strings over the inputs in order."""
        first = []
        second = []
        for pi in netlist.input_indices:
            triple = self.triple_for(pi)
            first.append("01x"[triple.v1])
            second.append("01x"[triple.v3])
        return "".join(first), "".join(second)

    def format(self, netlist: Netlist) -> str:
        """Human-readable rendering, e.g. ``<v1=0101..., v2=1101...>``."""
        first, second = self.patterns(netlist)
        return f"<{first} -> {second}>"

    def __iter__(self) -> Iterator[tuple[int, Triple]]:
        return iter(self.assignment.items())

    def __len__(self) -> int:
        return len(self.assignment)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TwoPatternTest) and self.assignment == other.assignment

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v.code) for k, v in self.assignment.items())))

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}:{v}" for k, v in sorted(self.assignment.items()))
        return f"TwoPatternTest({{{parts}}})"
