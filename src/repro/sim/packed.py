"""Bit-packed {0,1,x} simulation backend (``REPRO_BACKEND=packed``).

Packs the batch columns of the justifier's trial simulations into uint64
words, 2 bits per ternary value, and evaluates the level kernel of
:mod:`repro.sim.batch` with word-wide bitwise ops -- one level pass
screens 64 justification trials per word.

Encoding
--------

Each {0,1,x} value is 2 bits split across a *plane pair* of words:

* plane 0 -- ``d1``, "definitely one";
* plane 1 -- ``p1``, "possibly one".

So ``0 -> (0, 0)``, ``1 -> (1, 1)``, ``x -> (0, 1)``; ``(1, 0)`` is never
produced (``d1 -> p1`` is an invariant of every op below) and decodes
defensively as ``x``.  Lane ``j`` of the pair is bit ``j`` of both words
(64 lanes per word pair, little-endian bit order).

The issue sketched an *interleaved* layout (both bits of a lane adjacent,
32 lanes per word).  Measured on the justify hot path, the mask-and-
recombine that interleaving forces on every AND/OR made the packed kernel
*slower* than the int8 kernel (the workload is numpy-call-overhead bound,
not bandwidth bound).  The plane-separated layout keeps the same 2-bit
code but makes the ternary algebra collapse into single bitwise ops,
because ``d1`` and ``p1`` are each monoid homomorphisms of the ternary
AND/OR algebra onto boolean AND/OR:

* AND: ``d1' = AND(d1_i)`` and ``p1' = AND(p1_i)`` -- one plain bitwise
  AND-reduce over both planes;
* OR: likewise with OR;
* NOT: ``(d1', p1') = (~p1, ~d1)`` -- a bitwise NOT plus a plane *swap*;
* XOR: pairwise -- any ``x`` operand forces ``x``, else the boolean xor
  of the ``d1`` bits (see :func:`_xor_planes`).

State layout and the per-cone plan
----------------------------------

The packed state folds the plane axis into the row axis: row ``2i`` holds
node ``i``'s ``d1`` words, row ``2i + 1`` its ``p1`` words (shape
``(2 * (n_rows + 2), 3, W)``).  That turns NOT's plane swap into *index
selection*: a gather entry referencing node ``j`` is the row pair
``(2j, 2j + 1)``, or ``(2j + 1, 2j)`` for an operand of an inverting
gate.  Plane permutation commutes with the plane-wise AND/OR, so

* ``NAND = ~ AND(swapped inputs)`` and ``NOR = ~ OR(swapped inputs)``,

which reduces every min/max-family level to

1. one ``take`` gathering the level's fanin row pairs ``(n, A, 2)``,
2. one ``bitwise_and`` reduce over the AND/NAND rows and one
   ``bitwise_or`` reduce over the NOR/OR rows, each writing **directly
   into the state** (``out=`` a reshaped view of the level's contiguous
   output block -- rows are renumbered at plan-compile time so every
   level's outputs are class-sorted ``[AND | NAND | NOR | OR]`` and
   contiguous),
3. one in-place invert of the NAND/NOR output rows (contiguous by the
   same ordering),

with no per-class stores and no mask recombination -- 2-4 numpy calls
per level against the int8 kernel's 3+ per *family*, on ~10-30x less
data.  The (rare) XOR/XNOR rows evaluate pairwise from the same gather.

Lane padding mirrors the numpy kernel's pad-*row* treatment (PR 4): when
``K`` is not a multiple of 64, the trailing lanes of the last word pair
hold constant 0 -- lanes never interact, so any valid ternary constant is
inert by construction, and the first ``K`` lanes are unaffected by batch
widening (tested property).  The same two pad *rows* as the numpy kernel
provide the reduction identities: the min-family pad holds constant 1
(all-ones in both planes), the max/xor-family pad constant 0; both are
symmetric across planes, so the swapped gathers of NAND/NOR keep them
neutral.

Dispatch
--------

:meth:`repro.sim.batch.BatchSimulator.restricted` wraps each cached
:class:`~repro.sim.batch.ConeSimulator` in a lazily-attached packed twin
when the backend resolves to ``packed`` (the ``REPRO_BACKEND`` seam in
:mod:`repro.envflags`).  The twin implements the ``ConeSimulator``
interface -- ``run_codes`` returns identical unpacked int8 codes in the
parent's row order -- plus :meth:`PackedConeSimulator.screen`, the
justifier's fast path that computes the (consistent, covered) verdicts
against a :class:`~repro.sim.cover.CompiledRequirements` directly on the
packed words, without materializing per-node codes.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING

import numpy as np

from ..algebra.ternary import ONE, X, ZERO
from .batch import _N_PAD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batch dispatches here)
    from .batch import ConeSimulator
    from .cover import CompiledRequirements

__all__ = ["LANES", "PackedConeSimulator", "pack_codes", "unpack_words", "words_for"]

#: Batch columns per uint64 word pair (2 bits per {0,1,x} value).
LANES = 64

_ALL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Word views assume little-endian byte <-> bit-lane order; byteswap on BE.
_BIG_ENDIAN = sys.byteorder == "big"

#: ``2*d1 + p1`` -> ternary code ((1, 0) defensively decodes as x).
_DECODE = np.array([ZERO, X, X, ONE], dtype=np.int8)
_DECODE.setflags(write=False)

#: Gate classes in within-level row order.  The order makes the
#: AND-reduce rows {AND, NAND}, the OR-reduce rows {NOR, OR} and the
#: complemented rows {NAND, NOR} all contiguous ranges.
_CLASSES = ("and", "nand", "nor", "or", "xor", "xnor")
#: Classes whose gather swaps each operand's plane pair (the NOT half).
_SWAPPED = ("nand", "nor")
#: Classes whose reduce result is complemented in place.
_COMPLEMENTED = ("nand", "nor")


def words_for(columns: int) -> int:
    """Number of uint64 words per plane for ``columns`` lanes (>= 1)."""
    return max(1, -(-columns // LANES))


def _byteswapped(words: np.ndarray) -> np.ndarray:
    return words.byteswap() if _BIG_ENDIAN else words


def pack_codes(codes: np.ndarray) -> np.ndarray:
    """Pack ternary codes ``(n, 3, K)`` into plane pairs ``(n, 2, 3, W)``.

    Axis 1 is the (d1, p1) plane pair; lanes ``K .. 64 * W`` hold
    constant 0 (valid and inert -- lanes never interact).
    """
    n, three, k = codes.shape
    w = words_for(k)
    d1 = np.packbits(codes == ONE, axis=-1, bitorder="little")
    p1 = np.packbits(codes != ZERO, axis=-1, bitorder="little")
    buf = np.zeros((n, 2, three, w * 8), dtype=np.uint8)
    buf[:, 0, :, : d1.shape[-1]] = d1
    buf[:, 1, :, : p1.shape[-1]] = p1
    return _byteswapped(buf.view(np.uint64))


def unpack_words(words: np.ndarray, k: int) -> np.ndarray:
    """Unpack plane pairs ``(n, 2, 3, W)`` into ternary codes ``(n, 3, K)``."""
    lane_bytes = np.ascontiguousarray(_byteswapped(words)).view(np.uint8)
    bits = np.unpackbits(lane_bytes, axis=-1, bitorder="little")  # (n, 2, 3, 64W)
    return _DECODE[2 * bits[:, 0, :, :k] + bits[:, 1, :, :k]]


def _lane_bools(plane: np.ndarray, k: int) -> np.ndarray:
    """First ``k`` lane bits of one plane's words ``(W,)`` as bool."""
    lane_bytes = np.ascontiguousarray(_byteswapped(plane)).view(np.uint8)
    return np.unpackbits(lane_bytes, bitorder="little")[:k].astype(bool)


def _xor_planes(sub: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pairwise ternary XOR over the arity axis of ``(n, A, 2, 3, W)``.

    Returns the ``(d1, p1)`` planes.  Padded operand columns hold
    constant 0, the XOR identity, so the loop safely runs over the full
    padded arity.
    """
    d1 = sub[:, 0, 0]
    p1 = sub[:, 0, 1]
    for operand in range(1, sub.shape[1]):
        bd = sub[:, operand, 0]
        bp = sub[:, operand, 1]
        anyx = (p1 & ~d1) | (bp & ~bd)
        v = d1 ^ bd
        d1 = v & ~anyx
        p1 = v | anyx
    return d1, p1


def _class_of(kind: str, inverted: bool) -> str:
    if kind == "min":
        return "nand" if inverted else "and"
    if kind == "max":
        return "nor" if inverted else "or"
    return "xnor" if inverted else "xor"


def _compile_plan(cone: "ConeSimulator") -> tuple[list[tuple], np.ndarray]:
    """Renumber the cone's rows level-block-contiguously and build plans.

    Returns ``(plans, new_of)`` where ``new_of[old_row] -> plan node row``
    for all ``n_nodes + 2`` rows (the two pad rows keep their indices;
    state rows are the *doubled* plan rows).  Each plan is the tuple
    ``(in_idx, n_and, n_reduce, out_row, inv_bounds, xors)``:

    * ``in_idx`` -- ``(n_level, A, 2)`` state-row gather, each operand a
      ``(d1, p1)`` pair (swapped for NAND/NOR rows), family-padded;
    * ``n_and`` / ``n_reduce`` -- the AND-reduce prefix and the total
      reduce rows (the OR-reduce covers ``[n_and, n_reduce)``);
    * ``out_row`` -- first *state* row of the level's output block;
    * ``inv_bounds`` -- state-row range to complement (NAND+NOR), or None;
    * ``xors`` -- ``(t_lo, t_hi, out_row, inverted)`` XOR/XNOR blocks.
    """
    n_nodes = cone.n_nodes
    pad_min = n_nodes
    pad_max = n_nodes + 1
    # (class, out_old, fanin_old, pad_row) per level, class-sorted.
    level_rows: list[list[tuple[str, int, list[int], int]]] = []
    written = np.zeros(n_nodes, dtype=bool)
    for fused_groups in cone._levels:
        rows: list[tuple[str, int, list[int], int]] = []
        for fused in fused_groups:
            inverted = np.zeros(len(fused.out_idx), dtype=bool)
            if fused.invert_all:
                inverted[:] = True
            elif fused.invert is not None:
                inverted[fused.invert] = True
            pad = pad_min if fused.kind == "min" else pad_max
            for row in range(len(fused.out_idx)):
                out = int(fused.out_idx[row])
                rows.append(
                    (
                        _class_of(fused.kind, bool(inverted[row])),
                        out,
                        [int(ref) for ref in fused.in_idx[row]],
                        pad,
                    )
                )
                written[out] = True
        rows.sort(key=lambda item: _CLASSES.index(item[0]))
        level_rows.append(rows)
    order = [row for row in range(n_nodes) if not written[row]]
    level_starts = []
    for rows in level_rows:
        level_starts.append(len(order))
        order.extend(out for _, out, _, _ in rows)
    new_of = np.empty(n_nodes + _N_PAD, dtype=np.int64)
    new_of[np.array(order, dtype=np.int64)] = np.arange(n_nodes)
    new_of[pad_min] = pad_min
    new_of[pad_max] = pad_max

    plans: list[tuple] = []
    for rows, start in zip(level_rows, level_starts):
        arity = max(len(fanin) for _, _, fanin, _ in rows)
        in_idx = np.empty((len(rows), arity, 2), dtype=np.int64)
        for index, (name, _, fanin, pad) in enumerate(rows):
            swap = name in _SWAPPED
            for slot, ref in enumerate(fanin + [pad] * (arity - len(fanin))):
                row2 = 2 * int(new_of[ref])
                in_idx[index, slot] = (row2 + 1, row2) if swap else (row2, row2 + 1)
        counts = {name: 0 for name in _CLASSES}
        for name, _, _, _ in rows:
            counts[name] += 1
        n_and = counts["and"] + counts["nand"]
        n_reduce = n_and + counts["nor"] + counts["or"]
        n_inv = counts["nand"] + counts["nor"]
        inv_bounds = None
        if n_inv:
            inv_lo = 2 * (start + counts["and"])
            inv_bounds = (inv_lo, inv_lo + 2 * n_inv)
        xors = []
        t_row = n_reduce
        for name in ("xor", "xnor"):
            if counts[name]:
                xors.append(
                    (
                        t_row,
                        t_row + counts[name],
                        2 * (start + t_row),
                        name == "xnor",
                    )
                )
                t_row += counts[name]
        plans.append((in_idx, n_and, n_reduce, 2 * start, inv_bounds, xors))
    return plans, new_of


def _propagate_plan(plans: list[tuple], vals: np.ndarray) -> None:
    """Evaluate all level plans in place on the packed state.

    ``vals`` has shape ``(2 * (n_rows + 2), 3, W)`` with the two pad row
    pairs already holding constant 1 / constant 0.  Reduces write straight
    into the state (``take`` copies, so there is no aliasing).
    """
    for in_idx, n_and, n_reduce, out_row, inv_bounds, xors in plans:
        t = vals.take(in_idx, axis=0)  # (n, A, 2, 3, W)
        if n_reduce:
            out = vals[out_row : out_row + 2 * n_reduce]
            out = out.reshape(n_reduce, 2, out.shape[1], out.shape[2])
            if n_and:
                np.bitwise_and.reduce(t[:n_and], axis=1, out=out[:n_and])
            if n_reduce > n_and:
                np.bitwise_or.reduce(t[n_and:n_reduce], axis=1, out=out[n_and:])
        if inv_bounds is not None:
            inv = vals[inv_bounds[0] : inv_bounds[1]]
            np.invert(inv, out=inv)
        for t_lo, t_hi, x_row, inverted in xors:
            d1, p1 = _xor_planes(t[t_lo:t_hi])
            block = np.empty((t_hi - t_lo, 2) + d1.shape[1:], dtype=np.uint64)
            if inverted:  # XNOR = NOT(XOR) = (~p1, ~d1)
                np.invert(p1, out=block[:, 0])
                np.invert(d1, out=block[:, 1])
            else:
                block[:, 0] = d1
                block[:, 1] = p1
            vals[x_row : x_row + 2 * (t_hi - t_lo)] = block.reshape(
                -1, *d1.shape[1:]
            )


class PackedConeSimulator:
    """Packed-word twin of one :class:`~repro.sim.batch.ConeSimulator`.

    Shares the parent cone's compiled levels (recompiled once into the
    packed plan) and implements the same interface -- :meth:`run_codes`
    returns identical int8 codes in the parent's row order -- plus
    :meth:`screen`, the justifier's fast path.  Constructed lazily by
    :meth:`repro.sim.batch.BatchSimulator._dispatch` and cached on the
    cone, so plan compilation amortizes exactly like the cone LRU.

    The packed state buffers are cached per word count and reused across
    simulations: every non-constant row is overwritten by the input store
    or a level reduce, so only the pad/const rows carry state between
    calls -- and those are written once at buffer creation.
    """

    #: Dispatch tag consumed by tests and stats consumers.
    backend = "packed"

    def __init__(self, cone: "ConeSimulator") -> None:
        self._cone = cone
        self._plans, self._row_of = _compile_plan(cone)
        #: Old-local -> plan node row (pads excluded); the requirement
        #: remap applied by :meth:`localize` on top of the parent's.
        self._node_rows = self._row_of[: cone.n_nodes]
        self._pi_rows2 = self._doubled(self._row_of[cone._pi_local])
        self._node_rows2 = self._doubled(self._node_rows)
        self._const0_rows2 = self._doubled(self._row_of[cone._const0])
        self._const1_rows2 = self._doubled(self._row_of[cone._const1])
        self._buffers: dict[int, np.ndarray] = {}

    @staticmethod
    def _doubled(rows: np.ndarray) -> np.ndarray:
        """Interleaved state rows ``[2r, 2r+1, ...]`` for plan node rows."""
        return np.stack([2 * rows, 2 * rows + 1], axis=1).reshape(-1)

    # -- ConeSimulator interface (delegated metadata) -------------------

    @property
    def netlist(self):
        return self._cone.netlist

    @property
    def stats(self):
        return self._cone.stats

    @property
    def nodes(self):
        return self._cone.nodes

    @property
    def n_nodes(self):
        return self._cone.n_nodes

    @property
    def global_to_local(self):
        return self._cone.global_to_local

    @property
    def pi_index(self):
        return self._cone.pi_index

    @property
    def support(self):
        return self._cone.support

    def local_indices(self, global_indices: np.ndarray) -> np.ndarray:
        """Map global dense indices to cone-local rows (-1 when outside)."""
        return self._cone.local_indices(global_indices)

    def localize(self, compiled: "CompiledRequirements") -> "CompiledRequirements":
        """Remap requirements into plan rows (what :meth:`screen` reads)."""
        return self._cone.localize(compiled).remapped(self._node_rows)

    # -- Simulation -----------------------------------------------------

    def _buffer(self, w: int) -> np.ndarray:
        vals = self._buffers.get(w)
        if vals is None:
            n2 = 2 * self._cone.n_nodes
            vals = np.empty((n2 + 2 * _N_PAD, 3, w), dtype=np.uint64)
            vals[n2 : n2 + 2] = _ALL  # min-family pad: constant 1
            vals[n2 + 2 : n2 + 4] = 0  # max/xor-family pad: constant 0
            if self._const0_rows2.size:
                vals[self._const0_rows2] = 0
            if self._const1_rows2.size:
                vals[self._const1_rows2] = _ALL
            self._buffers[w] = vals
        return vals

    def _simulate(self, pi_codes: np.ndarray) -> tuple[np.ndarray, int]:
        """Pack, propagate, and return ``(vals, K)`` in state row space."""
        n_pis, three, k = pi_codes.shape
        cone = self._cone
        if three != 3 or n_pis != len(cone.pi_index):
            raise ValueError(
                f"expected shape ({len(cone.pi_index)}, 3, K), got {pi_codes.shape}"
            )
        stats = cone.stats
        w = words_for(k)
        if stats is not None:
            stats.count("batch.runs")
            stats.count("batch.columns", k)
            stats.count("cone.runs")
            stats.count("cone.columns", k)
            stats.count("backend.packed.runs")
            stats.count("backend.packed.columns", k)
            stats.count("backend.packed.words", w)
        vals = self._buffer(w)
        if n_pis:
            vals[self._pi_rows2] = pack_codes(pi_codes).reshape(-1, 3, w)
        _propagate_plan(self._plans, vals)
        return vals, k

    def run_codes(self, pi_codes: np.ndarray) -> np.ndarray:
        """Simulate from raw ternary codes over the cone.

        Same contract as :meth:`repro.sim.batch.ConeSimulator.run_codes`:
        rows ordered as :attr:`pi_index` in, cone-local codes
        ``(n_cone_nodes, 3, K)`` out -- bit-identical to the numpy kernel.
        """
        vals, k = self._simulate(pi_codes)
        pairs = vals[self._node_rows2].reshape(self._cone.n_nodes, 2, 3, -1)
        return unpack_words(pairs, k)

    def screen(
        self, pi_codes: np.ndarray, compiled: "CompiledRequirements"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate and check requirements without unpacking node codes.

        ``compiled`` must come from :meth:`localize` (plan row space).
        Returns ``(consistent, covered)`` boolean arrays over the ``K``
        columns, exactly equal to the numpy kernel's
        ``consistent_with`` / ``covered_by`` verdicts: a lane contradicts
        a required 1 iff its value is a definite 0 (``~p1``) and a
        required 0 iff definite 1 (``d1``); it covers iff the definite
        value matches.
        """
        vals, k = self._simulate(pi_codes)
        stats = self._cone.stats
        if stats is not None:
            stats.count("backend.packed.screens")
        if compiled.num_components == 0:
            verdict = np.ones(k, dtype=bool)
            return verdict, verdict
        rows2 = 2 * compiled.nodes
        d1 = vals[rows2, compiled.positions]  # (m, W)
        np1 = ~vals[rows2 + 1, compiled.positions]
        req_one = (compiled.values == ONE)[:, None]
        contradiction = np.where(req_one, np1, d1)
        satisfied = np.where(req_one, d1, np1)
        consistent = ~_lane_bools(np.bitwise_or.reduce(contradiction, axis=0), k)
        covered = _lane_bools(np.bitwise_and.reduce(satisfied, axis=0), k)
        if stats is not None:
            stats.count("backend.packed.rejected", int(k - consistent.sum()))
        return consistent, covered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cone = self._cone
        return (
            f"PackedConeSimulator({cone.netlist.name!r}, {cone.n_nodes} nodes, "
            f"{len(self._plans)} levels)"
        )
