"""Reference waveform-triple simulator (scalar, dictionary based).

Straightforward topological evaluation of a netlist over the triple domain:
each line's triple is computed componentwise with the ternary gate tables.
This simulator is the executable specification -- the vectorized
:mod:`repro.sim.batch` simulator is property-tested against it -- and is
convenient for small examples and debugging.
"""

from __future__ import annotations

from typing import Mapping

from ..algebra.ternary import (
    AND_TABLE,
    NOT_TABLE,
    ONE,
    OR_TABLE,
    XOR_TABLE,
    ZERO,
)
from ..algebra.triple import Triple, UNKNOWN
from ..circuit.netlist import GateType, Netlist

__all__ = ["simulate_triples"]

_REDUCE = {
    GateType.AND: (AND_TABLE, False),
    GateType.NAND: (AND_TABLE, True),
    GateType.OR: (OR_TABLE, False),
    GateType.NOR: (OR_TABLE, True),
    GateType.XOR: (XOR_TABLE, False),
    GateType.XNOR: (XOR_TABLE, True),
}


def simulate_triples(
    netlist: Netlist, pi_values: Mapping[str, Triple]
) -> dict[str, Triple]:
    """Simulate a two-pattern assignment, returning a triple per node.

    ``pi_values`` maps primary-input names to triples; unassigned inputs
    default to ``xxx``.  The result maps *every* node name to its triple.
    """
    unknown_names = set(pi_values) - set(netlist.input_names)
    if unknown_names:
        raise ValueError(f"not primary inputs: {sorted(unknown_names)}")

    values: list[Triple] = [UNKNOWN] * len(netlist)
    for index in netlist.topo_order:
        node = netlist.node_at(index)
        if node.is_input:
            values[index] = pi_values.get(node.name, UNKNOWN)
            continue
        if node.gate_type is GateType.CONST0:
            values[index] = Triple.stable(ZERO)
            continue
        if node.gate_type is GateType.CONST1:
            values[index] = Triple.stable(ONE)
            continue
        fanin = [values[i] for i in netlist.fanin_indices(index)]
        if node.gate_type is GateType.BUF:
            values[index] = fanin[0]
            continue
        if node.gate_type is GateType.NOT:
            values[index] = fanin[0].inverted()
            continue
        table, invert = _REDUCE[node.gate_type]
        components = []
        for position in range(3):
            acc = fanin[0].components()[position]
            for operand in fanin[1:]:
                acc = int(table[acc, operand.components()[position]])
            if invert:
                acc = int(NOT_TABLE[acc])
            components.append(acc)
        values[index] = Triple.of(*components)
    return {netlist.node_at(i).name: values[i] for i in range(len(netlist))}
