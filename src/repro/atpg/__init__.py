"""ATPG layer: justification, dynamic compaction, and test enrichment."""

from .bnb import BranchAndBoundJustifier, SearchExhausted
from .enrich import EnrichmentReport, generate_enriched
from .generator import (
    AtpgConfig,
    Heuristic,
    PrimaryOutcome,
    TestGenerator,
    derive_primary_rng,
    generate_basic,
)
from .heuristics import longest_first, order_pool
from .justify import (
    Justifier,
    JustifyResult,
    JustifyStats,
    has_implication_conflict,
)
from .requirements import RequirementSet
from .result import GeneratedTest, GenerationResult
from .static_compaction import StaticCompactionResult, compact_tests

__all__ = [
    "RequirementSet",
    "Justifier",
    "JustifyResult",
    "JustifyStats",
    "has_implication_conflict",
    "BranchAndBoundJustifier",
    "SearchExhausted",
    "AtpgConfig",
    "Heuristic",
    "TestGenerator",
    "generate_basic",
    "PrimaryOutcome",
    "derive_primary_rng",
    "GeneratedTest",
    "GenerationResult",
    "EnrichmentReport",
    "generate_enriched",
    "order_pool",
    "longest_first",
    "compact_tests",
    "StaticCompactionResult",
]
