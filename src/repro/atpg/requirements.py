"""Accumulated requirement sets for multi-fault tests (Section 2.2).

A test under construction must satisfy the union
``U { A(p_j) : p_j in P(t) }`` of the requirement sets of every fault
assigned to it.  :class:`RequirementSet` maintains that union as a mapping
node -> merged :class:`Triple`, detects conflicts on addition, and computes
the quantity the value-based compaction heuristic minimizes:
``n_delta(p_i) = |A(p_i) - U A(p_j)|`` -- the number of *new* value
components fault ``p_i`` would add.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..algebra.triple import Triple
from ..sim.cover import CompiledRequirements

__all__ = ["RequirementSet"]


class RequirementSet:
    """An immutable union of fault requirement sets."""

    __slots__ = ("_values", "_compiled")

    def __init__(self, values: Mapping[int, Triple] | None = None) -> None:
        self._values: dict[int, Triple] = dict(values) if values else {}
        self._compiled: CompiledRequirements | None = None

    # ------------------------------------------------------------------

    def try_add(self, addition: Mapping[int, Triple]) -> "RequirementSet | None":
        """Return a new set with ``addition`` merged in, or ``None`` on conflict.

        ``addition`` is typically the ``A(p)`` of a candidate secondary
        target fault.  The receiver is never modified.
        """
        merged = dict(self._values)
        for node, triple in addition.items():
            existing = merged.get(node)
            if existing is None:
                merged[node] = triple
            else:
                combined = existing.merge(triple)
                if combined is None:
                    return None
                merged[node] = combined
        result = RequirementSet.__new__(RequirementSet)
        result._values = merged
        result._compiled = None
        return result

    def delta_count(self, addition: Mapping[int, Triple]) -> int | None:
        """``n_delta``: number of new value components, or ``None`` on conflict.

        This implements the value-based secondary-target selection: the
        fault whose requirements are already mostly implied by the current
        union is the cheapest to add.
        """
        total = 0
        for node, triple in addition.items():
            existing = self._values.get(node)
            if existing is None:
                total += triple.specified_count()
                continue
            if existing.merge(triple) is None:
                return None
            total += triple.new_components_vs(existing)
        return total

    def conflicts_with(self, addition: Mapping[int, Triple]) -> bool:
        """True when merging ``addition`` is impossible."""
        for node, triple in addition.items():
            existing = self._values.get(node)
            if existing is not None and existing.merge(triple) is None:
                return True
        return False

    # ------------------------------------------------------------------

    @property
    def values(self) -> Mapping[int, Triple]:
        """The merged node -> triple mapping (do not mutate)."""
        return self._values

    def compiled(self) -> CompiledRequirements:
        """Flattened arrays for batch checking (cached)."""
        if self._compiled is None:
            self._compiled = CompiledRequirements(self._values)
        return self._compiled

    def component_count(self) -> int:
        """Total number of specified value components."""
        return sum(t.specified_count() for t in self._values.values())

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[tuple[int, Triple]]:
        return iter(self._values.items())

    def __contains__(self, node: int) -> bool:
        return node in self._values

    def __repr__(self) -> str:
        return f"RequirementSet({len(self._values)} lines, {self.component_count()} components)"
