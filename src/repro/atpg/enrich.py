"""The test enrichment procedure (Section 3 of the paper).

Enrichment runs the dynamic-compaction generator with *two* pools:

* ``P0`` -- faults on the longest paths.  Only these become primary target
  faults, so they alone determine the test-set size;
* ``P1`` -- faults on the next-to-longest paths.  They are offered as
  secondary target faults only after every ``P0`` candidate has been
  considered for the current test, and are never primaries, so their
  detection is "free": it cannot increase the number of tests.

The :class:`EnrichmentReport` wraps the raw generation result with the
paper's Table 6 quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.netlist import Netlist
from ..faults.universe import FaultRecord, TargetSets
from ..robustness import AbortedFault, Budget
from ..sim.batch import BatchSimulator
from .generator import AtpgConfig, TestGenerator
from .justify import Justifier
from .result import GenerationResult

__all__ = ["EnrichmentReport", "generate_enriched"]


@dataclass
class EnrichmentReport:
    """Table 6 style view of an enrichment run."""

    result: GenerationResult
    targets: TargetSets

    @property
    def num_tests(self) -> int:
        """Number of tests (determined by P0 alone)."""
        return self.result.num_tests

    @property
    def p0_total(self) -> int:
        """|P0|."""
        return len(self.result.pools[0])

    @property
    def p0_detected(self) -> int:
        """Faults detected out of P0."""
        return self.result.detected_by_pool[0]

    @property
    def p01_total(self) -> int:
        """|P0 union P1|."""
        return self.result.total_faults

    @property
    def p01_detected(self) -> int:
        """Faults detected out of P0 union P1."""
        return self.result.total_detected

    @property
    def p1_detected(self) -> int:
        """Faults detected out of P1 alone."""
        return self.result.detected_by_pool[1] if len(self.result.detected_by_pool) > 1 else 0

    @property
    def aborted(self) -> int:
        """Faults aborted by a resource budget (0 on unbudgeted runs)."""
        return self.result.num_aborted

    @property
    def aborted_faults(self) -> list[AbortedFault]:
        """The aborted faults with their per-fault reasons."""
        return self.result.aborted_faults

    def summary(self) -> str:
        """One-line Table 6 row."""
        return (
            f"{self.result.netlist.name}: i0={self.targets.i0} "
            f"P0 {self.p0_detected}/{self.p0_total}, "
            f"P0+P1 {self.p01_detected}/{self.p01_total}, "
            f"{self.num_tests} tests"
        )


def generate_enriched(
    netlist: Netlist,
    targets: TargetSets | list[list[FaultRecord]],
    config: AtpgConfig | None = None,
    simulator: BatchSimulator | None = None,
    justifier: "Justifier | None" = None,
    budget: Budget | None = None,
) -> EnrichmentReport | GenerationResult:
    """Run test enrichment.

    Accepts either a :class:`TargetSets` (the standard two-set case,
    returning an :class:`EnrichmentReport`) or an explicit list of pools
    ``[P0, P1, ..., Pk]`` (the paper's noted generalization to more
    subsets, returning the raw :class:`GenerationResult`; primaries are
    drawn from the first pool only).  ``budget`` bounds the run (see
    :class:`~repro.robustness.Budget`); a tripped budget degrades the run
    and surfaces aborted faults on the report.
    """
    generator = TestGenerator(netlist, config, simulator, justifier, budget=budget)
    if isinstance(targets, TargetSets):
        result = generator.generate([targets.p0, targets.p1])
        return EnrichmentReport(result=result, targets=targets)
    return generator.generate(list(targets))
