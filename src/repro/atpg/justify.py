"""Simulation-based justification (Section 2.1 of the paper).

Given a set of required line values (the union of ``A(p)`` over the faults
assigned to the test under construction), the justifier searches for a
fully specified two-pattern test:

1. every primary input starts as ``x x x``;
2. **necessary values**: for every unspecified input position ``beta_ij``
   (``j in {1, 3}``; the intermediate position is derived), both values are
   tried by trial simulation.  If each of 0 and 1 contradicts a required
   value, the search fails; if exactly one contradicts, the other is
   assigned permanently.  This repeats to a fixpoint;
3. **decisions**: when no necessary value exists, an input with exactly one
   specified endpoint is completed to a *stable* value if possible;
   otherwise a random unspecified position gets a random value.  Back to 2.

There is no backtracking -- a conflict after random decisions simply fails
the attempt, exactly as in the paper (which points out that a
branch-and-bound procedure would remove the resulting variance; see
:mod:`repro.atpg.bnb` for that extension).

Key properties used for efficiency:

* three-valued simulation is *monotone*: specifying more inputs only
  refines ``x`` components and never flips a specified one.  Hence once the
  requirements are **covered** by a partial assignment, any completion
  works, and the remaining inputs are filled with random stable values.
* all candidate values of one fixpoint round are simulated as a single
  batch (one column per candidate) by :class:`~repro.sim.batch.BatchSimulator`.
* trial simulation runs on the **cone-restricted** sub-simulator
  (:meth:`~repro.sim.batch.BatchSimulator.restricted`): the requirements
  depend only on the transitive-fanin cone of the required lines, so only
  that cone is simulated.  Codes on cone nodes are identical to a full
  simulation (the tested cone-equivalence invariant), and
  ``REPRO_FULL_SIM=1`` (snapshotted per process, :mod:`repro.envflags`)
  falls back to simulating the whole netlist.
* under ``REPRO_BACKEND=packed`` the cone simulator is the bit-packed
  kernel (:mod:`repro.sim.packed`): each fixpoint round screens its whole
  candidate batch 32 columns per uint64 word and rejects the inconsistent
  ones in one pass.  The final verification below always runs the numpy
  full-netlist simulation (scalar-precision verify), so the backend only
  accelerates trial screening.
* the partial assignment is kept as one ``(n_support, 3)`` ternary-code
  array updated in place by :class:`_SearchState`, so fixpoint rounds
  build their candidate batch by array copy instead of re-walking dicts.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..algebra.ternary import ONE, X, ZERO
from ..algebra.triple import Triple
from ..circuit.analysis import support_inputs
from ..circuit.netlist import Netlist
from ..envflags import full_sim_requested
from ..robustness import Budget, InternalInvariantError
from ..sim.batch import LRU_CACHE_SIZE, BatchSimulator, ConeSimulator
from ..sim.vectors import TwoPatternTest
from .requirements import RequirementSet

__all__ = ["Justifier", "JustifyResult", "JustifyStats", "has_implication_conflict"]


@dataclass
class JustifyStats:
    """Work counters for one justification attempt."""

    simulations: int = 0
    rounds: int = 0
    decisions: int = 0
    necessary_assignments: int = 0


@dataclass
class JustifyResult:
    """A successful justification: the test plus its simulated values."""

    test: TwoPatternTest
    #: Node codes of shape ``(n_nodes, 3)`` for the final test.
    sim_codes: np.ndarray
    stats: JustifyStats = field(default_factory=JustifyStats)


class _SearchState:
    """Endpoint assignments (pattern 1 / pattern 2) for the support inputs.

    The state *is* the base simulation column: ``base[row]`` holds the
    ``(v1, v2, v3)`` ternary codes of support input ``support[row]``, with
    ``x`` marking unassigned endpoints and the intermediate component kept
    derived (stable value when both endpoints agree, else ``x``).  Rows
    follow ``support`` order, which matches the cone simulator's input
    rows, so fixpoint rounds hand ``base`` to the simulator as-is.
    """

    def __init__(self, support: list[int]) -> None:
        self.support = support
        self.row_of = {pi: row for row, pi in enumerate(support)}
        self.base = np.full((len(support), 3), X, dtype=np.int8)

    def unresolved(self) -> list[tuple[int, int]]:
        """Unspecified (input, position) pairs; position is 1 or 3.

        Order is the scan order the random decisions rely on: support rows
        ascending, position 1 before 3 within a row -- exactly the
        row-major order of ``np.nonzero``.
        """
        rows, cols = np.nonzero(self.base[:, 0::2] == X)
        support = self.support
        return [
            (support[row], 1 if col == 0 else 3) for row, col in zip(rows, cols)
        ]

    def assign(self, pi: int, position: int, value: int) -> None:
        row = self.row_of[pi]
        self.base[row, 0 if position == 1 else 2] = value
        v1, v3 = self.base[row, 0], self.base[row, 2]
        self.base[row, 1] = v1 if (v1 == v3 and v1 != X) else X

    def endpoints(self, pi: int) -> tuple[int, int]:
        """The (pattern 1, pattern 2) codes of one input (``x`` = unset)."""
        row = self.row_of[pi]
        return int(self.base[row, 0]), int(self.base[row, 2])

    def triple_of(self, pi: int) -> Triple:
        row = self.row_of[pi]
        return Triple.of(*(int(v) for v in self.base[row]))

    def clone(self) -> "_SearchState":
        copy = _SearchState.__new__(_SearchState)
        copy.support = self.support
        copy.row_of = self.row_of
        copy.base = self.base.copy()
        return copy

    def half_specified_input(self) -> tuple[int, int, int] | None:
        """An input with exactly one endpoint set: (pi, open position, value).

        Implements the paper's preference for completing inputs to stable
        values before resorting to random decisions.  First match in
        support order, as before vectorization.
        """
        base = self.base
        open1 = base[:, 0] == X
        open3 = base[:, 2] == X
        rows = np.nonzero(open1 != open3)[0]
        if rows.size == 0:
            return None
        row = int(rows[0])
        pi = self.support[row]
        if open3[row]:  # endpoint 1 set, complete position 3 to it
            return (pi, 3, int(base[row, 0]))
        return (pi, 1, int(base[row, 2]))


class Justifier:
    """Reusable justification engine bound to one netlist.

    ``use_cones`` selects the trial-simulation kernel: ``True`` restricts
    each justification to the fanin cone of its required lines, ``False``
    simulates the full netlist, ``None`` (default) restricts unless
    ``REPRO_FULL_SIM`` is set.
    """

    def __init__(
        self,
        netlist: Netlist,
        simulator: BatchSimulator | None = None,
        stats=None,
        use_cones: bool | None = None,
    ) -> None:
        """``stats`` is an optional EngineStats-compatible sink (``count``
        + ``timer``); when set, each :meth:`justify` call records
        ``justify.calls``, accumulates wall-clock time under ``justify``,
        and tracks the cone saving as ``justify.cone_nodes`` (node-columns
        actually simulated) vs ``justify.full_nodes`` (node-columns a full
        simulation would have cost)."""
        self.netlist = netlist
        self.simulator = simulator or BatchSimulator(netlist)
        self._stats = stats
        if use_cones is None:
            use_cones = not full_sim_requested()
        self.use_cones = use_cones
        self._pi_row = {pi: row for row, pi in enumerate(netlist.input_indices)}
        self._n_pis = len(netlist.input_indices)
        self._support_cache: OrderedDict[frozenset[int], list[int]] = OrderedDict()

    # ------------------------------------------------------------------

    def _support(self, requirements: RequirementSet) -> list[int]:
        key = frozenset(requirements.values.keys())
        cached = self._support_cache.get(key)
        if cached is None:
            cached = support_inputs(self.netlist, key)
            self._support_cache[key] = cached
            while len(self._support_cache) > LRU_CACHE_SIZE:
                self._support_cache.popitem(last=False)
        else:
            self._support_cache.move_to_end(key)
        return cached

    def _cone(self, requirements: RequirementSet) -> ConeSimulator | None:
        """The cone simulator for a requirement set (None on the full path).

        With ``REPRO_BACKEND=packed`` the returned object is the cone's
        :class:`~repro.sim.packed.PackedConeSimulator` twin -- same
        interface plus the packed ``screen`` fast path.
        """
        if not self.use_cones:
            return None
        return self.simulator.restricted(requirements.values.keys())

    def _make_state(
        self, requirements: RequirementSet
    ) -> tuple[_SearchState, ConeSimulator | None]:
        cone = self._cone(requirements)
        support = cone.support if cone is not None else self._support(requirements)
        return _SearchState(support), cone

    def _count_sim(self, columns: int, simulated_nodes: int) -> None:
        if self._stats is not None:
            self._stats.count("justify.cone_nodes", simulated_nodes * columns)
            self._stats.count("justify.full_nodes", self.simulator.n_nodes * columns)

    def _fixpoint(
        self,
        state: _SearchState,
        requirements: RequirementSet,
        stats: JustifyStats,
        cone: ConeSimulator | None,
        budget: Budget | None = None,
        phase: str = "justify",
    ) -> str:
        """Assign all necessary values.

        Returns ``"conflict"``, ``"covered"`` (requirements already
        satisfied) or ``"stuck"`` (a decision is needed).

        When ``budget`` is set, each fixpoint round checks the wall-clock
        deadline and counts against the justification ``node_limit``
        (rounds are this engine's unit of work; each one simulates a full
        candidate batch), raising
        :class:`~repro.robustness.BudgetExceeded` at the round boundary.
        """
        compiled = requirements.compiled()
        if cone is not None:
            compiled = cone.localize(compiled)
            simulator = cone
            full_rows = None
        else:
            simulator = self.simulator
            full_rows = np.array(
                [self._pi_row[pi] for pi in state.support], dtype=np.int64
            )
        # The packed backend screens the candidate batch directly on its
        # packed words (no per-node code materialization); decisions depend
        # only on the exact (consistent, covered) booleans, which are a
        # tested identity between backends, so the search trace -- and hence
        # all downstream output -- is byte-identical.
        screen = getattr(simulator, "screen", None)
        while True:
            if budget is not None:
                budget.check_deadline(phase, rounds=stats.rounds)
                budget.check_nodes(stats.rounds + 1, phase)
            stats.rounds += 1
            # Unresolved (row, endpoint) pairs in scan order (row asc,
            # endpoint 1 before 3); column 1+2i tries ZERO at pair i,
            # column 2+2i tries ONE, column 0 is the unmodified base.
            rows, endpoint_sel = np.nonzero(state.base[:, 0::2] == X)
            pos = endpoint_sel * 2  # base-array column: 0 or 2
            n_unresolved = rows.size
            if cone is not None:
                base = state.base
                sim_rows = rows
            else:
                base = np.full((self._n_pis, 3), X, dtype=np.int8)
                base[full_rows] = state.base
                sim_rows = full_rows[rows]
            k = 1 + 2 * n_unresolved
            batch = np.repeat(base[:, :, None], k, axis=2)  # (rows, 3, K)
            col_zero = 1 + 2 * np.arange(n_unresolved)
            col_one = col_zero + 1
            batch[sim_rows, pos, col_zero] = ZERO
            batch[sim_rows, pos, col_one] = ONE
            patched_rows = np.concatenate([sim_rows, sim_rows])
            patched_cols = np.concatenate([col_zero, col_one])
            v1 = batch[patched_rows, 0, patched_cols]
            v3 = batch[patched_rows, 2, patched_cols]
            batch[patched_rows, 1, patched_cols] = np.where(
                (v1 == v3) & (v1 != X), v1, X
            )
            if screen is not None:
                consistent, covered_cols = screen(batch, compiled)
                stats.simulations += 1
                self._count_sim(k, simulator.n_nodes)
                if not consistent[0]:
                    return "conflict"
                if covered_cols[0]:
                    return "covered"
            else:
                sim = simulator.run_codes(batch)
                stats.simulations += 1
                self._count_sim(k, simulator.n_nodes)
                consistent = compiled.consistent_with(sim)
                if not consistent[0]:
                    return "conflict"
                if compiled.covered_by(sim[:, :, :1])[0]:
                    return "covered"
            zero_ok = consistent[col_zero]
            one_ok = consistent[col_one]
            if (~zero_ok & ~one_ok).any():
                return "conflict"
            forced = zero_ok != one_ok
            if not forced.any():
                return "stuck" if n_unresolved else "conflict"
            forced_rows = rows[forced]
            state.base[forced_rows, pos[forced]] = np.where(
                zero_ok[forced], ZERO, ONE
            )
            f1 = state.base[forced_rows, 0]
            f3 = state.base[forced_rows, 2]
            state.base[forced_rows, 1] = np.where(
                (f1 == f3) & (f1 != X), f1, X
            )
            stats.necessary_assignments += int(forced.sum())

    # ------------------------------------------------------------------

    def justify(
        self,
        requirements: RequirementSet,
        rng: random.Random,
        budget: Budget | None = None,
    ) -> JustifyResult | None:
        """Search for a fully specified test satisfying ``requirements``.

        Returns ``None`` when the (incomplete, randomized) search fails.
        A non-null ``budget`` is checked at every fixpoint round and
        raises :class:`~repro.robustness.BudgetExceeded` on a trip; the
        caller decides whether that aborts the fault or the run.
        """
        if self._stats is not None:
            self._stats.count("justify.calls")
            with self._stats.timer("justify"):
                return self._justify(requirements, rng, budget)
        return self._justify(requirements, rng, budget)

    def _justify(
        self,
        requirements: RequirementSet,
        rng: random.Random,
        budget: Budget | None = None,
    ) -> JustifyResult | None:
        if budget is not None and budget.is_null:
            budget = None
        stats = JustifyStats()
        state, cone = self._make_state(requirements)
        covered = False
        while True:
            status = self._fixpoint(state, requirements, stats, cone, budget)
            if status == "conflict":
                return None
            if status == "covered":
                covered = True
                break
            # status == "stuck": make a decision.
            half = state.half_specified_input()
            if half is not None:
                pi, position, value = half
                state.assign(pi, position, value)
            else:
                unresolved = state.unresolved()
                if not unresolved:
                    break  # fully specified but not covered -> verify below
                pi, position = rng.choice(unresolved)
                state.assign(pi, position, rng.randint(ZERO, ONE))
            stats.decisions += 1

        # Complete every input to a fully specified waveform.  Monotonicity
        # of three-valued simulation guarantees coverage is preserved.
        assignment: dict[int, Triple] = {}
        for pi in self.netlist.input_indices:
            if pi in state.row_of:
                v1, v3 = state.endpoints(pi)
                v1 = v1 if v1 != X else rng.randint(ZERO, ONE)
                v3 = v3 if v3 != X else rng.randint(ZERO, ONE)
            else:
                v1 = v3 = rng.randint(ZERO, ONE)  # outside the support cone
            assignment[pi] = Triple.transition(v1, v3)
        test = TwoPatternTest(assignment)

        # The final verification simulates the full netlist: downstream
        # consumers (secondary screening, fault simulation) need codes on
        # every node, not just the cone.
        sim = self.simulator.run_triples([assignment])
        stats.simulations += 1
        self._count_sim(1, self.simulator.n_nodes)
        if not requirements.compiled().covered_by(sim)[0]:
            if covered:  # pragma: no cover - would indicate a simulator bug
                raise InternalInvariantError(
                    "monotonicity violated: covered test regressed"
                )
            return None
        return JustifyResult(test=test, sim_codes=sim[:, :, 0], stats=stats)


def has_implication_conflict(
    netlist_or_justifier: Netlist | Justifier, requirements: RequirementSet
) -> bool:
    """Paper's type-2 undetectability check via implications.

    Runs only the necessary-value fixpoint (no random decisions).  When the
    fixpoint derives a hard conflict -- some input position where both
    values contradict the requirements, or a requirement already
    contradicted -- no test can exist and the fault is undetectable.

    Pass an existing :class:`Justifier` (e.g. a session-owned one) when
    screening many faults: a bare netlist compiles a throwaway simulator
    per call.
    """
    justifier = (
        netlist_or_justifier
        if isinstance(netlist_or_justifier, Justifier)
        else Justifier(netlist_or_justifier)
    )
    state, cone = justifier._make_state(requirements)
    status = justifier._fixpoint(state, requirements, JustifyStats(), cone)
    return status == "conflict"
