"""Simulation-based justification (Section 2.1 of the paper).

Given a set of required line values (the union of ``A(p)`` over the faults
assigned to the test under construction), the justifier searches for a
fully specified two-pattern test:

1. every primary input starts as ``x x x``;
2. **necessary values**: for every unspecified input position ``beta_ij``
   (``j in {1, 3}``; the intermediate position is derived), both values are
   tried by trial simulation.  If each of 0 and 1 contradicts a required
   value, the search fails; if exactly one contradicts, the other is
   assigned permanently.  This repeats to a fixpoint;
3. **decisions**: when no necessary value exists, an input with exactly one
   specified endpoint is completed to a *stable* value if possible;
   otherwise a random unspecified position gets a random value.  Back to 2.

There is no backtracking -- a conflict after random decisions simply fails
the attempt, exactly as in the paper (which points out that a
branch-and-bound procedure would remove the resulting variance; see
:mod:`repro.atpg.bnb` for that extension).

Key properties used for efficiency:

* three-valued simulation is *monotone*: specifying more inputs only
  refines ``x`` components and never flips a specified one.  Hence once the
  requirements are **covered** by a partial assignment, any completion
  works, and the remaining inputs are filled with random stable values.
* all candidate values of one fixpoint round are simulated as a single
  batch (one column per candidate) by :class:`~repro.sim.batch.BatchSimulator`.
* only inputs in the transitive fanin of required lines are searched; other
  inputs cannot affect the requirements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..algebra.ternary import ONE, X, ZERO
from ..algebra.triple import Triple
from ..circuit.analysis import support_inputs
from ..circuit.netlist import Netlist
from ..sim.batch import BatchSimulator
from ..sim.vectors import TwoPatternTest
from .requirements import RequirementSet

__all__ = ["Justifier", "JustifyResult", "JustifyStats", "has_implication_conflict"]

_UNASSIGNED = -1


@dataclass
class JustifyStats:
    """Work counters for one justification attempt."""

    simulations: int = 0
    rounds: int = 0
    decisions: int = 0
    necessary_assignments: int = 0


@dataclass
class JustifyResult:
    """A successful justification: the test plus its simulated values."""

    test: TwoPatternTest
    #: Node codes of shape ``(n_nodes, 3)`` for the final test.
    sim_codes: np.ndarray
    stats: JustifyStats = field(default_factory=JustifyStats)


class _SearchState:
    """Endpoint assignments (pattern 1 / pattern 2) for the support inputs."""

    def __init__(self, support: list[int]) -> None:
        self.support = support
        self.b1 = {pi: _UNASSIGNED for pi in support}
        self.b3 = {pi: _UNASSIGNED for pi in support}

    def unresolved(self) -> list[tuple[int, int]]:
        """Unspecified (input, position) pairs; position is 1 or 3."""
        positions = []
        for pi in self.support:
            if self.b1[pi] == _UNASSIGNED:
                positions.append((pi, 1))
            if self.b3[pi] == _UNASSIGNED:
                positions.append((pi, 3))
        return positions

    def assign(self, pi: int, position: int, value: int) -> None:
        if position == 1:
            self.b1[pi] = value
        else:
            self.b3[pi] = value

    def triple_of(self, pi: int) -> Triple:
        v1 = self.b1[pi] if self.b1[pi] != _UNASSIGNED else X
        v3 = self.b3[pi] if self.b3[pi] != _UNASSIGNED else X
        if v1 == X or v3 == X:
            v2 = X
        else:
            v2 = v1 if v1 == v3 else X
        return Triple.of(v1, v2, v3)

    def half_specified_input(self) -> tuple[int, int, int] | None:
        """An input with exactly one endpoint set: (pi, open position, value).

        Implements the paper's preference for completing inputs to stable
        values before resorting to random decisions.
        """
        for pi in self.support:
            one, three = self.b1[pi], self.b3[pi]
            if one != _UNASSIGNED and three == _UNASSIGNED:
                return (pi, 3, one)
            if one == _UNASSIGNED and three != _UNASSIGNED:
                return (pi, 1, three)
        return None


class Justifier:
    """Reusable justification engine bound to one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        simulator: BatchSimulator | None = None,
        stats=None,
    ) -> None:
        """``stats`` is an optional EngineStats-compatible sink (``count``
        + ``timer``); when set, each :meth:`justify` call records
        ``justify.calls`` and accumulates wall-clock time under
        ``justify``."""
        self.netlist = netlist
        self.simulator = simulator or BatchSimulator(netlist)
        self._stats = stats
        self._pi_row = {pi: row for row, pi in enumerate(netlist.input_indices)}
        self._n_pis = len(netlist.input_indices)
        self._support_cache: dict[frozenset[int], list[int]] = {}

    # ------------------------------------------------------------------

    def _support(self, requirements: RequirementSet) -> list[int]:
        key = frozenset(requirements.values.keys())
        cached = self._support_cache.get(key)
        if cached is None:
            cached = support_inputs(self.netlist, key)
            if len(self._support_cache) > 4096:
                self._support_cache.clear()
            self._support_cache[key] = cached
        return cached

    def _base_codes(self, state: _SearchState) -> np.ndarray:
        """Current assignment as one ``(n_pis, 3)`` code column."""
        base = np.full((self._n_pis, 3), X, dtype=np.int8)
        for pi in state.support:
            triple = state.triple_of(pi)
            row = self._pi_row[pi]
            base[row, 0] = triple.v1
            base[row, 1] = triple.v2
            base[row, 2] = triple.v3
        return base

    @staticmethod
    def _with_candidate(
        base: np.ndarray, row: int, position: int, value: int
    ) -> np.ndarray:
        """Copy of ``base`` with one endpoint set (intermediate re-derived)."""
        column = base.copy()
        column[row, 0 if position == 1 else 2] = value
        v1, v3 = column[row, 0], column[row, 2]
        column[row, 1] = v1 if (v1 == v3 and v1 != X) else X
        return column

    def _fixpoint(
        self,
        state: _SearchState,
        requirements: RequirementSet,
        stats: JustifyStats,
    ) -> str:
        """Assign all necessary values.

        Returns ``"conflict"``, ``"covered"`` (requirements already
        satisfied) or ``"stuck"`` (a decision is needed).
        """
        compiled = requirements.compiled()
        while True:
            stats.rounds += 1
            unresolved = state.unresolved()
            base = self._base_codes(state)
            columns = [base]
            for pi, position in unresolved:
                row = self._pi_row[pi]
                columns.append(self._with_candidate(base, row, position, ZERO))
                columns.append(self._with_candidate(base, row, position, ONE))
            batch = np.stack(columns, axis=2)  # (n_pis, 3, K)
            sim = self.simulator.run_codes(batch)
            stats.simulations += 1
            consistent = compiled.consistent_with(sim)
            if not consistent[0]:
                return "conflict"
            if compiled.covered_by(sim[:, :, :1])[0]:
                return "covered"
            changed = False
            for index, (pi, position) in enumerate(unresolved):
                zero_ok = bool(consistent[1 + 2 * index])
                one_ok = bool(consistent[2 + 2 * index])
                if not zero_ok and not one_ok:
                    return "conflict"
                if zero_ok != one_ok:
                    state.assign(pi, position, ZERO if zero_ok else ONE)
                    stats.necessary_assignments += 1
                    changed = True
            if not changed:
                return "stuck" if unresolved else "conflict"

    # ------------------------------------------------------------------

    def justify(
        self,
        requirements: RequirementSet,
        rng: random.Random,
    ) -> JustifyResult | None:
        """Search for a fully specified test satisfying ``requirements``.

        Returns ``None`` when the (incomplete, randomized) search fails.
        """
        if self._stats is not None:
            self._stats.count("justify.calls")
            with self._stats.timer("justify"):
                return self._justify(requirements, rng)
        return self._justify(requirements, rng)

    def _justify(
        self,
        requirements: RequirementSet,
        rng: random.Random,
    ) -> JustifyResult | None:
        stats = JustifyStats()
        state = _SearchState(self._support(requirements))
        covered = False
        while True:
            status = self._fixpoint(state, requirements, stats)
            if status == "conflict":
                return None
            if status == "covered":
                covered = True
                break
            # status == "stuck": make a decision.
            half = state.half_specified_input()
            if half is not None:
                pi, position, value = half
                state.assign(pi, position, value)
            else:
                unresolved = state.unresolved()
                if not unresolved:
                    break  # fully specified but not covered -> verify below
                pi, position = rng.choice(unresolved)
                state.assign(pi, position, rng.randint(ZERO, ONE))
            stats.decisions += 1

        # Complete every input to a fully specified waveform.  Monotonicity
        # of three-valued simulation guarantees coverage is preserved.
        assignment: dict[int, Triple] = {}
        for pi in self.netlist.input_indices:
            if pi in state.b1:
                v1, v3 = state.b1[pi], state.b3[pi]
                v1 = v1 if v1 != _UNASSIGNED else rng.randint(ZERO, ONE)
                v3 = v3 if v3 != _UNASSIGNED else rng.randint(ZERO, ONE)
            else:
                v1 = v3 = rng.randint(ZERO, ONE)  # outside the support cone
            assignment[pi] = Triple.transition(v1, v3)
        test = TwoPatternTest(assignment)

        sim = self.simulator.run_triples([assignment])
        stats.simulations += 1
        if not requirements.compiled().covered_by(sim)[0]:
            if covered:  # pragma: no cover - would indicate a simulator bug
                raise AssertionError("monotonicity violated: covered test regressed")
            return None
        return JustifyResult(test=test, sim_codes=sim[:, :, 0], stats=stats)


def has_implication_conflict(
    netlist_or_justifier: Netlist | Justifier, requirements: RequirementSet
) -> bool:
    """Paper's type-2 undetectability check via implications.

    Runs only the necessary-value fixpoint (no random decisions).  When the
    fixpoint derives a hard conflict -- some input position where both
    values contradict the requirements, or a requirement already
    contradicted -- no test can exist and the fault is undetectable.
    """
    justifier = (
        netlist_or_justifier
        if isinstance(netlist_or_justifier, Justifier)
        else Justifier(netlist_or_justifier)
    )
    state = _SearchState(justifier._support(requirements))
    status = justifier._fixpoint(state, requirements, JustifyStats())
    return status == "conflict"
