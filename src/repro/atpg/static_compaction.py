"""Static (post-generation) test-set compaction.

The paper's compaction is *dynamic* -- faults are packed into each test as
it is generated.  A standard complementary pass is *static* compaction:
given a finished test set, drop every test whose detected faults are
already covered by the remaining tests.  Dynamic compaction with fault
dropping leaves little slack, but the paper's `uncomp` baseline (and any
externally supplied test set) can shrink substantially.

Two classic orders are provided:

* ``reverse`` -- consider tests latest-first.  Later tests were generated
  for the stubborn faults, earlier tests' primaries often got re-detected
  along the way, so early tests are the likely drops;
* ``greedy``  -- repeatedly keep the test covering the most not-yet-covered
  faults (set-cover greedy), then drop everything redundant.

Both preserve exactly the original detected-fault set (verified against
the detection matrix, never estimated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from ..circuit.netlist import Netlist
from ..faults.universe import FaultRecord
from ..sim.faultsim import FaultSimulator
from ..sim.vectors import TwoPatternTest

__all__ = ["StaticCompactionResult", "compact_tests"]

Order = Literal["reverse", "greedy"]


@dataclass
class StaticCompactionResult:
    """Outcome of a static compaction pass."""

    #: The surviving tests, in original relative order.
    tests: list[TwoPatternTest]
    #: Indices (into the input list) of the surviving tests.
    kept_indices: list[int]
    #: Number of input tests dropped.
    dropped: int
    #: Faults detected by the input set (unchanged by compaction).
    detected: int

    @property
    def num_tests(self) -> int:
        return len(self.tests)


def _drop_redundant(matrix: np.ndarray, order: Sequence[int]) -> list[int]:
    """Keep a test only if it detects a fault nothing kept-so-far detects,
    scanning candidates in ``order`` and then re-checking kept tests for
    redundancy introduced by later picks."""
    kept: list[int] = []
    covered = np.zeros(matrix.shape[0], dtype=bool)
    for index in order:
        gain = matrix[:, index] & ~covered
        if gain.any():
            kept.append(index)
            covered |= matrix[:, index]
    # Second pass: a test kept early may have become redundant.
    changed = True
    while changed:
        changed = False
        for position, index in enumerate(kept):
            others = [k for k in kept if k != index]
            if not others:
                continue
            union = matrix[:, others].any(axis=1)
            if not (matrix[:, index] & ~union).any():
                kept.pop(position)
                changed = True
                break
    return sorted(kept)


def compact_tests(
    netlist: Netlist,
    records: Sequence[FaultRecord],
    tests: Sequence[TwoPatternTest],
    order: Order = "reverse",
    simulator: FaultSimulator | None = None,
) -> StaticCompactionResult:
    """Drop redundant tests without losing any fault detection.

    Parameters
    ----------
    netlist / records:
        The fault population the guarantee is relative to (typically
        ``P0`` or ``P0 + P1``).
    tests:
        The test set to compact.
    order:
        ``"reverse"`` or ``"greedy"`` (see module docstring).
    """
    if order not in ("reverse", "greedy"):
        raise ValueError(f"unknown order {order!r}")
    simulator = simulator or FaultSimulator(netlist, records)
    matrix = simulator.detection_matrix(tests)  # (n_faults, n_tests)
    detected_before = int(matrix.any(axis=1).sum())

    if not tests:
        return StaticCompactionResult(
            tests=[], kept_indices=[], dropped=0, detected=0
        )

    if order == "reverse":
        scan = list(range(len(tests) - 1, -1, -1))
    else:  # greedy set cover
        remaining = matrix.copy()
        scan = []
        while True:
            gains = remaining.sum(axis=0)
            best = int(gains.argmax())
            if gains[best] == 0:
                break
            scan.append(best)
            remaining[remaining[:, best], :] = False
        # Append the rest so _drop_redundant sees every candidate.
        scan.extend(i for i in range(len(tests)) if i not in set(scan))

    kept = _drop_redundant(matrix, scan)
    compacted = [tests[i] for i in kept]

    # Invariant: coverage is exactly preserved.
    detected_after = int(matrix[:, kept].any(axis=1).sum()) if kept else 0
    if detected_after != detected_before:  # pragma: no cover - hard invariant
        raise AssertionError(
            f"static compaction lost coverage: {detected_after} != {detected_before}"
        )
    return StaticCompactionResult(
        tests=compacted,
        kept_indices=kept,
        dropped=len(tests) - len(kept),
        detected=detected_before,
    )
