"""Result containers for test generation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from ..circuit.netlist import Netlist
from ..faults.universe import FaultRecord
from ..robustness import AbortedFault
from ..sim.vectors import TwoPatternTest
from .justify import JustifyStats

__all__ = ["GeneratedTest", "GenerationResult"]


@dataclass
class GeneratedTest:
    """One generated test and the faults it targets/detects.

    ``targeted`` is the paper's ``P(t)`` -- the primary target fault plus
    every secondary target fault whose requirements were folded into the
    test by re-justification.  ``detected`` is the (superset) result of
    fault-simulating the finished test against all remaining faults:
    accidental detections land here too.
    """

    test: TwoPatternTest
    primary: FaultRecord
    targeted: list[FaultRecord]
    detected: list[FaultRecord] = field(default_factory=list)

    @property
    def num_targeted(self) -> int:
        return len(self.targeted)

    @property
    def num_detected(self) -> int:
        return len(self.detected)


@dataclass
class GenerationResult:
    """Outcome of a complete test generation run.

    ``pools`` holds the target-fault pools the run started from
    (``[P]`` for the basic procedure, ``[P0, P1]`` for enrichment);
    ``detected_by_pool`` the per-pool detected counts.

    ``aborted_faults`` lists the faults a resource budget denied a
    verdict (empty on unbudgeted runs; ``aborted_primaries`` is the
    legacy count of primaries whose justification failed, budgeted or
    not).  ``budget_exhausted`` records the run-level stop reason
    (``deadline`` / ``abort_limit``) when the budget ended the run early.
    """

    netlist: Netlist
    heuristic: str
    tests: list[GeneratedTest]
    pools: list[list[FaultRecord]]
    detected_by_pool: list[int]
    aborted_primaries: int
    runtime_seconds: float
    justify_stats: JustifyStats
    secondary_attempts: int = 0
    secondary_successes: int = 0
    aborted_faults: list[AbortedFault] = field(default_factory=list)
    budget_exhausted: str | None = None

    @property
    def num_aborted(self) -> int:
        """Number of faults a budget trip left without a verdict."""
        return len(self.aborted_faults)

    @property
    def num_tests(self) -> int:
        """Size of the generated test set."""
        return len(self.tests)

    @property
    def total_faults(self) -> int:
        """Total number of target faults across all pools."""
        return sum(len(pool) for pool in self.pools)

    @property
    def total_detected(self) -> int:
        """Total number of faults detected across all pools."""
        return sum(self.detected_by_pool)

    @property
    def test_vectors(self) -> list[TwoPatternTest]:
        """Just the two-pattern tests, in generation order."""
        return [t.test for t in self.tests]

    def detected_in_pool(self, pool_index: int) -> int:
        """Detected count for one pool."""
        return self.detected_by_pool[pool_index]

    def summary(self) -> str:
        """One-line human-readable summary."""
        pool_bits = ", ".join(
            f"P{i}: {det}/{len(pool)}"
            for i, (pool, det) in enumerate(zip(self.pools, self.detected_by_pool))
        )
        return (
            f"{self.netlist.name} [{self.heuristic}]: {self.num_tests} tests, "
            f"{pool_bits} detected, {self.runtime_seconds:.2f}s"
        )
