"""Branch-and-bound justification (the paper's suggested extension).

Section 4 of the paper notes that the run-to-run variations of the
simulation-based justifier "can be eliminated by using a branch-and-bound
procedure instead of a simulation-based procedure for justification".  This
module provides exactly that: a complete, deterministic search over the
endpoint assignments of the support inputs, with the same necessary-value
propagation as the simulation-based engine but full backtracking.

Being complete, it either finds a test or *proves* none exists -- subject
to the ``node_limit`` safety valve (the problem is NP-hard).  It is slower
than the randomized engine and is used mainly for:

* deterministic unit tests,
* deciding detectability of individual faults exactly,
* measuring how many faults the randomized engine misses (an ablation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..algebra.ternary import X, ZERO
from ..algebra.triple import Triple
from ..circuit.netlist import Netlist
from ..robustness import NODE_LIMIT, Budget, BudgetExceeded
from ..sim.batch import BatchSimulator, ConeSimulator
from ..sim.vectors import TwoPatternTest
from .justify import Justifier, JustifyStats, _SearchState
from .requirements import RequirementSet

__all__ = ["BranchAndBoundJustifier", "SearchExhausted"]


class SearchExhausted(BudgetExceeded):
    """Raised when the node limit is hit before the search completes.

    A :class:`~repro.robustness.BudgetExceeded` with reason
    ``node_limit`` and phase ``bnb``; kept as a distinct class for
    backwards compatibility with existing ``except SearchExhausted``
    call sites.
    """

    def __init__(self, message: str = "", progress: dict | None = None) -> None:
        super().__init__(NODE_LIMIT, "bnb", message, progress=progress)


@dataclass
class _NodeCounter:
    nodes: int


class BranchAndBoundJustifier:
    """Complete justification with backtracking."""

    def __init__(self, netlist: Netlist, simulator: BatchSimulator | None = None) -> None:
        self.netlist = netlist
        self._engine = Justifier(netlist, simulator)

    def justify(
        self,
        requirements: RequirementSet,
        node_limit: int = 20000,
        budget: Budget | None = None,
    ) -> TwoPatternTest | None:
        """Find a test satisfying ``requirements`` or prove none exists.

        Returns ``None`` only when the full search space was exhausted.
        Raises :class:`SearchExhausted` when the node limit was spent
        first.  A non-null ``budget`` overrides ``node_limit`` with its
        own ``node_limit`` cap (when set) and additionally checks the
        wall-clock deadline at every search node, raising
        :class:`~repro.robustness.BudgetExceeded` with reason
        ``deadline`` on expiry.
        """
        if budget is not None and budget.is_null:
            budget = None
        if budget is not None and budget.node_limit is not None:
            node_limit = budget.node_limit
        state, cone = self._engine._make_state(requirements)
        counter = _NodeCounter(nodes=node_limit)
        found = self._search(state, requirements, counter, cone, budget)
        if found is None:
            return None
        return self._complete(found)

    def is_satisfiable(
        self,
        requirements: RequirementSet,
        node_limit: int = 20000,
        budget: Budget | None = None,
    ) -> bool:
        """True when some two-pattern test satisfies ``requirements``."""
        return self.justify(requirements, node_limit=node_limit, budget=budget) is not None

    # ------------------------------------------------------------------

    def _search(
        self,
        state: _SearchState,
        requirements: RequirementSet,
        counter: _NodeCounter,
        cone: ConeSimulator | None,
        budget: Budget | None = None,
    ) -> _SearchState | None:
        if counter.nodes <= 0:
            raise SearchExhausted("branch-and-bound node limit exhausted")
        counter.nodes -= 1
        if budget is not None:
            budget.check_deadline("bnb", nodes_left=counter.nodes)

        status = self._engine._fixpoint(state, requirements, JustifyStats(), cone)
        if status == "conflict":
            return None
        if status == "covered":
            return state

        # Decision: prefer completing a half-specified input to a stable
        # value (same preference as the simulation-based engine), else the
        # first unresolved position; try the stable-friendly value first.
        half = state.half_specified_input()
        if half is not None:
            pi, position, preferred = half
        else:
            pi, position = state.unresolved()[0]
            preferred = ZERO
        for value in (preferred, 1 - preferred):
            child = state.clone()
            child.assign(pi, position, value)
            found = self._search(child, requirements, counter, cone, budget)
            if found is not None:
                return found
        return None

    def _complete(self, state: _SearchState) -> TwoPatternTest:
        """Deterministically complete a covered state to a full test."""
        assignment: dict[int, Triple] = {}
        for pi in self.netlist.input_indices:
            if pi in state.row_of:
                v1, v3 = state.endpoints(pi)
                v1 = v1 if v1 != X else ZERO
                v3 = v3 if v3 != X else v1
            else:
                v1 = v3 = ZERO
            assignment[pi] = Triple.transition(v1, v3)
        return TwoPatternTest(assignment)
