"""Test generation with dynamic compaction (Section 2.2) and multiple
target-fault pools (Section 3.2).

One engine, :class:`TestGenerator`, implements both procedures of the
paper:

* **basic**: a single pool ``[P]``; primaries and secondaries come from it;
* **enrichment**: pools ``[P0, P1]``; primaries come only from ``P0``;
  secondary target faults are drawn from ``P0`` first and from ``P1`` only
  after every ``P0`` candidate has been considered, so detecting ``P1``
  faults never adds tests.

Per-test flow (compaction on):

1. pick the primary target fault (per the heuristic) and justify a test for
   ``A(p0)``; a failed primary is marked *tried* and stays eligible for
   accidental detection;
2. repeatedly pick a secondary candidate, merge its ``A(p_i)`` into the
   requirement union, and re-run the whole justification (the paper's
   variant of [8]: a fresh test is generated after every accepted fault, so
   earlier value choices never block later faults).  Rejected candidates
   are removed from ``P(t)`` and not retried for this test;
3. fault-simulate the finished test against every remaining fault and drop
   all detections.

Cheap exact filters prune the expensive re-justification: a candidate whose
requirements conflict with the union can never be added, and a candidate
already covered by the current test needs no targeting (the fault
simulation of step 3 will drop it).

Both filters -- and the ``n_delta`` computation of the ``values``
heuristic -- are *screened in batch*: each pool's compiled requirements are
stacked once (:class:`~repro.sim.cover.StackedRequirements`), so the
already-covered filter is one ``covered_single`` call per justified test,
the conflict/``n_delta`` screen is one ``delta_against`` call per
requirement union, and the closing fault simulation of step 3 is one call
per test.  The per-candidate decisions (selection order, tie-breaking,
``considered`` bookkeeping) still run in pool order over the precomputed
arrays, so the batched path makes *identical* choices to the scalar loops;
``REPRO_SCALAR_COVER=1`` (snapshotted per process, :mod:`repro.envflags`)
restores those loops.

Compaction heuristics (Section 2.2): ``uncomp`` (no secondaries),
``arbit`` (fault-list order), ``length`` (longest path first), ``values``
(minimum ``n_delta`` -- fewest new value components first).
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..algebra.ternary import X
from ..circuit.netlist import Netlist
from ..envflags import scalar_cover_requested
from ..faults.universe import FaultRecord
from ..robustness import (
    ABORT_LIMIT,
    ATTEMPT_LIMIT,
    DEADLINE,
    AbortedFault,
    Budget,
    BudgetExceeded,
)
from ..sim.batch import BatchSimulator
from ..sim.cover import CompiledRequirements, StackedRequirements
from .heuristics import order_pool
from .justify import Justifier, JustifyResult, JustifyStats
from .requirements import RequirementSet
from .result import GeneratedTest, GenerationResult

__all__ = [
    "Heuristic",
    "AtpgConfig",
    "TestGenerator",
    "generate_basic",
    "PrimaryOutcome",
    "derive_primary_rng",
]

Heuristic = Literal["uncomp", "arbit", "length", "values"]

_HEURISTICS = ("uncomp", "arbit", "length", "values")

#: Per-primary verdicts of the shard-stable seam (see
#: :meth:`TestGenerator.generate_primary_outcomes`): ``found`` (a test was
#: justified), ``failed`` (every attempt failed, no budget involved),
#: ``aborted`` (a budget cap denied the verdict) and ``skipped`` (a
#: run-level ``abort_limit`` stop meant the primary was never tried).
PRIMARY_STATUSES = ("found", "failed", "aborted", "skipped")


def derive_primary_rng(seed: int, tag: str, key) -> random.Random:
    """A deterministic per-fault RNG, stable across processes.

    The stream is derived from ``(seed, tag, fault.key())`` through
    blake2b -- *not* Python's ``hash()``, which is salted per process --
    so a fault's random decisions are identical no matter which worker
    computes them or how the fault universe was sharded.  ``tag``
    namespaces the stream per sweep (e.g. ``basic:values`` vs
    ``enrich:values``), keeping different runs over the same fault
    decorrelated.
    """
    token = repr((seed, tag, key)).encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big"))


@dataclass
class PrimaryOutcome:
    """The shard-stable verdict for one primary target fault.

    ``index`` is the fault's position in the heuristic-ordered primary
    pool (the canonical merge order); ``uid`` its position in the full
    detection universe (``P0 + P1`` in construction order), which is how
    ``detected`` refers to faults compactly and unambiguously across
    worker processes.  ``fault`` carries the human-readable identity only
    for aborted outcomes (it feeds the aborted-fault report); ``reason``/
    ``phase`` mirror :class:`~repro.robustness.AbortedFault`.
    """

    index: int
    uid: int
    status: str
    detected: list[int] = field(default_factory=list)
    reason: str | None = None
    phase: str | None = None
    fault: str = ""

    def to_payload(self) -> list:
        """Compact JSON row (see :meth:`from_payload`)."""
        return [
            self.index,
            self.uid,
            self.status,
            self.detected,
            self.reason,
            self.phase,
            self.fault,
        ]

    @classmethod
    def from_payload(cls, row: Sequence) -> "PrimaryOutcome":
        index, uid, status, detected, reason, phase, fault = row
        if status not in PRIMARY_STATUSES:
            raise ValueError(f"unknown primary status {status!r}")
        return cls(
            index=int(index),
            uid=int(uid),
            status=status,
            detected=[int(u) for u in detected],
            reason=reason,
            phase=phase,
            fault=fault or "",
        )


@dataclass(frozen=True)
class AtpgConfig:
    """Knobs of a generation run.

    Attributes
    ----------
    heuristic:
        Compaction heuristic (see module docstring).
    seed:
        Seed for all random decisions (fully deterministic runs).
    max_secondary_attempts:
        Budget of secondary *justification attempts* per test **per target
        pool**; ``None`` reproduces the paper exactly (every remaining
        fault is considered once per test).  The budget is per pool so the
        enrichment phase (secondaries from P1) always runs even when the
        P0 candidates exhaust their own budget.  The exact
        conflict/coverage filters do not count against the budget.
    retry_primaries:
        Number of justification attempts per primary target fault
        (the paper uses 1; more attempts trade run time for coverage).
    engine:
        ``"simulation"`` (the paper's randomized justifier) or ``"bnb"``
        (complete branch-and-bound).  The paper notes that the run-to-run
        variations of its results "can be eliminated by using a
        branch-and-bound procedure"; ``engine="bnb"`` is exactly that
        variant -- fully deterministic, independent of ``seed``, but
        slower.
    bnb_node_limit:
        Search budget per justification for the BnB engine; an exhausted
        search counts as a failed attempt.
    """

    heuristic: Heuristic = "values"
    seed: int = 1
    max_secondary_attempts: int | None = None
    retry_primaries: int = 1
    engine: str = "simulation"
    bnb_node_limit: int = 50_000

    def __post_init__(self) -> None:
        if self.heuristic not in _HEURISTICS:
            raise ValueError(
                f"unknown heuristic {self.heuristic!r}; pick one of {_HEURISTICS}"
            )
        if self.retry_primaries < 1:
            raise ValueError("retry_primaries must be >= 1")
        if self.engine not in ("simulation", "bnb"):
            raise ValueError(f"unknown engine {self.engine!r}")


class _PoolState:
    """Mutable view of one target pool during generation."""

    def __init__(self, records: Sequence[FaultRecord], order: str) -> None:
        # Stable ordering chosen once: list order for uncomp/arbit,
        # longest-path-first for length/values.
        self.records = order_pool(records, order)
        self.alive = [True] * len(self.records)
        self.tried_primary = [False] * len(self.records)

    def live_indices(self) -> list[int]:
        return [i for i, alive in enumerate(self.alive) if alive]

    def next_primary(self) -> int | None:
        """First alive record not yet tried as a primary (pool order)."""
        for i, record in enumerate(self.records):
            if self.alive[i] and not self.tried_primary[i]:
                return i
        return None

    @property
    def detected_count(self) -> int:
        return sum(1 for alive in self.alive if not alive)


class TestGenerator:
    """Dynamic-compaction path-delay-fault test generator.

    ``vectorized`` selects the candidate-screening kernel: ``True`` stacks
    each pool's requirements once and screens coverage/conflicts/``n_delta``
    with array ops; ``False`` keeps the per-candidate loops; ``None``
    (default) vectorizes unless ``REPRO_SCALAR_COVER`` is set.  Both paths
    make identical selections (see module docstring).
    """

    def __init__(
        self,
        netlist: Netlist,
        config: AtpgConfig | None = None,
        simulator: BatchSimulator | None = None,
        justifier: Justifier | None = None,
        vectorized: bool | None = None,
        budget: Budget | None = None,
    ) -> None:
        self.netlist = netlist
        self.config = config or AtpgConfig()
        self.budget = budget
        self.simulator = simulator or BatchSimulator(netlist)
        self.justifier = justifier or Justifier(netlist, self.simulator)
        # Screening counters land in the same sink as the justifier's.
        self._stats = self.justifier._stats
        if vectorized is None:
            vectorized = not scalar_cover_requested()
        self.vectorized = vectorized
        self._bnb = None
        if self.config.engine == "bnb":
            from .bnb import BranchAndBoundJustifier

            self._bnb = BranchAndBoundJustifier(netlist, self.simulator)

    def _count(self, name: str, value: int = 1) -> None:
        if self._stats is not None:
            self._stats.count(name, value)

    def _justify(
        self,
        requirements: RequirementSet,
        rng,
        budget: Budget | None = None,
    ) -> JustifyResult | None:
        """Dispatch to the configured justification engine.

        With a budget, a tripped cap propagates as
        :class:`~repro.robustness.BudgetExceeded` so the caller can record
        the fault as aborted; without one, an exhausted BnB search stays a
        failed attempt (legacy ``bnb_node_limit`` semantics).
        """
        if self._bnb is None:
            return self.justifier.justify(requirements, rng, budget)
        from .bnb import SearchExhausted

        try:
            test = self._bnb.justify(
                requirements, node_limit=self.config.bnb_node_limit, budget=budget
            )
        except SearchExhausted:
            if budget is not None and budget.node_limit is not None:
                raise  # the budget's cap, not the legacy safety valve
            return None
        if test is None:
            return None
        sim = self.simulator.run_triples([test.assignment])
        return JustifyResult(test=test, sim_codes=sim[:, :, 0])

    # ------------------------------------------------------------------

    def generate(
        self,
        pools: Sequence[Sequence[FaultRecord]],
        budget: Budget | None = None,
    ) -> GenerationResult:
        """Run test generation over target pools (primaries from pool 0).

        A non-null ``budget`` (argument, or the generator's own) makes the
        run degrade gracefully instead of running unbounded: a per-fault
        trip (``node_limit``, ``attempt_limit``) records that primary as
        aborted and moves on; a run-level trip (``deadline``,
        ``abort_limit``) stops targeting new primaries, marks the
        untried remainder of P0 aborted (deadline only) and returns the
        tests generated so far.  The result's ``aborted_faults`` lists
        every aborted fault with its machine-readable reason.
        """
        config = self.config
        budget = budget if budget is not None else self.budget
        if budget is not None:
            budget = None if budget.is_null else budget.start()
        rng = random.Random(config.seed)
        started = time.perf_counter()
        totals = JustifyStats()
        states = [_PoolState(pool, config.heuristic) for pool in pools]
        compiled: list[list[CompiledRequirements]] = [
            [CompiledRequirements(r.sens.requirements) for r in state.records]
            for state in states
        ]
        stacked: list[StackedRequirements | None] = [
            StackedRequirements(pool_compiled) if self.vectorized else None
            for pool_compiled in compiled
        ]
        tests: list[GeneratedTest] = []
        aborted = 0
        aborted_faults: list[AbortedFault] = []
        budget_exhausted: str | None = None
        attempts_total = 0
        successes_total = 0

        def merge_stats(stats: JustifyStats) -> None:
            totals.simulations += stats.simulations
            totals.rounds += stats.rounds
            totals.decisions += stats.decisions
            totals.necessary_assignments += stats.necessary_assignments

        def record_abort(record: FaultRecord, reason: str, phase: str) -> None:
            aborted_faults.append(
                AbortedFault(
                    fault=record.fault.format(self.netlist),
                    pool=0,
                    reason=reason,
                    phase=phase,
                )
            )
            self._count("budget.aborted")
            self._count(f"budget.{reason}_trips")

        while True:
            if budget is not None:
                if budget.deadline_expired():
                    budget_exhausted = DEADLINE
                    break
                if budget.abort_limit_reached(len(aborted_faults)):
                    budget_exhausted = ABORT_LIMIT
                    break
            primary_pool = states[0]
            primary_index = primary_pool.next_primary()
            if primary_index is None:
                break
            primary_pool.tried_primary[primary_index] = True
            primary = primary_pool.records[primary_index]
            requirements = RequirementSet(primary.sens.requirements)
            attempts_allowed = config.retry_primaries
            if budget is not None:
                attempts_allowed = budget.attempts_allowed(attempts_allowed)
            result: JustifyResult | None = None
            try:
                for _attempt in range(attempts_allowed):
                    result = self._justify(requirements, rng, budget)
                    if result is not None:
                        merge_stats(result.stats)
                        break
                    # A failed attempt leaves no state behind; retry re-rolls
                    # the random decisions.
            except BudgetExceeded as exc:
                # The budget tripped mid-justification: this primary gets
                # no verdict.  Deadline expiry stops the run (checked at
                # the loop top); per-fault caps just abort this fault.
                aborted += 1
                record_abort(primary, exc.reason, exc.phase)
                continue
            if result is None:
                aborted += 1
                if attempts_allowed < config.retry_primaries:
                    # The attempt_limit truncated the retries this fault
                    # was entitled to, so its failure is a budget abort,
                    # not an exhausted search.
                    record_abort(primary, ATTEMPT_LIMIT, "justify")
                continue

            targeted = [primary]
            if config.heuristic != "uncomp":
                result, requirements, attempts, successes = self._compact(
                    result,
                    requirements,
                    targeted,
                    states,
                    compiled,
                    stacked,
                    skip=(0, primary_index),
                    rng=rng,
                    merge_stats=merge_stats,
                    budget=budget,
                )
                attempts_total += attempts
                successes_total += successes

            detected = self._drop_detected(
                result.sim_codes, states, compiled, stacked
            )
            # The test was justified against U A(p_j) for P(t), so every
            # targeted fault must be among the detections.
            targeted_keys = {record.fault.key() for record in targeted}
            detected_keys = {record.fault.key() for record in detected}
            missing = targeted_keys - detected_keys
            if missing:  # pragma: no cover - core invariant
                raise AssertionError(
                    f"test fails to detect targeted fault(s): {sorted(missing)[:3]}"
                )
            tests.append(
                GeneratedTest(
                    test=result.test,
                    primary=primary,
                    targeted=targeted,
                    detected=detected,
                )
            )

        if budget_exhausted == DEADLINE:
            # Every alive P0 primary the run never got to try is aborted:
            # the deadline denied it a verdict (untried but *detected*
            # faults were already removed from the alive set).
            primary_pool = states[0]
            for i, record in enumerate(primary_pool.records):
                if primary_pool.alive[i] and not primary_pool.tried_primary[i]:
                    record_abort(record, DEADLINE, "generate")
        if budget_exhausted is not None:
            self._count("budget.run_stops")

        return GenerationResult(
            netlist=self.netlist,
            heuristic=config.heuristic,
            tests=tests,
            pools=[list(state.records) for state in states],
            detected_by_pool=[state.detected_count for state in states],
            aborted_primaries=aborted,
            runtime_seconds=time.perf_counter() - started,
            justify_stats=totals,
            secondary_attempts=attempts_total,
            secondary_successes=successes_total,
            aborted_faults=aborted_faults,
            budget_exhausted=budget_exhausted,
        )

    # ------------------------------------------------------------------
    # Shard-stable per-primary generation (intra-circuit fault sharding)
    # ------------------------------------------------------------------

    def generate_primary_outcomes(
        self,
        pools: Sequence[Sequence[FaultRecord]],
        detect_records: Sequence[FaultRecord],
        indices: Sequence[int],
        tag: str,
        budget: Budget | None = None,
    ) -> list[PrimaryOutcome]:
        """Compute one :class:`PrimaryOutcome` per ordered-pool index.

        This is the seam intra-circuit fault sharding runs on
        (:mod:`repro.parallel.sharding`).  Each primary's test is a *pure
        function* of ``(netlist, config, fault, universe)``:

        * its RNG comes from :func:`derive_primary_rng`, not a stream
          shared with other primaries;
        * compaction sees the **full static** universe -- every candidate
          of every pool is considered alive regardless of what other
          primaries' tests detect -- with only the primary itself skipped;
        * detection is evaluated against ``detect_records`` (the full
          ``P0 + P1`` universe) and reported as indices into it.

        Outcomes are therefore independent of each other, of the shard
        geometry and of which worker computes them; the deterministic
        merge replays canonical pool order and applies the accidental-
        detection skip rule there.  Note the deliberate contrast with
        :meth:`generate`, whose single RNG stream and shrinking alive set
        couple every primary to all earlier ones: the two procedures
        produce different (equally valid) test sets, which is why
        sharded runs are compared against a single-shard run of *this*
        procedure, not against :meth:`generate`.

        ``budget`` degrades the slice gracefully: per-fault caps abort
        individual primaries, deadline expiry marks the untried remainder
        of the slice aborted, and a shard-local ``abort_limit`` stop
        leaves the remainder ``skipped`` (no verdict, no abort row) --
        mirroring :meth:`generate`'s run-level stops.
        """
        config = self.config
        budget = budget if budget is not None else self.budget
        if budget is not None:
            budget = None if budget.is_null else budget.start()
        states = [_PoolState(pool, config.heuristic) for pool in pools]
        compiled: list[list[CompiledRequirements]] = [
            [CompiledRequirements(r.sens.requirements) for r in state.records]
            for state in states
        ]
        stacked: list[StackedRequirements | None] = [
            StackedRequirements(pool_compiled) if self.vectorized else None
            for pool_compiled in compiled
        ]
        det_compiled = [
            CompiledRequirements(r.sens.requirements) for r in detect_records
        ]
        det_stacked = (
            StackedRequirements(det_compiled) if self.vectorized else None
        )
        uid_of = {
            record.fault.key(): uid for uid, record in enumerate(detect_records)
        }
        primary_pool = states[0]
        outcomes: list[PrimaryOutcome] = []
        aborted_count = 0
        stopped: str | None = None

        def record_abort(
            outcome: PrimaryOutcome,
            record: FaultRecord,
            reason: str,
            phase: str,
        ) -> None:
            nonlocal aborted_count
            outcome.status = "aborted"
            outcome.reason = reason
            outcome.phase = phase
            outcome.fault = record.fault.format(self.netlist)
            aborted_count += 1
            self._count("budget.aborted")
            self._count(f"budget.{reason}_trips")

        for index in indices:
            primary = primary_pool.records[index]
            outcome = PrimaryOutcome(
                index=index, uid=uid_of[primary.fault.key()], status="skipped"
            )
            outcomes.append(outcome)
            if stopped is None and budget is not None:
                if budget.deadline_expired():
                    stopped = DEADLINE
                elif budget.abort_limit_reached(aborted_count):
                    stopped = ABORT_LIMIT
            if stopped == DEADLINE:
                # Same policy as generate(): the deadline denied these
                # primaries a verdict, so they are reported aborted.
                record_abort(outcome, primary, DEADLINE, "generate")
                continue
            if stopped == ABORT_LIMIT:
                continue  # never tried: stays "skipped"

            rng = derive_primary_rng(config.seed, tag, primary.fault.key())
            requirements = RequirementSet(primary.sens.requirements)
            attempts_allowed = config.retry_primaries
            if budget is not None:
                attempts_allowed = budget.attempts_allowed(attempts_allowed)
            result: JustifyResult | None = None
            try:
                for _attempt in range(attempts_allowed):
                    result = self._justify(requirements, rng, budget)
                    if result is not None:
                        break
            except BudgetExceeded as exc:
                record_abort(outcome, primary, exc.reason, exc.phase)
                continue
            if result is None:
                if attempts_allowed < config.retry_primaries:
                    record_abort(outcome, primary, ATTEMPT_LIMIT, "justify")
                else:
                    outcome.status = "failed"
                continue

            targeted = [primary]
            if config.heuristic != "uncomp":
                # _compact never mutates pool state (alive flags change
                # only in _drop_detected), so the static all-alive states
                # are safely reused across primaries.
                result, requirements, _attempts, _successes = self._compact(
                    result,
                    requirements,
                    targeted,
                    states,
                    compiled,
                    stacked,
                    skip=(0, index),
                    rng=rng,
                    merge_stats=lambda _stats: None,
                    budget=budget,
                )
            detected = self._detect_static(result.sim_codes, det_compiled, det_stacked)
            detected_set = set(detected)
            missing = [
                record.fault.key()
                for record in targeted
                if uid_of[record.fault.key()] not in detected_set
            ]
            if missing:  # pragma: no cover - core invariant
                raise AssertionError(
                    f"test fails to detect targeted fault(s): {missing[:3]}"
                )
            outcome.status = "found"
            outcome.detected = detected

        if stopped is not None:
            self._count("budget.run_stops")
        return outcomes

    def _detect_static(
        self,
        sim_codes: np.ndarray,
        det_compiled: list[CompiledRequirements],
        det_stacked: StackedRequirements | None,
    ) -> list[int]:
        """Universe indices one test detects (no pool state mutated)."""
        if det_stacked is not None:
            covered = det_stacked.covered_single(sim_codes)
            self._count("compact.screen_calls")
            self._count("compact.screen_columns", det_stacked.n_faults)
            return [int(uid) for uid in np.flatnonzero(covered)]
        sim_column = sim_codes[:, :, None]
        return [
            uid
            for uid, requirements in enumerate(det_compiled)
            if requirements.covered_by(sim_column)[0]
        ]

    # ------------------------------------------------------------------

    def _dense_union(self, requirements: RequirementSet) -> np.ndarray:
        """The requirement union as an ``(n_nodes, 3)`` code array (x = free)."""
        dense = np.full((len(self.netlist), 3), X, dtype=np.int8)
        for node, triple in requirements.values.items():
            dense[node, 0] = triple.v1
            dense[node, 1] = triple.v2
            dense[node, 2] = triple.v3
        return dense

    def _compact(
        self,
        result: JustifyResult,
        requirements: RequirementSet,
        targeted: list[FaultRecord],
        states: list[_PoolState],
        compiled: list[list[CompiledRequirements]],
        stacked: list[StackedRequirements | None],
        skip: tuple[int, int],
        rng: random.Random,
        merge_stats,
        budget: Budget | None = None,
    ) -> tuple[JustifyResult, RequirementSet, int, int]:
        """Fold secondary target faults into the test, pool by pool.

        Returns the final justification result, the final requirement
        union, and the (attempted, accepted) counters.

        Budget trips during a *secondary* justification never lose the
        test in hand: a per-fault cap makes the candidate a failed
        attempt (it stays eligible elsewhere), while deadline expiry
        stops compaction and salvages the current test as-is.
        """
        config = self.config
        attempts = 0
        successes = 0
        for pool_index, state in enumerate(states):
            # The attempt budget is per pool: the paper's enrichment relies
            # on every P1 fault being considered after P0 is exhausted, so
            # a shared budget would silently skip the enrichment phase.
            pool_attempts = 0
            attempt_cap = config.max_secondary_attempts
            if budget is not None:
                if attempt_cap is None:
                    attempt_cap = budget.attempt_limit
                else:
                    attempt_cap = budget.attempts_allowed(attempt_cap)
            candidates = [
                i
                for i in state.live_indices()
                if (pool_index, i) != skip
            ]
            considered = [False] * len(state.records)
            stack = stacked[pool_index]
            # Batched screens, recomputed only when their input changes
            # (identity comparison on objects we keep alive): coverage
            # depends on the justified test, conflicts/n_delta on the
            # requirement union.
            covered_for = None
            covered_vec: np.ndarray | None = None
            screen_for = None
            delta_vec: np.ndarray | None = None
            conflict_vec: np.ndarray | None = None
            while candidates:
                if attempt_cap is not None and pool_attempts >= attempt_cap:
                    break
                if budget is not None and budget.deadline_expired():
                    return result, requirements, attempts, successes
                # Drop candidates the current test already covers: the
                # closing fault simulation will detect them for free.
                if stack is not None:
                    if covered_for is not result:
                        covered_vec = stack.covered_single(result.sim_codes)
                        covered_for = result
                        self._count("compact.screen_calls")
                        self._count("compact.screen_columns", stack.n_faults)
                    sim_column = None
                else:
                    sim_column = result.sim_codes[:, :, None]
                keep: list[int] = []
                for i in candidates:
                    if considered[i]:
                        continue
                    if covered_vec is not None:
                        is_covered = bool(covered_vec[i])
                    else:
                        is_covered = bool(
                            compiled[pool_index][i].covered_by(sim_column)[0]
                        )
                    if is_covered:
                        considered[i] = True
                        continue
                    keep.append(i)
                candidates = keep
                if not candidates:
                    break

                if stack is not None and screen_for is not requirements:
                    delta_vec, conflict_vec = stack.delta_against(
                        self._dense_union(requirements)
                    )
                    screen_for = requirements
                    self._count("compact.screen_calls")
                    self._count("compact.screen_columns", stack.n_faults)

                pick: int | None = None
                if config.heuristic == "values":
                    best_delta: int | None = None
                    for i in candidates:
                        if conflict_vec is not None:
                            delta = None if conflict_vec[i] else int(delta_vec[i])
                        else:
                            delta = requirements.delta_count(
                                state.records[i].sens.requirements
                            )
                        if delta is None:
                            considered[i] = True
                            continue
                        if best_delta is None or delta < best_delta:
                            best_delta = delta
                            pick = i
                else:  # arbit / length: fixed pool order
                    for i in candidates:
                        if conflict_vec is not None:
                            conflicted = bool(conflict_vec[i])
                        else:
                            conflicted = requirements.conflicts_with(
                                state.records[i].sens.requirements
                            )
                        if not conflicted:
                            pick = i
                            break
                        considered[i] = True
                if pick is None:
                    candidates = [i for i in candidates if not considered[i]]
                    continue

                considered[pick] = True
                candidates = [i for i in candidates if i != pick]
                candidate = state.records[pick]
                trial = requirements.try_add(candidate.sens.requirements)
                assert trial is not None  # conflict-filtered above
                attempts += 1
                pool_attempts += 1
                try:
                    attempt = self._justify(trial, rng, budget)
                except BudgetExceeded as exc:
                    self._count(f"budget.{exc.reason}_trips")
                    if exc.reason == DEADLINE:
                        return result, requirements, attempts, successes
                    continue
                if attempt is None:
                    continue
                merge_stats(attempt.stats)
                result = attempt
                requirements = trial
                targeted.append(candidate)
                successes += 1
        return result, requirements, attempts, successes

    def _drop_detected(
        self,
        sim_codes: np.ndarray,
        states: list[_PoolState],
        compiled: list[list[CompiledRequirements]],
        stacked: list[StackedRequirements | None],
    ) -> list[FaultRecord]:
        """Fault-simulate one finished test; drop and return detections."""
        detected: list[FaultRecord] = []
        sim_column = sim_codes[:, :, None]
        for state, pool_compiled, stack in zip(states, compiled, stacked):
            if stack is not None:
                covered = stack.covered_single(sim_codes)
                self._count("compact.screen_calls")
                self._count("compact.screen_columns", stack.n_faults)
                for i in state.live_indices():
                    if covered[i]:
                        state.alive[i] = False
                        detected.append(state.records[i])
                continue
            for i in state.live_indices():
                if pool_compiled[i].covered_by(sim_column)[0]:
                    state.alive[i] = False
                    detected.append(state.records[i])
        return detected


def generate_basic(
    netlist: Netlist,
    records: Sequence[FaultRecord],
    config: AtpgConfig | None = None,
    simulator: BatchSimulator | None = None,
    justifier: Justifier | None = None,
    budget: Budget | None = None,
) -> GenerationResult:
    """Basic test generation for a single target set (Section 2)."""
    generator = TestGenerator(netlist, config, simulator, justifier, budget=budget)
    return generator.generate([records])
