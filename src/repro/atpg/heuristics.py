"""Fault-ordering helpers for the compaction heuristics (Section 2.2).

The generator consults these when laying out a target pool:

* ``uncomp`` / ``arbit`` -- the arbitrary order: faults exactly as they
  appear in the fault list (which follows enumeration order);
* ``length`` / ``values`` -- longest path first.  Long paths impose the
  most values, are rarely detected accidentally, and if left for last each
  would likely need a private test; front-loading them keeps the test
  count down (the rationale given in the paper, crediting [4]).

The *secondary* selection rule of ``values`` (minimum ``n_delta``) is
dynamic and lives in the generator; the static orders live here so they
are testable in isolation.
"""

from __future__ import annotations

from typing import Sequence

from ..faults.universe import FaultRecord

__all__ = ["order_pool", "longest_first"]


def longest_first(records: Sequence[FaultRecord]) -> list[FaultRecord]:
    """Sort faults by descending path length (stable, fully deterministic)."""
    return sorted(records, key=lambda record: (-record.length, record.fault.key()))


def order_pool(records: Sequence[FaultRecord], heuristic: str) -> list[FaultRecord]:
    """Initial pool order for a compaction heuristic."""
    if heuristic in ("length", "values"):
        return longest_first(records)
    if heuristic in ("uncomp", "arbit"):
        return list(records)
    raise ValueError(f"unknown heuristic {heuristic!r}")
