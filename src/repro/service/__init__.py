"""ATPG-as-a-service: durable job queue, supervisor daemon, recovery.

The supervision seam above the engine/parallel layers: jobs are
submitted to a file-based queue (:mod:`.queue`), a daemon leases and
runs them under the full robustness stack -- shard checkpoints, per-job
heartbeats with a stuck-worker watchdog, backoff retries -- and a
write-ahead state file (:mod:`.wal`) lets a restarted daemon prove the
previous one died and re-adopt its work (:mod:`.supervisor`).  No
network anywhere: the queue directory is the API, so the same machinery
runs in CI, and every lifecycle transition lands in the run journal.
"""

from .queue import JOB_STATES, JobQueue, JobSpec, new_job_id
from .supervisor import QueueBusyError, ServiceShutdown, Supervisor
from .wal import ServiceWAL, pid_alive

__all__ = [
    "JOB_STATES",
    "JobQueue",
    "JobSpec",
    "new_job_id",
    "QueueBusyError",
    "ServiceShutdown",
    "Supervisor",
    "ServiceWAL",
    "pid_alive",
]
