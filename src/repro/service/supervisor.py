"""The ``repro serve`` daemon: lease, supervise, recover.

One :class:`Supervisor` owns one queue directory and drives the job
state machine::

    queued -> leased -> running -> { done, degraded, failed }

* **lease** -- oldest pending job first, claimed by an atomic file move
  (:meth:`~repro.service.queue.JobQueue.lease`);
* **supervise** -- the job runs through :func:`repro.experiments.run_all`
  with the full supervision stack threaded in: shard-granular
  checkpoints under ``work/<job>/checkpoints`` (always in resume mode,
  so a re-adopted job continues instead of restarting), per-shard
  heartbeats under ``work/<job>/heartbeats`` with the runner's
  stuck-worker watchdog, and :class:`~repro.robustness.RetryPolicy`
  backoff inside the runner;
* **retry** -- a job whose runner still fails after *its* retries
  (:class:`~repro.parallel.ParallelRunError`) is retried whole by the
  supervisor with the same backoff policy, resuming from whatever the
  failed pass checkpointed.  When the job-level budget is exhausted the
  job *degrades*: a machine-readable failure record is written to
  ``out/<job>/failure.json``, the job lands in ``done/`` with status
  ``degraded``, and the daemon keeps serving (exit 0) -- failures are
  data, never crashes;
* **recover** -- on start, the WAL (:mod:`repro.service.wal`) proves
  whether another daemon is alive.  A dead owner's leased jobs are
  re-adopted into pending (journaled as ``readopted``) and their next
  run resumes from checkpoints;
* **shut down** -- SIGINT/SIGTERM raise a :class:`ServiceShutdown` at
  the next safe point; the current lease is released back to pending
  (its finished shards are already checkpointed), a terminal
  ``shutdown`` entry is journaled, and the WAL is marked ``stopped``.

Every lifecycle transition is appended to the queue's service journal
(``<queue>/journal.jsonl``) via :func:`repro.journal.service_entry`;
``done`` events carry ``service.wall_seconds`` so ``repro-pdf journal
report``/``gate`` trend service runs like any other measured run.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from ..artifacts import ArtifactStore
from ..engine import Engine
from ..journal import append_entry, service_entry
from ..parallel import ParallelRunError
from ..parallel.heartbeat import DEFAULT_HEARTBEAT_INTERVAL, DEFAULT_STALE_AFTER
from ..robustness import Budget, RetryPolicy
from .queue import JobQueue, JobSpec
from .wal import ServiceWAL

__all__ = ["Supervisor", "ServiceShutdown", "QueueBusyError"]


class ServiceShutdown(Exception):
    """Raised by the signal handlers to unwind to the serve loop."""

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(f"shutdown requested (signal {signum})")


class QueueBusyError(RuntimeError):
    """Another live daemon already owns the queue (WAL pid is alive)."""


class Supervisor:
    """Runs the serve loop over one :class:`~repro.service.queue.JobQueue`.

    ``drain=True`` exits once the queue is empty (the CI mode); the
    default keeps polling every ``poll_interval`` seconds.
    ``job_retries`` is the *supervisor-level* retry budget -- whole-job
    re-runs after the parallel runner exhausted its own per-shard
    retries -- and ``retry_policy`` paces both levels unless a job's
    params carry their own ``retry`` spec.
    """

    def __init__(
        self,
        queue: JobQueue | str | Path,
        *,
        drain: bool = False,
        poll_interval: float = 0.5,
        job_retries: int = 1,
        retry_policy: RetryPolicy | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        stale_after: float = DEFAULT_STALE_AFTER,
        artifact_cache: str | None = None,
    ) -> None:
        self.queue = queue if isinstance(queue, JobQueue) else JobQueue(queue)
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        if job_retries < 0:
            raise ValueError(f"job_retries must be >= 0, got {job_retries}")
        self.drain = drain
        self.poll_interval = float(poll_interval)
        self.job_retries = int(job_retries)
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_retries=job_retries)
        )
        self.heartbeat_interval = float(heartbeat_interval)
        self.stale_after = float(stale_after)
        self.artifact_cache = artifact_cache
        self.wal = ServiceWAL(self.queue.wal_path)
        self._shutdown: ServiceShutdown | None = None

    # -- bookkeeping ---------------------------------------------------

    def journal(self, event: str, job: str, detail: dict | None = None,
                metrics: dict | None = None) -> None:
        """Append one lifecycle entry; journaling must never kill a job."""
        try:
            append_entry(
                self.queue.journal_path,
                service_entry(event, job, detail=detail, metrics=metrics),
            )
        except OSError:
            pass

    def log(self, job_id: str, message: str) -> None:
        """Per-job log line (``repro logs``) echoed to stderr."""
        stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
        line = f"{stamp} [{job_id}] {message}"
        print(f"serve: {line}", file=sys.stderr)
        try:
            path = self.queue.log_path(job_id)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            pass

    # -- signals -------------------------------------------------------

    def _install_signals(self):
        def handler(signum, _frame):
            raise ServiceShutdown(signum)

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):  # non-main thread
                pass
        return previous

    @staticmethod
    def _restore_signals(previous) -> None:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):
                pass

    # -- startup / recovery --------------------------------------------

    def adopt(self) -> list[JobSpec]:
        """Singleton check + crash recovery; returns re-adopted jobs."""
        owner = self.wal.owner()
        if owner is not None and owner != os.getpid():
            raise QueueBusyError(
                f"queue {self.queue.root} is owned by live daemon pid {owner}"
            )
        adopted = self.queue.adopt_orphans()
        for job in adopted:
            self.journal(
                "readopted", job.id, detail={"attempts": job.attempts}
            )
            self.log(job.id, "re-adopted from a dead daemon's lease")
        return adopted

    # -- the serve loop ------------------------------------------------

    def serve(self) -> int:
        """Run until shutdown (or until drained with ``drain=True``)."""
        self.queue.ensure_layout()
        self.adopt()
        self.wal.write("starting")
        previous = self._install_signals()
        exit_code = 0
        try:
            while True:
                job = self.queue.lease()
                if job is None:
                    if self.drain:
                        break
                    self.wal.write("idle")
                    time.sleep(self.poll_interval)
                    continue
                self.run_job(job)
        except ServiceShutdown as shutdown:
            self._shutdown = shutdown
            self.journal("shutdown", "daemon", detail={"signal": shutdown.signum})
        except QueueBusyError:
            raise
        finally:
            self._restore_signals(previous)
            self.wal.write("stopped")
        return exit_code

    # -- running one job -----------------------------------------------

    def run_job(self, job: JobSpec) -> str:
        """Drive one leased job to a terminal state; returns the status."""
        self.journal("leased", job.id, detail={"attempts": job.attempts})
        self.wal.write("running", job=job.id)
        self.log(job.id, f"leased ({job.kind}, attempt {job.attempts})")
        policy = (
            RetryPolicy.from_spec(job.params["retry"])
            if isinstance(job.params.get("retry"), dict)
            else self.retry_policy
        )
        retries_allowed = int(job.params.get("service_retries", self.job_retries))
        started = time.perf_counter()
        failures: list[dict] = []
        try:
            while True:
                try:
                    result = self._run_once(job)
                except ParallelRunError as exc:
                    failures = [
                        {
                            "circuit": f.circuit,
                            "phase": f.phase,
                            "error": f.error,
                            "message": f.message,
                            "attempt": f.attempt,
                        }
                        for f in exc.failures
                    ]
                    job.attempts += 1
                    if job.attempts > retries_allowed:
                        return self._degrade(job, failures, started)
                    delay = policy.delay(job.attempts, job.id)
                    self.journal(
                        "retried",
                        job.id,
                        detail={
                            "attempt": job.attempts,
                            "delay_seconds": round(delay, 3),
                            "failures": len(failures),
                        },
                    )
                    self.log(
                        job.id,
                        f"runner failed ({len(failures)} job failure(s)); "
                        f"retry {job.attempts}/{retries_allowed} "
                        f"in {delay:.2f}s (resuming from checkpoints)",
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                wall = time.perf_counter() - started
                self.queue.finish(job, "done", result=result)
                self.journal(
                    "done",
                    job.id,
                    detail=result,
                    metrics={"service.wall_seconds": round(wall, 6)},
                )
                self.log(job.id, f"done in {wall:.2f}s -> {result.get('out')}")
                return "done"
        except ServiceShutdown:
            # Finished shards are already checkpointed; hand the job
            # back so the next daemon resumes instead of restarting.
            self.queue.release(job)
            self.journal("released", job.id, detail={"attempts": job.attempts})
            self.log(job.id, "released back to pending (shutdown)")
            raise
        except Exception as exc:  # supervisor bug / unrunnable spec
            record = {
                "error": type(exc).__name__,
                "message": str(exc),
            }
            self.queue.finish(job, "failed", result=record)
            self.journal("failed", job.id, detail=record)
            self.log(job.id, f"failed: {record['error']}: {record['message']}")
            return "failed"

    def _degrade(
        self, job: JobSpec, failures: list[dict], started: float
    ) -> str:
        """Terminal retry exhaustion: failure record, exit-0 semantics."""
        out_dir = self.queue.out_dir(job.id)
        out_dir.mkdir(parents=True, exist_ok=True)
        record = {
            "job": job.id,
            "status": "degraded",
            "attempts": job.attempts,
            "failures": failures,
            "checkpoints": str(self.queue.work_dir(job.id) / "checkpoints"),
        }
        failure_path = out_dir / "failure.json"
        failure_path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        wall = time.perf_counter() - started
        self.queue.finish(
            job, "degraded", result={"failure": str(failure_path)}
        )
        self.journal(
            "degraded",
            job.id,
            detail={"attempts": job.attempts, "failures": len(failures)},
            metrics={"service.wall_seconds": round(wall, 6)},
        )
        self.log(
            job.id,
            f"degraded after {job.attempts} attempt(s): "
            f"{len(failures)} unrecovered failure(s); record at {failure_path}",
        )
        return "degraded"

    def _run_once(self, job: JobSpec) -> dict:
        """One supervised pass of a job; returns the success result record."""
        if job.kind != "tables":
            raise ValueError(f"unknown job kind: {job.kind!r}")
        return self._run_tables(job)

    def _build_engine(self, params: dict) -> Engine:
        cache_dir = params.get("artifact_cache") or self.artifact_cache
        return Engine(
            artifacts=ArtifactStore(cache_dir) if cache_dir else None
        )

    def _run_tables(self, job: JobSpec) -> dict:
        from ..experiments import (
            TABLE3_CIRCUITS,
            TABLE6_CIRCUITS,
            run_all,
        )
        from ..experiments.scale import ExperimentScale, get_scale

        params = job.params
        scale = get_scale(params.get("scale", "default"))
        if params.get("max_faults") or params.get("p0_min_faults"):
            scale = ExperimentScale(
                name=scale.name,
                max_faults=params.get("max_faults") or scale.max_faults,
                p0_min_faults=params.get("p0_min_faults") or scale.p0_min_faults,
                max_secondary_attempts=scale.max_secondary_attempts,
                seed=scale.seed,
            )
        quick = bool(params.get("quick"))
        circuits = TABLE3_CIRCUITS[:1] if quick else TABLE3_CIRCUITS
        table6 = TABLE6_CIRCUITS[:1] if quick else TABLE6_CIRCUITS
        policy = (
            RetryPolicy.from_spec(params["retry"])
            if isinstance(params.get("retry"), dict)
            else self.retry_policy
        )
        budget = (
            Budget.from_spec(params["budget"])
            if isinstance(params.get("budget"), dict)
            else None
        )
        work = self.queue.work_dir(job.id)
        engine = self._build_engine(params)
        results = run_all(
            scale,
            circuits=circuits,
            table6_circuits=table6,
            engine=engine,
            jobs=params.get("jobs"),
            checkpoint_dir=str(work / "checkpoints"),
            resume=True,  # adopted/retried jobs continue, never restart
            timeout=params.get("timeout"),
            budget=budget,
            shards=params.get("shards"),
            shard_min_faults=int(params.get("shard_min_faults", 1)),
            retry_policy=policy,
            heartbeat_dir=str(work / "heartbeats"),
            heartbeat_interval=self.heartbeat_interval,
            stale_after=self.stale_after,
        )
        out_dir = self.queue.out_dir(job.id)
        out_dir.mkdir(parents=True, exist_ok=True)
        results_path = out_dir / "results.json"
        results_path.write_text(results.to_json(), encoding="utf-8")
        (out_dir / "tables.txt").write_text(
            results.format_all() + "\n", encoding="utf-8"
        )
        return {"out": str(out_dir), "results": str(results_path)}
