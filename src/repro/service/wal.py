"""Write-ahead state of the ``repro serve`` daemon.

One small JSON file (``<queue>/wal.json``) answers the two questions a
starting daemon must ask before touching the queue:

* **is another daemon alive?** -- the WAL records the owner's pid; a
  recorded pid that still exists means the queue is owned and the
  newcomer must refuse to start (two daemons would double-run jobs);
* **did the previous daemon die?** -- a recorded pid that no longer
  exists is a crash signature: the newcomer re-adopts the dead daemon's
  leased jobs (:meth:`repro.service.queue.JobQueue.adopt_orphans`) and
  continues them from their checkpoints.

Every state change is written with the atomic temp-file + ``os.replace``
discipline checkpoints use, so the WAL is always either the old complete
state or the new complete state -- never a torn write.  A daemon updates
it at each phase transition (``starting``/``idle``/``running``/
``stopped``) and stamps the current job id while one is leased, which
makes the file double as a liveness/status probe for ``repro status``.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["ServiceWAL", "pid_alive"]


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a recorded daemon pid."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError:
        return False
    return True


class ServiceWAL:
    """Atomic read/write access to one daemon state file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self) -> dict | None:
        """The recorded state, or ``None`` when absent/unreadable.

        Corruption is treated as absence: the WAL is advisory daemon
        state, and the job files themselves (plus their checkpoints) are
        the durable truth -- a torn WAL must never brick the queue.
        """
        try:
            state = json.loads(self.path.read_text("utf-8"))
        except (OSError, ValueError):
            return None
        return state if isinstance(state, dict) else None

    def write(self, phase: str, job: str | None = None, pid: int | None = None) -> dict:
        """Persist the daemon's current phase (atomic replace)."""
        state = {
            "v": 1,
            "pid": os.getpid() if pid is None else pid,
            "phase": phase,
            "job": job,
            "updated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.parent / f".{self.path.name}.{os.getpid()}.tmp"
        tmp.write_text(
            json.dumps(state, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.path)
        return state

    def owner(self) -> int | None:
        """Pid of a *live* daemon recorded as owning this queue.

        ``None`` when there is no WAL, the recorded daemon already wrote
        its terminal ``stopped`` phase, or its pid is gone (crashed --
        the re-adoption case).
        """
        state = self.load()
        if not state or state.get("phase") == "stopped":
            return None
        pid = state.get("pid")
        if isinstance(pid, int) and pid_alive(pid):
            return pid
        return None
