"""Durable file-based job queue for the ``repro serve`` daemon.

No network, no database: a queue is a directory, a job is one JSON file,
and a job's lifecycle state *is* the subdirectory its file lives in --

* ``pending/``  -- submitted, waiting for the daemon (``queued``);
* ``leased/``   -- adopted by a daemon, running or about to
  (``leased``/``running``);
* ``done/``     -- finished: ``status`` inside the file says ``done``
  (full success) or ``degraded`` (retry budget exhausted, partial
  results salvaged per the robustness taxonomy);
* ``failed/``   -- the supervisor itself could not drive the job to a
  terminal result (unexpected exception);
* ``canceled/`` -- withdrawn by ``repro cancel`` before it was leased.

State transitions are single ``os.replace`` moves of the job file
between sibling directories -- atomic on POSIX, so a crash mid-move
leaves the job in exactly one state and two racing daemons cannot lease
the same job (the loser's ``os.replace`` raises ``FileNotFoundError``
and it simply picks the next file).  Terminal transitions may *rewrite*
the file (attaching the result record) but do so with the usual
temp-file + ``os.replace`` discipline into the target directory.

Job ids sort by submission time (``job-<UTC stamp>-<pid>-<counter>``),
so "oldest pending first" is a filename sort -- no index file to corrupt.

The queue root also hosts the daemon's working state, kept alongside so
one directory is the whole service:

* ``wal.json``       -- the daemon's write-ahead state
  (:mod:`repro.service.wal`);
* ``work/<job>/``    -- per-job checkpoints and heartbeat files;
* ``out/<job>/``     -- per-job results (``results.json``,
  ``tables.txt``, ``failure.json``);
* ``logs/<job>.log`` -- per-job human-readable log (``repro logs``);
* ``journal.jsonl``  -- service lifecycle journal
  (:func:`repro.journal.service_entry`).
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["JobQueue", "JobSpec", "JOB_STATES", "new_job_id"]

#: Lifecycle directories under the queue root, in pipeline order.
JOB_STATES = ("pending", "leased", "done", "failed", "canceled")

_counter = itertools.count()


def new_job_id() -> str:
    """Sortable, collision-safe job id.

    UTC timestamp first so lexicographic order is submission order;
    pid + process-local counter + a nanosecond tail so concurrent
    submitters (and rapid same-process submissions) never collide.
    """
    stamp = datetime.now(timezone.utc).strftime("%Y%m%d%H%M%S%f")
    return f"job-{stamp}-{os.getpid()}-{next(_counter)}-{time.time_ns() % 1000000:06d}"


@dataclass
class JobSpec:
    """One submitted job: what to run and how to supervise it.

    ``params`` is the free-form run configuration (scale, jobs, shards,
    timeout, budget spec, retry spec ...) interpreted by the supervisor's
    job runner for ``kind``; the queue itself never looks inside it.
    ``result`` is attached by the supervisor at a terminal transition
    (output paths on success, a machine-readable failure record on
    degradation).
    """

    id: str
    kind: str = "tables"
    params: dict = field(default_factory=dict)
    submitted: str = ""
    status: str = "queued"
    attempts: int = 0
    result: dict | None = None

    def to_payload(self) -> dict:
        payload = {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "submitted": self.submitted,
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.result is not None:
            payload["result"] = self.result
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        return cls(
            id=payload["id"],
            kind=payload.get("kind", "tables"),
            params=dict(payload.get("params", {})),
            submitted=payload.get("submitted", ""),
            status=payload.get("status", "queued"),
            attempts=int(payload.get("attempts", 0)),
            result=payload.get("result"),
        )


class JobQueue:
    """The durable queue rooted at one directory (see module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- layout --------------------------------------------------------

    def state_dir(self, state: str) -> Path:
        if state not in JOB_STATES:
            raise ValueError(f"state must be one of {JOB_STATES}, got {state!r}")
        return self.root / state

    def job_path(self, state: str, job_id: str) -> Path:
        return self.state_dir(state) / f"{job_id}.json"

    def work_dir(self, job_id: str) -> Path:
        return self.root / "work" / job_id

    def out_dir(self, job_id: str) -> Path:
        return self.root / "out" / job_id

    def log_path(self, job_id: str) -> Path:
        return self.root / "logs" / f"{job_id}.log"

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def wal_path(self) -> Path:
        return self.root / "wal.json"

    def ensure_layout(self) -> None:
        for state in JOB_STATES:
            self.state_dir(state).mkdir(parents=True, exist_ok=True)
        (self.root / "work").mkdir(exist_ok=True)
        (self.root / "out").mkdir(exist_ok=True)
        (self.root / "logs").mkdir(exist_ok=True)

    # -- file plumbing -------------------------------------------------

    def _write_job(self, job: JobSpec, state: str) -> Path:
        """Atomically publish ``job``'s file into ``state``'s directory."""
        target = self.job_path(state, job.id)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.parent / f".{target.name}.{os.getpid()}.tmp"
        tmp.write_text(
            json.dumps(job.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, target)
        return target

    def _read_job(self, path: Path) -> JobSpec | None:
        try:
            return JobSpec.from_payload(json.loads(path.read_text("utf-8")))
        except (OSError, ValueError, KeyError):
            return None

    def _jobs_in(self, state: str) -> list[Path]:
        directory = self.state_dir(state)
        if not directory.is_dir():
            return []
        return sorted(p for p in directory.glob("job-*.json"))

    # -- lifecycle -----------------------------------------------------

    def submit(
        self, params: dict | None = None, kind: str = "tables", job_id: str | None = None
    ) -> JobSpec:
        """Enqueue a new job (``queued``); returns the stored spec."""
        self.ensure_layout()
        job = JobSpec(
            id=job_id or new_job_id(),
            kind=kind,
            params=dict(params or {}),
            submitted=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )
        self._write_job(job, "pending")
        return job

    def lease(self, job_id: str | None = None) -> JobSpec | None:
        """Claim the oldest pending job (or ``job_id``); ``None`` if none.

        The claim is the atomic ``pending -> leased`` move; losing a race
        (``FileNotFoundError``) just tries the next candidate.
        """
        self.ensure_layout()
        candidates = (
            [self.job_path("pending", job_id)]
            if job_id is not None
            else self._jobs_in("pending")
        )
        for path in candidates:
            target = self.state_dir("leased") / path.name
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue
            job = self._read_job(target)
            if job is None:  # unreadable spec: park it as failed
                os.replace(target, self.state_dir("failed") / path.name)
                continue
            job.status = "leased"
            self._write_job(job, "leased")
            return job
        return None

    def release(self, job: JobSpec) -> None:
        """Return a leased job to pending (graceful shutdown, re-adoption).

        Attempt counts survive the round-trip: a job re-adopted after a
        daemon crash resumes its retry budget, it does not reset it.
        """
        job.status = "queued"
        self._write_job(job, "pending")
        self.job_path("leased", job.id).unlink(missing_ok=True)

    def adopt_orphans(self) -> list[JobSpec]:
        """Move every leased job back to pending (crash recovery).

        Called by a starting daemon after proving no other daemon is
        alive: files still under ``leased/`` belonged to a dead daemon,
        and their shard-granular checkpoints under ``work/<job>/`` make
        the re-run incremental rather than from scratch.
        """
        adopted = []
        for path in self._jobs_in("leased"):
            job = self._read_job(path)
            if job is None:
                os.replace(path, self.state_dir("failed") / path.name)
                continue
            self.release(job)
            adopted.append(job)
        return adopted

    def finish(self, job: JobSpec, status: str, result: dict | None = None) -> None:
        """Record a terminal state: ``done``/``degraded`` -> ``done/``,
        ``failed`` -> ``failed/``, ``canceled`` -> ``canceled/``."""
        directory = {
            "done": "done",
            "degraded": "done",
            "failed": "failed",
            "canceled": "canceled",
        }.get(status)
        if directory is None:
            raise ValueError(f"not a terminal status: {status!r}")
        job.status = status
        if result is not None:
            job.result = result
        self._write_job(job, directory)
        self.job_path("leased", job.id).unlink(missing_ok=True)

    def cancel(self, job_id: str) -> JobSpec | None:
        """Withdraw a pending job; ``None`` when it is not pending
        (already leased, finished, or unknown -- the caller reports)."""
        path = self.job_path("pending", job_id)
        target = self.state_dir("canceled") / path.name
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return None
        job = self._read_job(target)
        if job is not None:
            job.status = "canceled"
            self._write_job(job, "canceled")
        return job

    # -- inspection ----------------------------------------------------

    def find(self, job_id: str) -> JobSpec | None:
        """Locate a job in any state directory."""
        for state in JOB_STATES:
            job = self._read_job(self.job_path(state, job_id))
            if job is not None:
                return job
        return None

    def jobs(self) -> list[JobSpec]:
        """Every known job, oldest first, across all states."""
        found: dict[str, JobSpec] = {}
        for state in JOB_STATES:
            for path in self._jobs_in(state):
                job = self._read_job(path)
                if job is not None and job.id not in found:
                    found[job.id] = job
        return [found[key] for key in sorted(found)]
