"""Persistent run journal: an operable time series of every measured run.

The repo's perf evidence used to be disconnected snapshots -- one
``BENCH_PR*.json`` baseline per PR, wall-clock history as prose in
EXPERIMENTS.md.  The journal replaces that with a single append-only
JSONL trajectory (``benchmarks/journal.jsonl``): every ``tables`` sweep
and every ``tools/bench_compare.py`` run appends a structured entry
(git sha, timestamp, machine fingerprint, config, metric series,
per-phase runtimes, abort-taxonomy counters, cache hit rates, per-shard
job records), and two consumers read it back:

* ``repro-pdf journal report`` -- per-sha trend tables
  (:mod:`repro.journal.report`);
* ``repro-pdf journal gate`` -- regression gating against the
  median-of-last-N trajectory instead of one hand-committed baseline
  (:mod:`repro.journal.gate`).

Layering: :mod:`.schema` defines and validates entries and builds them
from experiment results / bench payloads, :mod:`.writer` appends,
:mod:`.reader` reads tolerantly (corrupt lines are reported, never
fatal), :mod:`.report` and :mod:`.gate` are the pure presenter/judge
layers on the decoded entries.  Everything is stdlib-only and
import-light so ``tools/bench_compare.py`` and CI snippets can use it
without pulling in the simulation stack.
"""

from .gate import (
    GateFinding,
    GateReport,
    gate_candidate,
    gate_trajectory,
)
from .reader import JournalProblem, JournalRead, read_journal
from .report import format_value, render_report, report_rows
from .schema import (
    KINDS,
    SCHEMA_VERSION,
    SERVICE_EVENTS,
    bench_entry,
    git_sha,
    machine_fingerprint,
    service_entry,
    tables_entry,
    utc_now,
    validate_entry,
)
from .writer import JournalSchemaError, append_entry, encode_entry

__all__ = [
    "SCHEMA_VERSION",
    "KINDS",
    "SERVICE_EVENTS",
    "validate_entry",
    "machine_fingerprint",
    "git_sha",
    "utc_now",
    "tables_entry",
    "bench_entry",
    "service_entry",
    "append_entry",
    "encode_entry",
    "JournalSchemaError",
    "read_journal",
    "JournalRead",
    "JournalProblem",
    "format_value",
    "render_report",
    "report_rows",
    "gate_candidate",
    "gate_trajectory",
    "GateReport",
    "GateFinding",
]
