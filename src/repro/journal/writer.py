"""Appending entries to a journal file.

The journal is append-only by construction: a writer never reads,
rewrites or truncates the file, it only adds complete lines.  Each line
is canonical JSON (sorted keys, no whitespace) followed by a single
newline, written with one ``write`` call on a file opened in append
mode -- on POSIX appends of one buffered line this keeps concurrent
writers (two CI jobs, a tables run racing a bench run) from interleaving
mid-entry, and a crash can at worst leave one truncated *final* line,
which the tolerant reader skips.
"""

from __future__ import annotations

import json
from pathlib import Path

from .schema import validate_entry

__all__ = ["encode_entry", "append_entry", "JournalSchemaError"]


class JournalSchemaError(ValueError):
    """An entry failed schema validation before being written."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = list(problems)
        super().__init__("; ".join(problems))


def encode_entry(entry: dict) -> str:
    """One canonical JSONL line (no trailing newline).

    Validation happens here, on the write side: a journal is a committed
    long-lived artifact, so malformed entries must be rejected at the
    producer instead of surfacing as skip-noise in every later read.
    """
    problems = validate_entry(entry)
    if problems:
        raise JournalSchemaError(problems)
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def append_entry(path: str | Path, entry: dict) -> dict:
    """Validate ``entry`` and append it to the journal at ``path``.

    Parent directories are created as needed.  Returns the entry for
    chaining (``append_entry(path, tables_entry(...))``).
    """
    line = encode_entry(entry)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return entry
