"""Rendering a journal as per-sha trend tables.

One table per entry kind: rows are metric series, columns are the last
``last`` recorded runs (newest rightmost), labelled by short sha with
the recording date underneath.  A ``-`` cell means the run did not
produce that metric -- retired benchmarks and newly added circuits
coexist in one table instead of fragmenting the history.  When the
shown window mixes machine partitions (see
:func:`repro.journal.gate.machine_label`) a third header row tags each
column with its partition, making the gate's per-machine series visible.

This is the longitudinal view the paper's own evaluation implies:
Tables 5-7 of Pomeranz & Reddy (2002) are only meaningful as trends
across circuits, and the repo's performance story is only meaningful as
trends across commits.
"""

from __future__ import annotations

from typing import Sequence

from .gate import machine_label

__all__ = ["format_value", "report_rows", "render_report"]


def format_value(value: float) -> str:
    """Compact numeric cell: 4 significant digits."""
    return f"{value:.4g}"


def _column_label(entry: dict) -> str:
    sha = entry.get("sha", "unknown")
    return sha[:7] if sha != "unknown" else "unknown"


def report_rows(
    entries: Sequence[dict], last: int = 8
) -> tuple[list[str], list[list[str]]]:
    """Headers and row data for the trend table of one kind's entries.

    Returns ``(headers, rows)`` where ``headers`` is
    ``["metric", <short-sha>, ...]`` (oldest first) and each row is the
    metric name followed by one formatted cell per shown entry.
    """
    shown = list(entries)[-last:] if last > 0 else list(entries)
    headers = ["metric"] + [_column_label(entry) for entry in shown]
    names: dict[str, None] = {}
    for entry in shown:
        for name in entry.get("metrics", {}):
            names.setdefault(name, None)
    rows = []
    for name in sorted(names):
        cells = [name]
        for entry in shown:
            value = entry.get("metrics", {}).get(name)
            cells.append("-" if value is None else format_value(value))
        rows.append(cells)
    return headers, rows


def _render_table(
    headers: list[str],
    rows: list[list[str]],
    dates: list[str],
    machine_row: list[str] | None = None,
) -> str:
    table = [headers, dates, *([machine_row] if machine_row else []), *rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]

    def line(cells: Sequence[str]) -> str:
        out = [f"{cells[0]:<{widths[0]}}"]
        out += [f"{cell:>{widths[col + 1]}}" for col, cell in enumerate(cells[1:])]
        return "  " + "  ".join(out).rstrip()

    return "\n".join(line(row) for row in table)


def render_report(
    entries: Sequence[dict],
    *,
    kinds: Sequence[str] | None = None,
    last: int = 8,
) -> str:
    """The full journal report: one trend table per entry kind."""
    order: dict[str, None] = {}
    for entry in entries:
        order.setdefault(entry["kind"], None)
    selected = [k for k in order if kinds is None or k in kinds]
    if not selected:
        return "run journal: no entries"
    sections = []
    for kind in selected:
        of_kind = [entry for entry in entries if entry["kind"] == kind]
        shown = of_kind[-last:] if last > 0 else of_kind
        headers, rows = report_rows(of_kind, last=last)
        dates = [""] + [entry.get("ts", "")[:10] for entry in shown]
        labels = [machine_label(entry.get("machine")) for entry in shown]
        # The machine row only earns its line when the shown window mixes
        # partitions -- a single-host journal reads exactly as before.
        machine_row = [""] + labels if len(set(labels)) > 1 else None
        title = (
            f"run journal -- kind {kind}: {len(of_kind)} entr"
            f"{'y' if len(of_kind) == 1 else 'ies'}"
        )
        if len(of_kind) > len(shown):
            title += f" (showing last {len(shown)})"
        sections.append(
            title + "\n" + _render_table(headers, rows, dates, machine_row)
        )
    return "\n\n".join(sections)
