"""Trajectory regression gating.

``tools/bench_compare.py`` gates each run against *one* hand-committed
baseline file; this module gates against the journal's whole history
instead.  For every metric series the candidate value is compared to
the **median of the last ``window`` recorded values** of the same kind:
a candidate more than ``tolerance`` slower than that median is a
regression.  The median makes the reference robust to one lucky or
unlucky historical run, and the moving window lets the reference follow
deliberate performance changes instead of pinning the repo to its
fastest-ever day.

Two gating modes:

* *latest* (default) -- gate the newest entry of each kind against the
  entries recorded before it.  This is what CI runs right after
  appending a fresh measurement.
* *all* (``gate_trajectory(..., gate_all=True)``) -- replay the gate
  over every entry in order, each judged only against its own past.
  This validates a committed journal end to end: a regression anyone
  slipped into the history is found no matter how many entries were
  appended since.

Metrics with fewer than ``min_history`` prior values are ``skipped``
(reported, never failed): a brand-new benchmark cannot regress against
a history it does not have.

History is additionally **partitioned by machine fingerprint** before
the median: wall clocks from heterogeneous machines are not one series,
so a fast CI runner's history must not spuriously fail a slower
laptop (nor vice versa).  A candidate is only ever compared against
prior entries whose ``machine`` matches its own
(:func:`machine_key`); when the current machine has too few same-machine
entries the metric falls back to ``skipped``-under-``min_history``,
exactly like a brand-new benchmark.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from statistics import median
from typing import Mapping, Sequence

from .schema import machine_fingerprint

__all__ = [
    "GateFinding",
    "GateReport",
    "gate_candidate",
    "gate_trajectory",
    "machine_key",
    "machine_label",
]

#: Defaults shared by the CLI and ``bench_compare --journal-gate``.
DEFAULT_WINDOW = 5
DEFAULT_TOLERANCE = 0.25
DEFAULT_MIN_HISTORY = 1

#: The fingerprint fields that identify a measuring host (what
#: ``schema.machine_fingerprint`` records).  Extra keys an entry's
#: ``machine`` may carry do not split the partition.
_MACHINE_FIELDS = ("python", "platform", "cpus")


def machine_key(machine: Mapping | None) -> tuple:
    """Partition key of one entry's ``machine`` fingerprint.

    Entries compare equal when python version, platform and cpu count
    all match; a missing/malformed fingerprint is its own partition so
    legacy entries never dilute a real machine's series.
    """
    if not isinstance(machine, Mapping):
        return ("<none>",)
    return tuple(str(machine.get(name, "")) for name in _MACHINE_FIELDS)


def machine_label(machine: Mapping | None) -> str:
    """Short stable tag for a machine partition (for reports/findings)."""
    digest = hashlib.sha1(
        json.dumps(machine_key(machine)).encode()
    ).hexdigest()[:6]
    return f"m:{digest}"


@dataclass(frozen=True)
class GateFinding:
    """One metric's verdict against its trajectory."""

    kind: str
    metric: str
    value: float
    verdict: str  # "ok" | "regression" | "skipped"
    baseline: float | None = None  # median of the window, when gated
    ratio: float | None = None
    history: int = 0  # prior same-machine values available
    sha: str = ""  # candidate entry's sha ("" for external candidates)
    machine: str = ""  # partition tag (see machine_label)

    def describe(self) -> str:
        where = f" @ {self.sha[:7]}" if self.sha and self.sha != "unknown" else ""
        partition = f" [{self.machine}]" if self.machine else ""
        if self.verdict == "skipped":
            return (
                f"{self.kind}/{self.metric}{where}: skipped "
                f"({self.history} prior value(s){partition}; "
                f"gate needs more history)"
            )
        assert self.baseline is not None and self.ratio is not None
        return (
            f"{self.kind}/{self.metric}{where}: {self.value:.4g} vs "
            f"median-of-{self.history}{partition} {self.baseline:.4g} "
            f"({self.ratio:.2f}x) {self.verdict.upper()}"
        )


@dataclass
class GateReport:
    """Every finding of one gate invocation."""

    findings: list[GateFinding] = field(default_factory=list)

    @property
    def regressions(self) -> list[GateFinding]:
        return [f for f in self.findings if f.verdict == "regression"]

    @property
    def gated(self) -> int:
        return sum(1 for f in self.findings if f.verdict != "skipped")

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = [finding.describe() for finding in self.findings]
        skipped = len(self.findings) - self.gated
        lines.append(
            f"trajectory gate: {self.gated} metric(s) gated, "
            f"{skipped} skipped, {len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)


def _gate_metrics(
    kind: str,
    metrics: Mapping[str, float],
    history_entries: Sequence[dict],
    *,
    window: int,
    tolerance: float,
    min_history: int,
    sha: str = "",
    machine: str = "",
) -> list[GateFinding]:
    findings = []
    for name in sorted(metrics):
        value = float(metrics[name])
        series = [
            float(entry["metrics"][name])
            for entry in history_entries
            if name in entry.get("metrics", {})
        ][-window:]
        if len(series) < min_history:
            findings.append(
                GateFinding(
                    kind=kind,
                    metric=name,
                    value=value,
                    verdict="skipped",
                    history=len(series),
                    sha=sha,
                    machine=machine,
                )
            )
            continue
        baseline = median(series)
        if baseline > 0:
            ratio = value / baseline
        else:
            # A zero-cost historical median cannot be "slowed down"
            # meaningfully unless the candidate now costs something.
            ratio = float("inf") if value > 0 else 1.0
        verdict = "regression" if ratio > 1.0 + tolerance else "ok"
        findings.append(
            GateFinding(
                kind=kind,
                metric=name,
                value=value,
                verdict=verdict,
                baseline=baseline,
                ratio=ratio,
                history=len(series),
                sha=sha,
                machine=machine,
            )
        )
    return findings


def gate_candidate(
    entries: Sequence[dict],
    kind: str,
    metrics: Mapping[str, float],
    *,
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    min_history: int = DEFAULT_MIN_HISTORY,
    machine: Mapping | None = None,
) -> GateReport:
    """Gate not-yet-recorded ``metrics`` against the journal's history.

    This is the pre-append hook ``bench_compare --journal-gate`` uses:
    the fresh measurement is judged before it joins the trajectory (it
    is appended afterwards either way -- a regression is still a fact
    worth recording; the exit code is what blocks the merge).

    ``machine`` is the candidate's fingerprint (defaults to the current
    host's); only history recorded on the same machine partition is
    consulted.
    """
    if machine is None:
        machine = machine_fingerprint()
    key = machine_key(machine)
    history = [
        entry
        for entry in entries
        if entry.get("kind") == kind and machine_key(entry.get("machine")) == key
    ]
    return GateReport(
        _gate_metrics(
            kind,
            metrics,
            history,
            window=window,
            tolerance=tolerance,
            min_history=min_history,
            machine=machine_label(machine),
        )
    )


def gate_trajectory(
    entries: Sequence[dict],
    *,
    kinds: Sequence[str] | None = None,
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    min_history: int = DEFAULT_MIN_HISTORY,
    gate_all: bool = False,
) -> GateReport:
    """Gate recorded entries against their own past (see module docs)."""
    report = GateReport()
    order: dict[str, None] = {}
    for entry in entries:
        order.setdefault(entry["kind"], None)
    for kind in order:
        if kinds is not None and kind not in kinds:
            continue
        of_kind = [entry for entry in entries if entry["kind"] == kind]
        positions = range(1, len(of_kind)) if gate_all else [len(of_kind) - 1]
        for position in positions:
            if position < 0:
                continue
            candidate = of_kind[position]
            key = machine_key(candidate.get("machine"))
            same_machine = [
                entry
                for entry in of_kind[:position]
                if machine_key(entry.get("machine")) == key
            ]
            report.findings.extend(
                _gate_metrics(
                    kind,
                    candidate.get("metrics", {}),
                    same_machine,
                    window=window,
                    tolerance=tolerance,
                    min_history=min_history,
                    sha=candidate.get("sha", ""),
                    machine=machine_label(candidate.get("machine")),
                )
            )
    return report
