"""Reading a journal back, tolerantly.

A journal accumulates across many runs, machines and code versions, so
the reader must survive what reality does to append-only files: a
truncated final line after a crash, a hand-edit gone wrong, an entry
written by a newer schema.  :func:`read_journal` therefore never raises
on content -- every undecodable or schema-invalid line becomes a
:class:`JournalProblem` (line number + reason) and reading continues;
``repro-pdf journal validate`` turns those problems into a non-zero
exit for CI, where the committed journal must be pristine.

Entries are yielded in file order, which *is* trajectory order: the
journal is append-only, so line order is recording order even when
clock skew between machines makes timestamps lie.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .schema import validate_entry

__all__ = ["JournalProblem", "JournalRead", "read_journal"]


@dataclass(frozen=True)
class JournalProblem:
    """One unusable journal line."""

    line: int
    reason: str

    def describe(self) -> str:
        return f"line {self.line}: {self.reason}"


@dataclass
class JournalRead:
    """Outcome of reading one journal file."""

    path: Path
    entries: list[dict] = field(default_factory=list)
    problems: list[JournalProblem] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[dict]:
        """The entries of one producer, in trajectory order."""
        return [entry for entry in self.entries if entry.get("kind") == kind]

    @property
    def kinds(self) -> list[str]:
        """Distinct entry kinds, in first-seen order."""
        seen: dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry["kind"], None)
        return list(seen)


def read_journal(path: str | Path) -> JournalRead:
    """Parse the journal at ``path`` (missing file = empty journal).

    Blank lines are ignored silently (not recorded as problems): they
    are a side effect of hand-editing, not data loss.
    """
    path = Path(path)
    read = JournalRead(path=path)
    if not path.exists():
        return read
    import json

    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                read.problems.append(
                    JournalProblem(lineno, f"not valid JSON ({exc.msg})")
                )
                continue
            schema_problems = validate_entry(entry)
            if schema_problems:
                read.problems.append(
                    JournalProblem(lineno, "; ".join(schema_problems))
                )
                continue
            read.entries.append(entry)
    return read
