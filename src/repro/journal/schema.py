"""Schema of the persistent run journal.

A journal is an append-only JSONL file: one self-describing JSON object
per line, one line per recorded run.  Entries are the unit every other
journal layer operates on -- the writer appends them, the reader yields
them, the report renders their ``metrics`` as per-sha series and the
gate compares the newest value of each series against the trajectory of
the older ones.

Entry layout (``v`` = :data:`SCHEMA_VERSION`):

* ``v``       -- schema version (int, required);
* ``kind``    -- what produced the entry: ``"tables"`` for experiment
  sweeps, ``"bench"`` for ``tools/bench_compare.py`` runs,
  ``"service"`` for job-lifecycle events of the ``repro serve`` daemon
  (required);
* ``ts``      -- UTC ISO-8601 timestamp (required);
* ``sha``     -- git commit of the measured tree, ``"unknown"`` outside
  a repository (required);
* ``dirty``   -- whether the working tree had local modifications;
* ``machine`` -- fingerprint of the measuring host: at least ``python``
  and ``platform``, plus ``cpus`` when known (required);
* ``config``  -- run parameters (scale, circuits, jobs/shards, budget
  spec, bench repeats ...), free-form JSON scalars;
* ``metrics`` -- flat ``{name: seconds-or-ratio}`` map (required).
  This is the *trend unit*: the report charts each name across shas and
  the gate treats larger values as worse, so only put
  cost-like quantities here (wall clocks, per-phase seconds, the
  sharded critical-path fraction) -- never throughput or hit rates;
* ``phases``  -- per-phase runtime breakdown (engine timers / maxima);
* ``counters``-- abort-taxonomy, robustness and backend counters
  (``backend.*``, ``budget.*``, ``parallel.*``, ``checkpoint.*``);
* ``caches``  -- per-cache ``{hit, miss, rate}`` from ``EngineStats``;
* ``jobs``    -- per-job/per-shard runner records (key, wall seconds).

``"service"`` entries (schema v2) additionally require:

* ``event`` -- lifecycle transition, one of :data:`SERVICE_EVENTS`
  (``queued``/``leased``/``heartbeat``/``retried``/``readopted``/
  ``released``/``degraded``/``failed``/``done``/``canceled``/
  ``shutdown``);
* ``job``   -- the job id the event belongs to (non-empty string).

Their ``metrics`` map may be empty (lifecycle events are not trend
points unless they carry one, e.g. ``service.wall_seconds`` on
``done``), which keeps them invisible to the trajectory gate.

Only the required keys are enforced; optional sections may be absent so
old entries stay valid as the builders grow richer.  Version history:
v1 -- tables/bench entries; v2 -- adds the ``service`` kind (v1 entries
remain valid: readers are tolerant and the version check only rejects
entries *newer* than the library).
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:
    from ..engine.stats import EngineStats
    from ..experiments.results import ExperimentResults

__all__ = [
    "SCHEMA_VERSION",
    "KINDS",
    "SERVICE_EVENTS",
    "validate_entry",
    "machine_fingerprint",
    "git_sha",
    "git_dirty",
    "utc_now",
    "tables_entry",
    "bench_entry",
    "service_entry",
]

SCHEMA_VERSION = 2

#: Known entry producers.  Unknown kinds fail validation: a journal is a
#: long-lived committed artifact, so typos must not dilute a series.
KINDS = ("tables", "bench", "service")

#: Job-lifecycle transitions a ``"service"`` entry may record.
SERVICE_EVENTS = (
    "queued",
    "leased",
    "heartbeat",
    "retried",
    "readopted",
    "released",
    "degraded",
    "failed",
    "done",
    "canceled",
    "shutdown",
)

#: Session caches whose hit/miss counters are worth journaling
#: ("artifact" is the persistent on-disk store of :mod:`repro.artifacts`).
_CACHES = ("enumerate", "target_sets", "fault_simulator", "cone", "artifact")

#: Counter prefixes copied from ``EngineStats`` into ``entry["counters"]``
#: (the abort taxonomy, the runner's fault-tolerance bookkeeping and the
#: artifact store's write/corrupt accounting).
_COUNTER_PREFIXES = ("backend.", "budget.", "parallel.", "checkpoint.", "artifact.")


def validate_entry(entry: object) -> list[str]:
    """Schema problems of one decoded journal line (empty = valid)."""
    if not isinstance(entry, dict):
        return [f"entry is {type(entry).__name__}, not an object"]
    problems = []
    version = entry.get("v")
    if not isinstance(version, int):
        problems.append("missing integer schema version 'v'")
    elif version > SCHEMA_VERSION:
        problems.append(f"schema version {version} is newer than {SCHEMA_VERSION}")
    kind = entry.get("kind")
    if kind not in KINDS:
        problems.append(f"kind must be one of {KINDS}, got {kind!r}")
    if not isinstance(entry.get("ts"), str) or not entry.get("ts"):
        problems.append("missing timestamp 'ts'")
    if not isinstance(entry.get("sha"), str) or not entry.get("sha"):
        problems.append("missing commit 'sha'")
    machine = entry.get("machine")
    if not isinstance(machine, dict) or not {"python", "platform"} <= set(machine):
        problems.append("'machine' must carry at least python and platform")
    metrics = entry.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing 'metrics' object")
    else:
        for name, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"metric {name!r} is not a number")
    if kind == "service":
        event = entry.get("event")
        if event not in SERVICE_EVENTS:
            problems.append(
                f"service event must be one of {SERVICE_EVENTS}, got {event!r}"
            )
        job = entry.get("job")
        if not isinstance(job, str) or not job:
            problems.append("service entry missing job id 'job'")
    return problems


def machine_fingerprint() -> dict:
    """Identity of the measuring host (stable within one container/runner)."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
    }


def _git(args: list[str], cwd: str | None) -> str | None:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip()


def git_sha(cwd: str | None = None) -> str:
    """Current commit, ``REPRO_JOURNAL_SHA`` override, or ``"unknown"``.

    The override is how tests and backfill scripts pin entries to a
    specific historical commit without checking it out.
    """
    override = os.environ.get("REPRO_JOURNAL_SHA")
    if override:
        return override
    return _git(["rev-parse", "HEAD"], cwd) or "unknown"


def git_dirty(cwd: str | None = None) -> bool:
    """True when the working tree differs from ``sha`` (numbers may lie)."""
    status = _git(["status", "--porcelain"], cwd)
    return bool(status)


def utc_now() -> str:
    """UTC ISO-8601 timestamp with second precision."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _base_entry(
    kind: str,
    sha: str | None,
    ts: str | None,
    machine: dict | None,
    dirty: bool | None = None,
) -> dict:
    # ``dirty`` describes the *tree*, not the sha: an explicit sha (or a
    # REPRO_JOURNAL_SHA override) must not silently launder a modified
    # working tree into ``dirty: False``.  Callers that genuinely know
    # better (backfill scripts replaying committed states) pass ``dirty``
    # explicitly.
    return {
        "v": SCHEMA_VERSION,
        "kind": kind,
        "ts": ts if ts is not None else utc_now(),
        "sha": git_sha() if sha is None else sha,
        "dirty": git_dirty() if dirty is None else bool(dirty),
        "machine": machine if machine is not None else machine_fingerprint(),
    }


def _cache_section(stats: "EngineStats") -> dict:
    caches = {}
    for cache in _CACHES:
        hits, misses = stats.hits(cache), stats.misses(cache)
        if hits or misses:
            caches[cache] = {
                "hit": hits,
                "miss": misses,
                "rate": round(hits / (hits + misses), 4),
            }
    return caches


def tables_entry(
    results: "ExperimentResults",
    stats: "EngineStats",
    *,
    wall_seconds: float,
    config: Mapping | None = None,
    jobs: list[dict] | None = None,
    sha: str | None = None,
    ts: str | None = None,
    machine: dict | None = None,
    dirty: bool | None = None,
) -> dict:
    """Journal entry for one ``tables`` sweep.

    Metrics are the sweep's wall clock plus every measured
    ``runtime_seconds`` of the results (one series per circuit and
    heuristic, ``<circuit>.enrich` for Table 6 rows), so the trajectory
    tracks exactly the numbers EXPERIMENTS.md used to quote as prose.
    Reading ``results``/``stats`` never mutates them: journaling must
    leave the experiment output byte-identical to an unjournaled run.
    """
    entry = _base_entry("tables", sha, ts, machine, dirty)
    metrics = {"tables.wall_seconds": round(wall_seconds, 6)}
    aborted_basic = aborted_enrich = 0
    for circuit, result in results.basic.items():
        for heuristic, outcome in result.outcomes.items():
            metrics[f"{circuit}.{heuristic}.seconds"] = round(
                outcome.runtime_seconds, 6
            )
            aborted_basic += outcome.aborted
    for row in results.table6:
        metrics[f"{row.circuit}.enrich.seconds"] = round(row.runtime_seconds, 6)
        aborted_enrich += row.aborted
    entry["metrics"] = metrics
    entry["config"] = dict(config or {})
    entry["config"].setdefault("scale", results.scale)
    counters = {
        name: value
        for name, value in sorted(stats.counters.items())
        if name.startswith(_COUNTER_PREFIXES)
    }
    counters["aborted.basic"] = aborted_basic
    counters["aborted.enrich"] = aborted_enrich
    entry["counters"] = counters
    phases = {name: round(value, 6) for name, value in sorted(stats.timers.items())}
    for name, value in sorted(stats.maxima.items()):
        phases[f"max.{name}"] = round(value, 6)
    entry["phases"] = phases
    entry["caches"] = _cache_section(stats)
    if jobs:
        entry["jobs"] = jobs
    return entry


def bench_entry(
    payload: Mapping,
    *,
    config: Mapping | None = None,
    sha: str | None = None,
    ts: str | None = None,
    machine: dict | None = None,
    dirty: bool | None = None,
) -> dict:
    """Journal entry for one ``tools/bench_compare.py`` run.

    ``payload`` is the bench script's own output document
    (``{"meta": ..., "results": ...}``); its result names become the
    metric series, so the journal trajectory lines up one-to-one with
    the committed ``BENCH_PR*.json`` snapshots it supersedes.
    """
    meta = dict(payload.get("meta", {}))
    if machine is None and {"python", "platform"} <= set(meta):
        machine = {**machine_fingerprint(), **meta}
    entry = _base_entry("bench", sha, ts, machine, dirty)
    entry["metrics"] = {
        name: float(value) for name, value in payload.get("results", {}).items()
    }
    entry["config"] = dict(config or {})
    return entry


def service_entry(
    event: str,
    job: str,
    *,
    detail: Mapping | None = None,
    metrics: Mapping | None = None,
    sha: str | None = None,
    ts: str | None = None,
    machine: dict | None = None,
    dirty: bool | None = None,
) -> dict:
    """Journal entry for one job-lifecycle event of the service daemon.

    ``detail`` is free-form context for humans and tests (attempt
    numbers, failure phases, queue paths); ``metrics`` defaults to ``{}``
    so lifecycle chatter never feeds the trajectory gate -- only events
    that explicitly carry a cost series (``done`` with
    ``service.wall_seconds``) become trend points.
    """
    if event not in SERVICE_EVENTS:
        raise ValueError(
            f"service event must be one of {SERVICE_EVENTS}, got {event!r}"
        )
    entry = _base_entry("service", sha, ts, machine, dirty)
    entry["event"] = event
    entry["job"] = job
    entry["metrics"] = {
        name: float(value) for name, value in (metrics or {}).items()
    }
    if detail:
        entry["detail"] = dict(detail)
    return entry
