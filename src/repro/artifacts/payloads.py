"""Binary payload codecs for the persistent artifact store.

Two artifact kinds are persisted (the two expensive products of a
:class:`~repro.engine.session.CircuitSession`):

``enumeration``
    An :class:`~repro.paths.enumerate.EnumerationResult`.  Paths are
    stored as one flat ``int32`` node-index array plus a per-path length
    array (node indices are dense declaration-order indices, which is
    exactly what the content key's canonical netlist form pins down);
    the scalar diagnostics ride in the metadata payload.

``target_sets``
    A :class:`~repro.faults.universe.TargetSets`.  Only the fault
    *identities* are stored -- path nodes plus a transition flag per
    record, in ``P0``/``P1`` order.  Sensitization requirement sets are
    recomputed on load with :func:`~repro.faults.conditions.sensitize`
    (a cheap deterministic pure function of netlist + fault + mode) and
    the length table is rebuilt from the fault population, so the
    reconstructed object is field-for-field identical to a cold build
    without serializing any compiled structure.

Only *unbudgeted, complete* artifacts are ever published: a payload with
``budget_exhausted`` set depends on wall clock and must not be replayed.
The :func:`load_*` / :func:`publish_*` helpers wrap the store protocol
for the session layer; loads that decode but cannot be reconstructed
count as ``artifact.corrupt`` misses, and publish failures (full disk,
read-only store) are swallowed -- the cache is best-effort by contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..faults.fault import PathDelayFault, Transition
from ..faults.path import Path
from ..faults.universe import FaultRecord, TargetSets
from .store import ArtifactStore, netlist_digest

if TYPE_CHECKING:
    from ..circuit.netlist import Netlist
    from ..paths.enumerate import EnumerationResult

__all__ = [
    "pack_enumeration",
    "unpack_enumeration",
    "pack_target_sets",
    "unpack_target_sets",
    "load_enumeration",
    "publish_enumeration",
    "load_target_sets",
    "publish_target_sets",
]

_TRANSITIONS = (Transition.RISE, Transition.FALL)


def _pack_paths(paths) -> dict[str, np.ndarray]:
    """Flat node-index + per-path length arrays for a path sequence."""
    lengths = np.array([len(path.nodes) for path in paths], dtype=np.int32)
    flat = [node for path in paths for node in path.nodes]
    return {
        "lengths": lengths,
        "nodes": np.array(flat, dtype=np.int32),
    }


def _unpack_paths(arrays, prefix: str = "") -> list[Path]:
    lengths = arrays[f"{prefix}lengths"]
    nodes = arrays[f"{prefix}nodes"].tolist()  # plain ints: Path identity
    if len(nodes) != int(lengths.sum()):
        raise ValueError("path arrays disagree on total node count")
    paths = []
    offset = 0
    for length in lengths.tolist():
        if length < 1:
            raise ValueError("a stored path needs at least one node")
        paths.append(Path(nodes[offset : offset + length]))
        offset += length
    return paths


def pack_enumeration(result: "EnumerationResult"):
    """``(arrays, payload)`` for one enumeration result."""
    payload = {
        "cap_hit": result.cap_hit,
        "expansions": result.expansions,
        "pruned_complete": result.pruned_complete,
        "pruned_partial": result.pruned_partial,
        "min_kept_length": result.min_kept_length,
        "max_kept_length": result.max_kept_length,
    }
    return _pack_paths(result.paths), payload


def unpack_enumeration(payload, arrays) -> "EnumerationResult":
    """Rebuild an :class:`EnumerationResult` from its stored form."""
    from ..paths.enumerate import EnumerationResult

    return EnumerationResult(
        paths=_unpack_paths(arrays),
        cap_hit=bool(payload["cap_hit"]),
        expansions=int(payload["expansions"]),
        pruned_complete=int(payload["pruned_complete"]),
        pruned_partial=int(payload["pruned_partial"]),
        min_kept_length=int(payload["min_kept_length"]),
        max_kept_length=int(payload["max_kept_length"]),
        budget_exhausted=None,
    )


def _pack_records(records) -> tuple[dict[str, np.ndarray], list]:
    paths = []
    transitions = []
    for record in records:
        paths.append(record.fault.path)
        transitions.append(_TRANSITIONS.index(record.fault.transition))
    arrays = _pack_paths(paths)
    arrays["transitions"] = np.array(transitions, dtype=np.uint8)
    return arrays, paths


def pack_target_sets(targets: TargetSets):
    """``(arrays, payload)`` for one target-set construction."""
    arrays = {}
    for name, records in (("p0", targets.p0), ("p1", targets.p1)):
        packed, _ = _pack_records(records)
        arrays.update({f"{name}_{key}": value for key, value in packed.items()})
    payload = {
        "i0": targets.i0,
        "dropped_conflict": targets.dropped_conflict,
        "dropped_implication": targets.dropped_implication,
    }
    return arrays, payload


def _unpack_records(netlist: "Netlist", arrays, prefix: str, mode) -> list[FaultRecord]:
    from ..faults.conditions import sensitize

    paths = _unpack_paths(arrays, prefix=prefix)
    transitions = arrays[f"{prefix}transitions"].tolist()
    if len(transitions) != len(paths):
        raise ValueError("transition flags disagree with path count")
    records = []
    for path, flag in zip(paths, transitions):
        if flag not in (0, 1):
            raise ValueError(f"unknown transition flag {flag}")
        fault = PathDelayFault(path, _TRANSITIONS[flag])
        sens = sensitize(netlist, fault, mode=mode)
        if sens is None:
            # A published record was sensitizable by construction; a
            # conflict here means the entry does not match this netlist.
            raise ValueError("stored fault is not sensitizable")
        records.append(FaultRecord(fault, sens))
    return records


def unpack_target_sets(netlist: "Netlist", payload, arrays, mode) -> TargetSets:
    """Rebuild :class:`TargetSets`, re-deriving requirements and table."""
    from ..paths.lengths import length_table_for_faults

    p0 = _unpack_records(netlist, arrays, "p0_", mode)
    p1 = _unpack_records(netlist, arrays, "p1_", mode)
    table = length_table_for_faults(record.fault for record in p0 + p1)
    return TargetSets(
        netlist=netlist,
        p0=p0,
        p1=p1,
        i0=int(payload["i0"]),
        length_table=table,
        dropped_conflict=int(payload["dropped_conflict"]),
        dropped_implication=int(payload["dropped_implication"]),
        enumeration=None,
        budget_exhausted=None,
    )


# -- session-facing consult/publish wrappers ---------------------------


def _enumeration_params(max_faults: int, use_distances: bool) -> dict:
    return {"max_faults": max_faults, "use_distances": use_distances}


def _target_set_params(
    max_faults: int, p0_min_faults: int, mode, filter_implications: bool
) -> dict:
    return {
        "max_faults": max_faults,
        "p0_min_faults": p0_min_faults,
        "mode": str(mode),
        "filter_implications": filter_implications,
    }


def _digest(netlist: "Netlist", digest: str | None) -> str:
    return digest if digest is not None else netlist_digest(netlist)


def load_enumeration(
    store: ArtifactStore,
    netlist: "Netlist",
    *,
    max_faults: int,
    use_distances: bool,
    digest: str | None = None,
    stats=None,
) -> "EnumerationResult | None":
    """Stored enumeration for the exact parameter envelope, or ``None``."""
    found = store.load(
        _digest(netlist, digest),
        "enumeration",
        _enumeration_params(max_faults, use_distances),
        stats=stats,
    )
    if found is None:
        return None
    payload, arrays = found
    try:
        return unpack_enumeration(payload, arrays)
    except (KeyError, ValueError, OverflowError):
        if stats is not None:
            stats.count("artifact.corrupt")
        return None


def publish_enumeration(
    store: ArtifactStore,
    netlist: "Netlist",
    result: "EnumerationResult",
    *,
    max_faults: int,
    use_distances: bool,
    digest: str | None = None,
    stats=None,
) -> None:
    """Persist a complete (unbudgeted) enumeration; best-effort."""
    if result.budget_exhausted is not None:
        return
    arrays, payload = pack_enumeration(result)
    try:
        store.publish(
            _digest(netlist, digest),
            "enumeration",
            _enumeration_params(max_faults, use_distances),
            arrays,
            payload,
            netlist_name=netlist.name,
            stats=stats,
        )
    except OSError:
        pass


def load_target_sets(
    store: ArtifactStore,
    netlist: "Netlist",
    *,
    max_faults: int,
    p0_min_faults: int,
    mode,
    filter_implications: bool,
    digest: str | None = None,
    stats=None,
) -> TargetSets | None:
    """Stored target sets for the exact parameter envelope, or ``None``."""
    found = store.load(
        _digest(netlist, digest),
        "target_sets",
        _target_set_params(max_faults, p0_min_faults, mode, filter_implications),
        stats=stats,
    )
    if found is None:
        return None
    payload, arrays = found
    try:
        return unpack_target_sets(netlist, payload, arrays, mode)
    except (KeyError, ValueError, OverflowError):
        if stats is not None:
            stats.count("artifact.corrupt")
        return None


def publish_target_sets(
    store: ArtifactStore,
    netlist: "Netlist",
    targets: TargetSets,
    *,
    max_faults: int,
    p0_min_faults: int,
    mode,
    filter_implications: bool,
    digest: str | None = None,
    stats=None,
) -> None:
    """Persist a complete (unbudgeted) target-set build; best-effort."""
    if targets.budget_exhausted is not None:
        return
    arrays, payload = pack_target_sets(targets)
    try:
        store.publish(
            _digest(netlist, digest),
            "target_sets",
            _target_set_params(max_faults, p0_min_faults, mode, filter_implications),
            arrays,
            payload,
            netlist_name=netlist.name,
            stats=stats,
        )
    except OSError:
        pass
