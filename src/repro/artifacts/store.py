"""Content-addressed on-disk store of per-circuit artifacts.

The engine layer memoizes expensive per-circuit artifacts (path
enumerations, target sets) per *process*; every CLI invocation and every
pool worker rebuilds them from scratch.  :class:`ArtifactStore` persists
them across invocations:

* **content-addressed keys** -- an entry's filename is derived from
  ``blake2b(netlist canonical form)`` plus the artifact kind, the full
  parameter envelope and the payload-format version
  (:func:`artifact_key`), so a changed circuit, parameter or format can
  never alias a stale entry; the envelope is additionally stored inside
  the entry and re-validated on load;
* **atomic publishing** -- entries are written to a unique temporary
  file in the store directory and ``os.replace``d into place, so readers
  only ever observe complete entries and concurrent writers (N shard
  workers publishing the same artifact) simply last-write-win the
  identical bytes;
* **versioned binary payloads** -- one ``.npz`` per entry: numpy arrays
  for the bulk data plus a canonical-JSON metadata record (envelope,
  scalar fields, integrity digest);
* **integrity digests** -- the metadata embeds a blake2b digest over the
  envelope and every array's bytes, recomputed on load; a mismatch (or
  any other decode failure: truncated file, not-a-zip garbage, missing
  arrays) is treated as a **miss, never an error** -- the caller
  recomputes and republishes, and the event is counted as
  ``artifact.corrupt``;
* **self-healing quarantine** -- a corrupt or stale entry is *moved* to
  ``<store>/quarantine/`` the moment a load trips over it (counted as
  ``artifact.quarantined``), so one bad file is paid for once instead of
  being re-decoded and re-counted on every subsequent run; the republish
  then lands a fresh entry at the original path.  ``repro-pdf cache
  verify --repair`` quarantines whatever a full scan finds and drains
  the quarantine directory.

Cache outcomes are recorded on an optional EngineStats-compatible sink
(anything with ``count``/``hit``/``miss``/``timer``): ``artifact.hit`` /
``artifact.miss`` per consult (corrupt and stale entries count as
misses, corrupt ones additionally as ``artifact.corrupt``) and
``artifact.write`` per publish.

Maintenance (the ``repro-pdf cache`` CLI): :meth:`ArtifactStore.entries`
lists the store, :meth:`ArtifactStore.verify` fully decodes every entry,
and :meth:`ArtifactStore.gc` applies a size-bounded LRU policy by file
mtime -- loads touch the entry's mtime, so recently-used artifacts
survive a ``gc`` that evicts cold ones.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from ..circuit.netlist import Netlist

__all__ = [
    "PAYLOAD_VERSION",
    "ArtifactEntry",
    "ArtifactStore",
    "netlist_canonical_form",
    "netlist_digest",
    "artifact_key",
]

#: Version of the on-disk payload format.  Part of every key *and* every
#: stored envelope: bumping it orphans (never corrupts) old entries.
PAYLOAD_VERSION = 1

#: Failure modes of decoding an arbitrary file as an entry.  Kept broad on
#: purpose: a cache read must degrade to a miss for *any* malformed input
#: (zero-byte file, truncated zip, non-npz garbage, missing arrays,
#: invalid JSON), never propagate.
_DECODE_ERRORS = (
    OSError,
    EOFError,
    ValueError,
    KeyError,
    UnicodeDecodeError,
    json.JSONDecodeError,
    zipfile.BadZipFile,
)


def _canonical_json(payload) -> str:
    """Canonical JSON: sorted keys, no whitespace (stable for hashing)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def netlist_canonical_form(netlist: Netlist) -> str:
    """Canonical serialization of a netlist's *structure*.

    Nodes in declaration order (dense indices are declaration order, and
    stored artifacts reference nodes by dense index), each as
    ``[name, gate_type, [fanin...]]``, plus the declared outputs.  The
    circuit's display ``name`` is deliberately excluded so a
    :func:`~repro.circuit.transform.renamed` copy shares its artifacts.
    """
    return _canonical_json(
        {
            "nodes": [
                [node.name, node.gate_type.value, list(node.fanin)]
                for node in netlist.nodes
            ],
            "outputs": list(netlist.output_names),
        }
    )


def netlist_digest(netlist: Netlist) -> str:
    """``blake2b`` digest of :func:`netlist_canonical_form`."""
    return hashlib.blake2b(
        netlist_canonical_form(netlist).encode(), digest_size=16
    ).hexdigest()


def artifact_key(circuit_digest: str, kind: str, params: Mapping) -> str:
    """Content address of one artifact: circuit + kind + envelope + version."""
    envelope = _canonical_json(
        {
            "circuit": circuit_digest,
            "kind": kind,
            "params": dict(params),
            "v": PAYLOAD_VERSION,
        }
    )
    return hashlib.blake2b(envelope.encode(), digest_size=16).hexdigest()


def _payload_digest(meta: Mapping, arrays: Mapping[str, np.ndarray]) -> str:
    """Integrity digest over the metadata and every array's raw bytes."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(_canonical_json(meta).encode())
    for name in sorted(arrays):
        array = arrays[name]
        digest.update(
            f"{name}:{array.dtype.str}:{array.shape}".encode()
        )
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class ArtifactEntry:
    """One store entry as listed by :meth:`ArtifactStore.entries`."""

    path: Path
    kind: str
    key: str
    size: int
    mtime: float

    def describe(self, meta: Mapping | None = None) -> str:
        circuit = params = ""
        if meta is not None:
            circuit = str(meta.get("netlist", {}).get("name", "?"))
            params = _canonical_json(meta.get("params", {}))
        return (
            f"{self.kind:<12} {self.key}  {self.size:>8}B  "
            f"{circuit} {params}".rstrip()
        )


class ArtifactStore:
    """Content-addressed persistent artifact cache rooted at ``directory``.

    ``stats`` is an optional default EngineStats-compatible sink; callers
    that own richer instrumentation (sessions) pass theirs per call.
    """

    def __init__(self, directory: str | Path, stats=None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = stats

    # -- core protocol -------------------------------------------------

    def path_for(self, kind: str, key: str) -> Path:
        """Entry file for a (kind, content key) pair."""
        return self.directory / f"{kind}-{key}.npz"

    def _count(self, stats, name: str, n: int = 1) -> None:
        stats = stats if stats is not None else self.stats
        if stats is not None:
            stats.count(name, n)

    def publish(
        self,
        netlist_digest: str,
        kind: str,
        params: Mapping,
        arrays: Mapping[str, np.ndarray],
        payload: Mapping,
        *,
        netlist_name: str = "",
        stats=None,
    ) -> Path:
        """Write one artifact atomically; returns the entry path.

        ``params`` is the full parameter envelope (what the key hashes
        and :meth:`load` revalidates); ``payload`` carries the artifact's
        scalar fields; ``arrays`` its bulk data.  ``netlist_name`` is
        display-only metadata (``cache ls``) and not part of the key.
        """
        key = artifact_key(netlist_digest, kind, params)
        meta = {
            "v": PAYLOAD_VERSION,
            "kind": kind,
            "netlist": {"name": netlist_name, "digest": netlist_digest},
            "params": dict(params),
            "payload": dict(payload),
        }
        meta["digest"] = _payload_digest(meta, arrays)
        buffer = io.BytesIO()
        np.savez(
            buffer,
            __meta__=np.frombuffer(
                _canonical_json(meta).encode(), dtype=np.uint8
            ),
            **arrays,
        )
        path = self.path_for(kind, key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(buffer.getvalue())
        os.replace(tmp, path)
        self._count(stats, "artifact.write")
        return path

    def _decode(self, path: Path) -> tuple[dict, dict[str, np.ndarray]]:
        """Decode and integrity-check one entry file (raises on corruption)."""
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(bytes(data["__meta__"]).decode())
            if not isinstance(meta, dict):
                raise ValueError("metadata is not an object")
            arrays = {
                name: data[name] for name in data.files if name != "__meta__"
            }
        expected = meta.pop("digest", None)
        if expected is None or _payload_digest(meta, arrays) != expected:
            raise ValueError("integrity digest mismatch")
        return meta, arrays

    def load(
        self,
        netlist_digest: str,
        kind: str,
        params: Mapping,
        *,
        stats=None,
    ) -> tuple[dict, dict[str, np.ndarray]] | None:
        """Stored ``(payload, arrays)`` for an artifact, or ``None``.

        ``None`` covers the three miss flavours: *absent* (no file,
        silent), *corrupt* (present but undecodable or failing its
        integrity digest; counted as ``artifact.corrupt``) and *stale*
        (decodes, but its stored envelope disagrees with the request --
        only possible via a key collision or a mislabelled file, so it is
        treated as corrupt too).  Every call counts exactly one of
        ``artifact.hit`` / ``artifact.miss``.  Corrupt and stale entries
        are quarantined on first contact (see :meth:`quarantine_entry`),
        so the recompute-and-republish that follows this miss heals the
        store instead of fighting the bad file.
        """
        key = artifact_key(netlist_digest, kind, params)
        path = self.path_for(kind, key)
        if not path.exists():
            self._count(stats, "artifact.miss")
            return None
        try:
            meta, arrays = self._decode(path)
        except _DECODE_ERRORS:
            self._count(stats, "artifact.miss")
            self._count(stats, "artifact.corrupt")
            self.quarantine_entry(path, stats=stats)
            return None
        if (
            meta.get("v") != PAYLOAD_VERSION
            or meta.get("kind") != kind
            or meta.get("netlist", {}).get("digest") != netlist_digest
            or meta.get("params") != dict(params)
        ):
            self._count(stats, "artifact.miss")
            self._count(stats, "artifact.corrupt")
            self.quarantine_entry(path, stats=stats)
            return None
        self._count(stats, "artifact.hit")
        self._touch(path)
        return dict(meta.get("payload", {})), arrays

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh an entry's mtime (the LRU clock for :meth:`gc`)."""
        try:
            os.utime(path)
        except OSError:
            pass  # read-only store: loads still work, gc just sees it colder

    # -- quarantine (self-healing) --------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are parked (outside ``entries()``'s glob,
        so a quarantined file stops being scanned, loaded or gc-ranked)."""
        return self.directory / "quarantine"

    def quarantine_entry(self, path: Path, *, stats=None) -> Path | None:
        """Move one corrupt entry file into the quarantine (atomic rename).

        Counted as ``artifact.quarantined``.  Collisions get a numbered
        suffix (two corruption events of a republished key must not
        overwrite each other's evidence).  Failures -- read-only store,
        the file already gone because a concurrent writer republished
        over it -- return ``None``; quarantining is an optimization,
        never a load error.
        """
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_dir / f"{path.name}.{suffix}"
            os.replace(path, target)
        except OSError:
            return None
        self._count(stats, "artifact.quarantined")
        return target

    def quarantined(self) -> list[Path]:
        """Quarantined files, oldest name first."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(p for p in self.quarantine_dir.iterdir() if p.is_file())

    def drain_quarantine(self) -> list[Path]:
        """Delete every quarantined file; returns what was removed."""
        removed = []
        for path in self.quarantined():
            try:
                path.unlink()
            except OSError:
                continue
            removed.append(path)
        return removed

    # -- maintenance (the `repro-pdf cache` subcommands) ----------------

    def entries(self) -> list[ArtifactEntry]:
        """Every entry file, newest mtime first."""
        found = []
        for path in self.directory.glob("*-*.npz"):
            kind, _, key = path.stem.rpartition("-")
            try:
                status = path.stat()
            except OSError:
                continue
            found.append(
                ArtifactEntry(
                    path=path,
                    kind=kind,
                    key=key,
                    size=status.st_size,
                    mtime=status.st_mtime,
                )
            )
        found.sort(key=lambda entry: (-entry.mtime, entry.path.name))
        return found

    def read_meta(self, entry: ArtifactEntry) -> dict | None:
        """Decoded metadata of one entry, ``None`` when undecodable."""
        try:
            meta, _ = self._decode(entry.path)
        except _DECODE_ERRORS:
            return None
        return meta

    def verify(
        self, repair: bool = False, stats=None
    ) -> tuple[list[ArtifactEntry], list[ArtifactEntry]]:
        """Fully decode every entry: ``(intact, corrupt)`` lists.

        An entry is intact when it decodes, passes its integrity digest
        and its stored envelope re-derives its own filename (so a renamed
        or mislabelled entry is flagged as corrupt as well).  With
        ``repair=True`` each corrupt entry is quarantined on the spot and
        the quarantine directory is drained afterwards -- the
        ``cache verify --repair`` behaviour.
        """
        intact, corrupt = [], []
        for entry in self.entries():
            meta = self.read_meta(entry)
            if meta is None:
                corrupt.append(entry)
                continue
            digest = meta.get("netlist", {}).get("digest", "")
            expected = artifact_key(digest, meta.get("kind", ""), meta.get("params", {}))
            if meta.get("kind") != entry.kind or expected != entry.key:
                corrupt.append(entry)
            else:
                intact.append(entry)
        if repair:
            for entry in corrupt:
                self.quarantine_entry(entry.path, stats=stats)
            self.drain_quarantine()
        return intact, corrupt

    def gc(self, max_bytes: int) -> list[ArtifactEntry]:
        """Evict least-recently-used entries until the store fits.

        Entries are kept newest-mtime-first while their cumulative size
        stays within ``max_bytes``; the rest are unlinked and returned.
        Loads refresh mtimes, so this is LRU, not FIFO.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        removed = []
        kept_bytes = 0
        for entry in self.entries():
            kept_bytes += entry.size
            if kept_bytes > max_bytes:
                try:
                    entry.path.unlink()
                except OSError:
                    continue
                removed.append(entry)
        return removed

    def total_bytes(self) -> int:
        """Cumulative size of every entry file."""
        return sum(entry.size for entry in self.entries())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactStore({str(self.directory)!r})"
