"""Content-addressed persistent artifact cache (see ``store`` module)."""

from .payloads import (
    load_enumeration,
    load_target_sets,
    pack_enumeration,
    pack_target_sets,
    publish_enumeration,
    publish_target_sets,
    unpack_enumeration,
    unpack_target_sets,
)
from .store import (
    PAYLOAD_VERSION,
    ArtifactEntry,
    ArtifactStore,
    artifact_key,
    netlist_canonical_form,
    netlist_digest,
)

__all__ = [
    "PAYLOAD_VERSION",
    "ArtifactEntry",
    "ArtifactStore",
    "artifact_key",
    "netlist_canonical_form",
    "netlist_digest",
    "pack_enumeration",
    "unpack_enumeration",
    "pack_target_sets",
    "unpack_target_sets",
    "load_enumeration",
    "publish_enumeration",
    "load_target_sets",
    "publish_target_sets",
]
