"""Three-valued (0, 1, x) logic primitives.

Every line of a circuit carries, for each of the three waveform positions of a
two-pattern test (initial value, intermediate value, final value), one of
three logic values:

* ``ZERO`` -- logic 0
* ``ONE``  -- logic 1
* ``X``    -- unknown / unassigned

The module provides both scalar operations (plain ``int`` in, ``int`` out)
and the lookup tables the vectorized simulator uses directly with numpy
fancy indexing.  Values are encoded as small integers::

    ZERO = 0, ONE = 1, X = 2

A second, *ordered* encoding (0 -> 0, X -> 1, ONE -> 2) makes AND a ``min``
and OR a ``max``; the batch simulator uses it internally.  ``TO_ORD`` and
``FROM_ORD`` convert between the encodings.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

ZERO: int = 0
ONE: int = 1
X: int = 2

#: All legal ternary values.
VALUES: tuple[int, int, int] = (ZERO, ONE, X)

#: Human-readable characters for each value, indexed by the value itself.
CHARS: str = "01x"

#: Map from character to value, accepting a few common aliases.
_CHAR_TO_VALUE: dict[str, int] = {
    "0": ZERO,
    "1": ONE,
    "x": X,
    "X": X,
    "u": X,
    "U": X,
    "-": X,
}


def value_from_char(char: str) -> int:
    """Return the ternary value encoded by ``char`` (``0``/``1``/``x``)."""
    try:
        return _CHAR_TO_VALUE[char]
    except KeyError:
        raise ValueError(f"not a ternary value character: {char!r}") from None


def value_to_char(value: int) -> str:
    """Return the canonical character for a ternary ``value``."""
    if value not in VALUES:
        raise ValueError(f"not a ternary value: {value!r}")
    return CHARS[value]


def _build_and() -> np.ndarray:
    table = np.full((3, 3), X, dtype=np.int8)
    for a in VALUES:
        for b in VALUES:
            if a == ZERO or b == ZERO:
                table[a, b] = ZERO
            elif a == ONE and b == ONE:
                table[a, b] = ONE
    return table


def _build_or() -> np.ndarray:
    table = np.full((3, 3), X, dtype=np.int8)
    for a in VALUES:
        for b in VALUES:
            if a == ONE or b == ONE:
                table[a, b] = ONE
            elif a == ZERO and b == ZERO:
                table[a, b] = ZERO
    return table


def _build_xor() -> np.ndarray:
    table = np.full((3, 3), X, dtype=np.int8)
    for a in (ZERO, ONE):
        for b in (ZERO, ONE):
            table[a, b] = a ^ b
    return table


#: 3x3 lookup tables, indexed ``TABLE[a, b]``.
AND_TABLE: np.ndarray = _build_and()
OR_TABLE: np.ndarray = _build_or()
XOR_TABLE: np.ndarray = _build_xor()

#: Unary NOT, indexed ``NOT_TABLE[a]``.
NOT_TABLE: np.ndarray = np.array([ONE, ZERO, X], dtype=np.int8)

#: Conversion to the ordered encoding (ZERO->0, X->1, ONE->2) and back.
TO_ORD: np.ndarray = np.array([0, 2, 1], dtype=np.int8)
FROM_ORD: np.ndarray = np.array([ZERO, X, ONE], dtype=np.int8)

AND_TABLE.setflags(write=False)
OR_TABLE.setflags(write=False)
XOR_TABLE.setflags(write=False)
NOT_TABLE.setflags(write=False)
TO_ORD.setflags(write=False)
FROM_ORD.setflags(write=False)


def t_and(a: int, b: int) -> int:
    """Ternary AND of two scalar values."""
    return int(AND_TABLE[a, b])


def t_or(a: int, b: int) -> int:
    """Ternary OR of two scalar values."""
    return int(OR_TABLE[a, b])


def t_xor(a: int, b: int) -> int:
    """Ternary XOR of two scalar values."""
    return int(XOR_TABLE[a, b])


def t_not(a: int) -> int:
    """Ternary NOT of a scalar value."""
    return int(NOT_TABLE[a])


def t_and_all(values: Iterable[int]) -> int:
    """Ternary AND over an iterable of values (identity: ONE)."""
    result = ONE
    for value in values:
        result = int(AND_TABLE[result, value])
        if result == ZERO:
            return ZERO
    return result


def t_or_all(values: Iterable[int]) -> int:
    """Ternary OR over an iterable of values (identity: ZERO)."""
    result = ZERO
    for value in values:
        result = int(OR_TABLE[result, value])
        if result == ONE:
            return ONE
    return result


def t_xor_all(values: Iterable[int]) -> int:
    """Ternary XOR over an iterable of values (identity: ZERO)."""
    result = ZERO
    for value in values:
        result = int(XOR_TABLE[result, value])
    return result


def is_specified(value: int) -> bool:
    """True when ``value`` is a known logic value (0 or 1, not x)."""
    return value == ZERO or value == ONE
