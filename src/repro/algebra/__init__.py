"""Multi-valued algebra for two-pattern (delay) tests.

Exports the ternary scalar logic (:mod:`repro.algebra.ternary`) and the
waveform-triple domain (:mod:`repro.algebra.triple`) used throughout the
path-delay-fault tooling.
"""

from .ternary import (
    AND_TABLE,
    NOT_TABLE,
    ONE,
    OR_TABLE,
    VALUES,
    X,
    XOR_TABLE,
    ZERO,
    is_specified,
    t_and,
    t_and_all,
    t_not,
    t_or,
    t_or_all,
    t_xor,
    t_xor_all,
    value_from_char,
    value_to_char,
)
from .triple import (
    FALL,
    RISE,
    STABLE0,
    STABLE1,
    UNKNOWN,
    Triple,
    all_triples,
)

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "VALUES",
    "AND_TABLE",
    "OR_TABLE",
    "XOR_TABLE",
    "NOT_TABLE",
    "t_and",
    "t_or",
    "t_xor",
    "t_not",
    "t_and_all",
    "t_or_all",
    "t_xor_all",
    "is_specified",
    "value_from_char",
    "value_to_char",
    "Triple",
    "STABLE0",
    "STABLE1",
    "RISE",
    "FALL",
    "UNKNOWN",
    "all_triples",
]
