"""Waveform triples ``alpha1 alpha2 alpha3`` for two-pattern tests.

Following Section 2.1 of the paper, the value a line carries under a
two-pattern test is described by a triple ``alpha = alpha1 alpha2 alpha3``:

* ``alpha1`` -- value under the first pattern,
* ``alpha2`` -- intermediate value while the circuit settles,
* ``alpha3`` -- value under the second pattern.

A *stable* value has ``alpha1 == alpha2 == alpha3``; a rising transition is
``0x1`` and a falling transition is ``1x0``.

Triples play two distinct roles:

* **Simulated values** -- what a (possibly partial) two-pattern input
  assignment actually produces on a line.  Here ``x`` means *unknown or
  possibly hazardous*.
* **Requirements** -- entries of the set ``A(p)`` a test must satisfy.  Here
  ``x`` means *don't care*.

The two roles meet in :meth:`Triple.covers` (does a simulated value satisfy a
requirement?) and :meth:`Triple.consistent_with` (could a partially-known
simulated value still evolve into one that satisfies the requirement?).

Triples are interned: there are only 27 of them, constructed once.  Identity
comparison (``is``) is therefore valid, and :attr:`Triple.code` gives a dense
integer encoding ``v1*9 + v2*3 + v3`` used by the simulators.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .ternary import ONE, X, ZERO, value_from_char, value_to_char

__all__ = [
    "Triple",
    "STABLE0",
    "STABLE1",
    "RISE",
    "FALL",
    "UNKNOWN",
    "all_triples",
]


class Triple:
    """An immutable, interned waveform triple over {0, 1, x}.

    Use :meth:`Triple.of` or :meth:`Triple.parse` to obtain instances; the
    constructor is reserved for module initialization.
    """

    __slots__ = ("v1", "v2", "v3", "code")

    _interned: list["Triple"] = []

    def __init__(self, v1: int, v2: int, v3: int) -> None:
        if Triple._interned and len(Triple._interned) == 27:
            raise TypeError("Triple is interned; use Triple.of(v1, v2, v3)")
        object.__setattr__(self, "v1", v1)
        object.__setattr__(self, "v2", v2)
        object.__setattr__(self, "v3", v3)
        object.__setattr__(self, "code", v1 * 9 + v2 * 3 + v3)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Triple is immutable")

    @classmethod
    def of(cls, v1: int, v2: int, v3: int) -> "Triple":
        """Return the interned triple with components ``(v1, v2, v3)``."""
        if not (0 <= v1 <= 2 and 0 <= v2 <= 2 and 0 <= v3 <= 2):
            raise ValueError(f"invalid triple components: {(v1, v2, v3)}")
        return cls._interned[v1 * 9 + v2 * 3 + v3]

    @classmethod
    def from_code(cls, code: int) -> "Triple":
        """Return the interned triple with dense encoding ``code`` (0..26)."""
        return cls._interned[code]

    @classmethod
    def parse(cls, text: str) -> "Triple":
        """Parse a triple from a 3-character string such as ``"0x1"``.

        As a convenience, two-character strings are accepted as
        ``(first, x-if-changing, last)`` pairs: ``"01"`` parses as the rising
        transition ``0x1`` and ``"00"`` as stable ``000``.
        """
        if len(text) == 2:
            first = value_from_char(text[0])
            last = value_from_char(text[1])
            mid = first if first == last else X
            return cls.of(first, mid, last)
        if len(text) != 3:
            raise ValueError(f"triple string must have 2 or 3 characters: {text!r}")
        return cls.of(
            value_from_char(text[0]),
            value_from_char(text[1]),
            value_from_char(text[2]),
        )

    @classmethod
    def stable(cls, value: int) -> "Triple":
        """Return the stable triple ``value value value``."""
        if value not in (ZERO, ONE):
            raise ValueError(f"stable value must be 0 or 1, got {value!r}")
        return cls.of(value, value, value)

    @classmethod
    def transition(cls, initial: int, final: int) -> "Triple":
        """Return the triple for a line moving from ``initial`` to ``final``.

        Equal endpoints yield a stable triple; differing specified endpoints
        yield a transition with an ``x`` intermediate value.
        """
        if initial == final:
            if initial == X:
                return UNKNOWN
            return cls.of(initial, initial, initial)
        mid = X
        return cls.of(initial, mid, final)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def is_fully_specified(self) -> bool:
        """True when no component is ``x``."""
        return self.v1 != X and self.v2 != X and self.v3 != X

    def is_stable(self) -> bool:
        """True for ``000`` and ``111``."""
        return self.v1 == self.v2 == self.v3 and self.v1 != X

    def is_transition(self) -> bool:
        """True for the rising (``0x1``) and falling (``1x0``) triples."""
        return self is RISE or self is FALL

    def components(self) -> tuple[int, int, int]:
        """Return ``(v1, v2, v3)``."""
        return (self.v1, self.v2, self.v3)

    # ------------------------------------------------------------------
    # Requirement/value relations
    # ------------------------------------------------------------------

    def covers(self, requirement: "Triple") -> bool:
        """True when this *simulated* value satisfies ``requirement``.

        Every specified component of the requirement must be matched exactly
        by the simulated value; an ``x`` simulated component never satisfies
        a specified requirement component (it may hazard or is unknown).
        """
        for mine, req in (
            (self.v1, requirement.v1),
            (self.v2, requirement.v2),
            (self.v3, requirement.v3),
        ):
            if req != X and mine != req:
                return False
        return True

    def consistent_with(self, requirement: "Triple") -> bool:
        """True unless this value already *contradicts* ``requirement``.

        A contradiction needs both components specified and different.  An
        ``x`` simulated component may still be refined by later input
        assignments, so it does not contradict anything.
        """
        for mine, req in (
            (self.v1, requirement.v1),
            (self.v2, requirement.v2),
            (self.v3, requirement.v3),
        ):
            if req != X and mine != X and mine != req:
                return False
        return True

    def merge(self, other: "Triple") -> Optional["Triple"]:
        """Combine two *requirements* on the same line.

        Each component takes the specified value when exactly one side
        specifies it, the common value when both agree, and ``None`` is
        returned on any disagreement (the combined requirement is
        unsatisfiable).
        """
        out = []
        for mine, theirs in (
            (self.v1, other.v1),
            (self.v2, other.v2),
            (self.v3, other.v3),
        ):
            if mine == X:
                out.append(theirs)
            elif theirs == X or theirs == mine:
                out.append(mine)
            else:
                return None
        return Triple.of(out[0], out[1], out[2])

    def specified_count(self) -> int:
        """Number of components that are not ``x``."""
        return sum(1 for v in (self.v1, self.v2, self.v3) if v != X)

    def new_components_vs(self, other: "Triple") -> int:
        """Number of components specified here but not in ``other``.

        Used by the value-based compaction heuristic: the cost of adding a
        requirement is the number of *new* value constraints it introduces on
        a line that already carries requirement ``other``.
        """
        count = 0
        for mine, theirs in (
            (self.v1, other.v1),
            (self.v2, other.v2),
            (self.v3, other.v3),
        ):
            if mine != X and theirs == X:
                count += 1
        return count

    def inverted(self) -> "Triple":
        """Return the triple with each component logically inverted."""
        from .ternary import NOT_TABLE

        return Triple.of(
            int(NOT_TABLE[self.v1]), int(NOT_TABLE[self.v2]), int(NOT_TABLE[self.v3])
        )

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Triple({self})"

    def __str__(self) -> str:
        return "".join(value_to_char(v) for v in (self.v1, self.v2, self.v3))

    def __hash__(self) -> int:
        return self.code

    def __eq__(self, other: object) -> bool:
        return self is other

    def __reduce__(self):
        return (Triple.from_code, (self.code,))


def _intern_all() -> None:
    # Build in dense-code order so Triple.of can index directly.
    for code in range(27):
        v1, rem = divmod(code, 9)
        v2, v3 = divmod(rem, 3)
        Triple._interned.append(Triple(v1, v2, v3))


_intern_all()


def all_triples() -> Iterator[Triple]:
    """Iterate over all 27 triples in dense-code order."""
    return iter(Triple._interned)


#: Stable logic 0 on both patterns (``000``).
STABLE0: Triple = Triple.of(ZERO, ZERO, ZERO)
#: Stable logic 1 on both patterns (``111``).
STABLE1: Triple = Triple.of(ONE, ONE, ONE)
#: Rising transition (``0x1``).
RISE: Triple = Triple.of(ZERO, X, ONE)
#: Falling transition (``1x0``).
FALL: Triple = Triple.of(ONE, X, ZERO)
#: Completely unknown (``xxx``).
UNKNOWN: Triple = Triple.of(X, X, X)
