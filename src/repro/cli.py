"""Command line interface (``repro-pdf`` / ``python -m repro``).

Subcommands:

* ``circuits``  -- list the registry with structural statistics.
* ``stats``     -- structural statistics for one circuit (or .bench file).
* ``enumerate`` -- bounded longest-path enumeration and the length table.
* ``atpg``      -- basic test generation (Section 2) for P0.
* ``enrich``    -- test enrichment with P0 and P1 (Section 3).
* ``tables``    -- regenerate the paper's Tables 1-7.
* ``journal``   -- the persistent run journal: ``report`` renders
  per-sha trend tables, ``gate`` flags regressions against the
  trajectory, ``validate`` schema-checks the JSONL file.
* ``cache``     -- the persistent artifact store: ``ls`` lists entries,
  ``verify`` integrity-checks them (``--repair`` quarantines and drains
  corrupt ones), ``gc`` applies a size-bounded LRU eviction.
* ``serve``     -- the supervised job daemon over a file-based queue
  directory; ``submit``/``status``/``cancel``/``logs`` are its client
  verbs (see :mod:`repro.service`).

One :class:`repro.engine.Engine` backs each invocation, so every stage of a
subcommand (and every circuit of a ``tables`` sweep) shares the per-circuit
artifact caches; ``--stats`` prints its counters and timers to stderr.
``--artifact-cache DIR`` (or ``REPRO_ARTIFACT_CACHE``) additionally makes
enumerations and target sets persistent across invocations via
:mod:`repro.artifacts` -- warm runs load instead of recomputing; output is
identical either way.
``tables --journal PATH`` additionally appends a structured record of the
run (sha, machine, config, per-circuit runtimes, abort taxonomy, cache hit
rates, per-shard job records) to the journal -- after the results are
written, so journaling can never perturb the experiment output.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from .api import basic_atpg_circuit, enrich_circuit
from .artifacts import ArtifactStore
from .circuit import analyze, available_circuits, load_bench, validate
from .engine import CircuitSession, Engine
from .envflags import ARTIFACT_CACHE_ENV, artifact_cache_dir
from .experiments import (
    SCALES,
    TABLE3_CIRCUITS,
    TABLE6_CIRCUITS,
    run_all,
)
from .parallel import ParallelRunError, resolve_jobs
from .robustness import BUDGET_PROFILES, Budget, budget_from_profile

__all__ = ["main"]


def _jobs_arg(value: str) -> int:
    """argparse type for ``--jobs``: a clean usage error, not a traceback."""
    try:
        return resolve_jobs(int(value))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _nonnegative_int_arg(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}"
        ) from None
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {number}")
    return number


def _positive_float_arg(value: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {value!r}"
        ) from None
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return number


def _positive_int_arg(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {value!r}"
        ) from None
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {number}")
    return number


def _build_budget(args) -> Budget | None:
    """Combine ``--budget-profile``/``--deadline``/``--abort-limit``.

    The profile (when given) supplies the base caps; explicit flags
    override its fields.  Returns ``None`` when no budget flag was used,
    keeping the unbudgeted path byte-identical to historical behaviour.
    """
    profile = getattr(args, "budget_profile", None)
    overrides = {
        "deadline_seconds": getattr(args, "deadline", None),
        "abort_limit": getattr(args, "abort_limit", None),
        "node_limit": getattr(args, "node_limit", None),
        "attempt_limit": getattr(args, "attempt_limit", None),
    }
    if profile is None and all(value is None for value in overrides.values()):
        return None
    budget = budget_from_profile(profile) if profile else Budget()
    for name, value in overrides.items():
        if value is not None:
            setattr(budget, name, value)
    return budget


def _print_aborted(aborted_faults, limit: int = 20) -> None:
    """stderr report of budget-aborted faults (graceful-degradation)."""
    if not aborted_faults:
        return
    print(
        f"budget: {len(aborted_faults)} fault(s) aborted before a verdict",
        file=sys.stderr,
    )
    for entry in aborted_faults[:limit]:
        print(
            f"  P{entry.pool} {entry.fault}: {entry.reason} in {entry.phase}",
            file=sys.stderr,
        )
    if len(aborted_faults) > limit:
        print(f"  ... and {len(aborted_faults) - limit} more", file=sys.stderr)


def _session(name_or_path: str, engine: Engine) -> CircuitSession:
    """Resolve a registry name or a .bench file path to an engine session."""
    if name_or_path.endswith(".bench") or "/" in name_or_path:
        netlist, _ = load_bench(Path(name_or_path))
        return engine.session(netlist)
    return engine.session(name_or_path)


def _cmd_circuits(_args, engine: Engine) -> int:
    for name in available_circuits():
        print(analyze(engine.session(name).netlist))
    return 0


def _cmd_stats(args, engine: Engine) -> int:
    # Statistics describe the netlist as parsed (no PDF-ready transform),
    # so .bench files report their raw structure; no session needed.
    if args.circuit.endswith(".bench") or "/" in args.circuit:
        netlist, _ = load_bench(Path(args.circuit))
    else:
        netlist = engine.session(args.circuit).netlist
    print(analyze(netlist))
    issues = validate(netlist)
    for issue in issues:
        print(f"  {issue}")
    return 0 if not any(i.severity == "error" for i in issues) else 1


def _cmd_enumerate(args, engine: Engine) -> int:
    session = _session(args.circuit, engine)
    targets = session.target_sets(
        max_faults=args.max_faults,
        p0_min_faults=args.p0_min_faults,
        filter_implications=not args.no_implications,
    )
    print(targets.summary())
    print(targets.length_table.format(max_rows=args.rows))
    return 0


def _cmd_atpg(args, engine: Engine) -> int:
    engine.budget = _build_budget(args)
    session = _session(args.circuit, engine)
    result = basic_atpg_circuit(
        session.netlist,
        heuristic=args.heuristic,
        max_faults=args.max_faults,
        p0_min_faults=args.p0_min_faults,
        seed=args.seed,
        mode=args.mode,
        max_secondary_attempts=args.budget,
        session=session,
    )
    print(result.summary())
    _print_aborted(result.aborted_faults)
    if args.show_tests:
        for generated in result.tests:
            first, second = generated.test.patterns(session.netlist)
            print(f"  {first} -> {second}  (+{generated.num_detected} faults)")
    return 0


def _cmd_enrich(args, engine: Engine) -> int:
    engine.budget = _build_budget(args)
    session = _session(args.circuit, engine)
    report = enrich_circuit(
        session.netlist,
        max_faults=args.max_faults,
        p0_min_faults=args.p0_min_faults,
        seed=args.seed,
        mode=args.mode,
        max_secondary_attempts=args.budget,
        session=session,
    )
    print(report.summary())
    _print_aborted(report.aborted_faults)
    return 0


def _journal_tables_config(args, scale) -> dict:
    """The run parameters a ``tables`` journal entry records."""
    budget = _build_budget(args)
    return {
        "scale": scale.name,
        "max_faults": scale.max_faults,
        "p0_min_faults": scale.p0_min_faults,
        "quick": bool(args.quick),
        "jobs": args.jobs,
        "shards": args.shards,
        "shard_min_faults": args.shard_min_faults,
        "resume": bool(args.resume),
        "budget": budget.spec() if budget is not None else None,
        "artifact_cache": bool(
            getattr(args, "artifact_cache", None) or artifact_cache_dir()
        ),
    }


def _cmd_tables(args, engine: Engine) -> int:
    started = time.perf_counter()
    if args.from_json:
        from .experiments import ExperimentResults

        results = ExperimentResults.from_json(Path(args.from_json).read_text())
        if args.journal:
            print(
                "journal: --from-json renders cached results; nothing was "
                "measured, so no entry is appended",
                file=sys.stderr,
            )
    else:
        from .experiments import ExperimentScale, get_scale

        scale = get_scale(args.scale)
        if args.max_faults or args.p0_min_faults:
            scale = ExperimentScale(
                name=scale.name,
                max_faults=args.max_faults or scale.max_faults,
                p0_min_faults=args.p0_min_faults or scale.p0_min_faults,
                max_secondary_attempts=scale.max_secondary_attempts,
                seed=scale.seed,
            )
        circuits = TABLE3_CIRCUITS if not args.quick else TABLE3_CIRCUITS[:1]
        table6 = TABLE6_CIRCUITS if not args.quick else TABLE6_CIRCUITS[:1]
        if args.shards is not None:
            print(
                f"sharding: {args.shards} shard(s) per circuit "
                f"(min {args.shard_min_faults} fault(s)/shard, "
                f"jobs={args.jobs if args.jobs is not None else 'auto'}); "
                f"output is independent of the shard and worker counts",
                file=sys.stderr,
            )
        try:
            results = run_all(
                scale,
                circuits=circuits,
                table6_circuits=table6,
                engine=engine,
                jobs=args.jobs,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                max_retries=args.max_retries,
                timeout=args.timeout,
                budget=_build_budget(args),
                shards=args.shards,
                shard_min_faults=args.shard_min_faults,
            )
        except ParallelRunError as exc:
            print(f"error: {exc}", file=sys.stderr)
            for failure in exc.failures:
                print(f"  {failure.describe()}", file=sys.stderr)
            if args.checkpoint_dir:
                print(
                    f"completed work is checkpointed under "
                    f"{args.checkpoint_dir}; rerun with --resume to skip it",
                    file=sys.stderr,
                )
            return 1
        if args.shards is not None:
            shard_wall = engine.stats.maxima.get("shard.wall")
            if shard_wall is not None:
                print(
                    f"sharding: slowest shard {shard_wall:.2f}s "
                    f"(critical path of the sharded sweep)",
                    file=sys.stderr,
                )
    if args.out:
        Path(args.out).write_text(results.to_json())
        print(f"wrote {args.out}", file=sys.stderr)
    print(results.format_all())
    if args.journal and not args.from_json:
        from .journal import append_entry, tables_entry

        append_entry(
            args.journal,
            tables_entry(
                results,
                engine.stats,
                wall_seconds=time.perf_counter() - started,
                config=_journal_tables_config(args, scale),
                jobs=engine.job_records,
            ),
        )
        print(f"journal: appended tables entry to {args.journal}", file=sys.stderr)
    return 0


def _cache_store(args) -> ArtifactStore | None:
    """The artifact store a ``cache`` subcommand operates on, or ``None``
    (with a stderr message) when neither the flag nor the environment
    names a directory."""
    directory = getattr(args, "artifact_cache", None) or artifact_cache_dir()
    if not directory:
        print(
            f"error: no artifact cache directory; pass --artifact-cache DIR "
            f"or set {ARTIFACT_CACHE_ENV}",
            file=sys.stderr,
        )
        return None
    return ArtifactStore(directory)


def _format_bytes(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024
    return f"{int(size)}B"  # pragma: no cover - unreachable


def _cmd_cache_ls(args, _engine: Engine) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    entries = store.entries()
    for entry in entries:
        print(entry.describe(store.read_meta(entry)))
    print(
        f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
        f"{_format_bytes(store.total_bytes())} in {store.directory}"
    )
    return 0


def _cmd_cache_verify(args, _engine: Engine) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    intact, corrupt = store.verify(repair=args.repair)
    for entry in corrupt:
        print(f"corrupt: {entry.path.name}")
    print(
        f"{len(intact)} intact, {len(corrupt)} corrupt in {store.directory}"
    )
    if args.repair:
        print(
            f"repair: quarantined {len(corrupt)} entr"
            f"{'y' if len(corrupt) == 1 else 'ies'}, quarantine drained"
        )
        return 0
    return 1 if corrupt else 0


def _cmd_cache_gc(args, _engine: Engine) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    removed = store.gc(args.max_bytes)
    freed = sum(entry.size for entry in removed)
    for entry in removed:
        print(f"evicted: {entry.path.name} ({_format_bytes(entry.size)})")
    print(
        f"evicted {len(removed)} entr{'y' if len(removed) == 1 else 'ies'} "
        f"({_format_bytes(freed)}); {_format_bytes(store.total_bytes())} kept "
        f"in {store.directory}"
    )
    return 0


def _warn_journal_problems(read) -> None:
    for problem in read.problems:
        print(f"journal {read.path}: {problem.describe()}", file=sys.stderr)


def _cmd_journal_report(args, _engine: Engine) -> int:
    from .journal import read_journal, render_report

    read = read_journal(args.journal)
    _warn_journal_problems(read)
    text = render_report(
        read.entries,
        kinds=[args.kind] if args.kind else None,
        last=args.last,
    )
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print(text)
    return 0


def _cmd_journal_gate(args, _engine: Engine) -> int:
    from .journal import gate_trajectory, read_journal

    read = read_journal(args.journal)
    if not read.path.exists():
        print(f"journal {read.path} not found", file=sys.stderr)
        return 1
    _warn_journal_problems(read)
    report = gate_trajectory(
        read.entries,
        kinds=[args.kind] if args.kind else None,
        window=args.window,
        tolerance=args.tolerance,
        min_history=args.min_history,
        gate_all=args.all,
    )
    print(report.format())
    if not report.ok:
        print(
            f"journal gate: {len(report.regressions)} trajectory "
            f"regression(s) in {read.path}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_journal_validate(args, _engine: Engine) -> int:
    from .journal import read_journal

    read = read_journal(args.journal)
    if not read.path.exists():
        print(f"journal {read.path} not found", file=sys.stderr)
        return 1
    _warn_journal_problems(read)
    print(
        f"{read.path}: {len(read.entries)} valid entr"
        f"{'y' if len(read.entries) == 1 else 'ies'}, "
        f"{len(read.problems)} problem line(s)"
    )
    return 1 if read.problems else 0


# -- service verbs (repro serve / submit / status / cancel / logs) ------


def _service_queue(args):
    from .service import JobQueue

    return JobQueue(args.queue)


def _submit_params(args) -> dict:
    """The run configuration a submitted ``tables`` job carries."""
    budget = _build_budget(args)
    params = {
        "scale": args.scale,
        "quick": bool(args.quick),
        "jobs": args.jobs,
        "shards": args.shards,
        "shard_min_faults": args.shard_min_faults,
        "timeout": args.timeout,
        "budget": budget.spec() if budget is not None else None,
        "artifact_cache": getattr(args, "artifact_cache", None)
        or artifact_cache_dir()
        or None,
    }
    if args.max_faults:
        params["max_faults"] = args.max_faults
    if args.p0_min_faults:
        params["p0_min_faults"] = args.p0_min_faults
    if args.max_retries is not None:
        from .robustness import RetryPolicy

        params["retry"] = RetryPolicy(max_retries=args.max_retries).spec()
    return {key: value for key, value in params.items() if value is not None}


def _cmd_serve(args, _engine: Engine) -> int:
    from .service import QueueBusyError, Supervisor

    supervisor = Supervisor(
        args.queue,
        drain=args.drain,
        poll_interval=args.poll_interval,
        job_retries=args.job_retries,
        heartbeat_interval=args.heartbeat_interval,
        stale_after=args.stale_after,
        artifact_cache=getattr(args, "artifact_cache", None)
        or artifact_cache_dir()
        or None,
    )
    print(
        f"serve: queue {supervisor.queue.root} (pid {os.getpid()}, "
        f"{'drain' if args.drain else 'daemon'} mode)",
        file=sys.stderr,
    )
    try:
        return supervisor.serve()
    except QueueBusyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_submit(args, _engine: Engine) -> int:
    from .journal import append_entry, service_entry

    queue = _service_queue(args)
    job = queue.submit(_submit_params(args))
    try:
        append_entry(
            queue.journal_path,
            service_entry("queued", job.id, detail={"kind": job.kind}),
        )
    except OSError:
        pass
    print(job.id)
    print(f"submit: queued {job.id} in {args.queue}", file=sys.stderr)
    return 0


def _cmd_status(args, _engine: Engine) -> int:
    queue = _service_queue(args)
    if args.job:
        job = queue.find(args.job)
        if job is None:
            print(f"error: unknown job {args.job}", file=sys.stderr)
            return 1
        print(f"{job.id}  {job.status}  attempts={job.attempts}")
        if job.result:
            for key, value in sorted(job.result.items()):
                print(f"  {key}: {value}")
        return 0
    from .service import ServiceWAL

    wal = ServiceWAL(queue.wal_path)
    owner = wal.owner()
    state = wal.load() or {}
    print(
        f"daemon: {'pid ' + str(owner) if owner else 'not running'}"
        + (f" ({state.get('phase')})" if state else "")
    )
    jobs = queue.jobs()
    for job in jobs:
        print(f"{job.id}  {job.status}  attempts={job.attempts}")
    if not jobs:
        print("no jobs")
    return 0


def _cmd_cancel(args, _engine: Engine) -> int:
    queue = _service_queue(args)
    job = queue.cancel(args.job)
    if job is None:
        known = queue.find(args.job)
        if known is None:
            print(f"error: unknown job {args.job}", file=sys.stderr)
        else:
            print(
                f"error: job {args.job} is {known.status}; only pending "
                f"jobs can be canceled",
                file=sys.stderr,
            )
        return 1
    print(f"canceled {job.id}")
    return 0


def _cmd_logs(args, _engine: Engine) -> int:
    queue = _service_queue(args)
    path = queue.log_path(args.job)
    if not path.exists():
        print(f"error: no log for job {args.job}", file=sys.stderr)
        return 1
    sys.stdout.write(path.read_text("utf-8"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pdf",
        description="Path delay fault ATPG with test enrichment "
        "(Pomeranz & Reddy, DATE 2002).",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine cache/instrumentation counters to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("circuits", help="list available circuits").set_defaults(
        func=_cmd_circuits
    )

    p_stats = sub.add_parser("stats", help="structural statistics")
    p_stats.add_argument("circuit", help="registry name or .bench path")
    p_stats.set_defaults(func=_cmd_stats)

    def add_scale_args(p):
        p.add_argument("--max-faults", type=int, default=600, metavar="N_P")
        p.add_argument("--p0-min-faults", type=int, default=150, metavar="N_P0")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument(
            "--budget",
            type=int,
            default=None,
            help="secondary justification attempts per test per pool "
            "(default: unlimited, as in the paper)",
        )
        p.add_argument(
            "--mode",
            choices=("robust", "non_robust"),
            default="robust",
            help="sensitization conditions (non_robust is an extension)",
        )

    def add_budget_args(p):
        p.add_argument(
            "--deadline",
            type=_positive_float_arg,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget for the whole run; faults left without "
            "a verdict when it expires are reported as aborted and the "
            "run still exits 0",
        )
        p.add_argument(
            "--abort-limit",
            type=_positive_int_arg,
            default=None,
            metavar="N",
            help="stop generation once N faults were aborted by the budget "
            "(graceful stop, partial results are kept)",
        )
        p.add_argument(
            "--budget-profile",
            choices=sorted(BUDGET_PROFILES),
            default=None,
            help="named resource-budget preset (node/attempt/enumeration "
            "caps); the other budget flags override its fields",
        )
        p.add_argument(
            "--node-limit",
            type=_positive_int_arg,
            default=None,
            metavar="N",
            help="per-fault justification work cap (fixpoint rounds / "
            "branch-and-bound nodes); tripped faults are aborted",
        )
        p.add_argument(
            "--attempt-limit",
            type=_positive_int_arg,
            default=None,
            metavar="N",
            help="justification attempts per target fault",
        )

    def add_cache_arg(p):
        p.add_argument(
            "--artifact-cache",
            metavar="DIR",
            default=None,
            help="persistent artifact store directory: enumerations and "
            "target sets are loaded from DIR when present and published "
            "after computing (default: $" + ARTIFACT_CACHE_ENV + ", "
            "else disabled; output is identical with or without)",
        )

    p_enum = sub.add_parser("enumerate", help="longest-path enumeration")
    p_enum.add_argument("circuit")
    p_enum.add_argument("--max-faults", type=int, default=600)
    p_enum.add_argument("--p0-min-faults", type=int, default=150)
    p_enum.add_argument("--rows", type=int, default=20)
    p_enum.add_argument("--no-implications", action="store_true")
    add_cache_arg(p_enum)
    p_enum.set_defaults(func=_cmd_enumerate)

    p_atpg = sub.add_parser("atpg", help="basic test generation for P0")
    p_atpg.add_argument("circuit")
    p_atpg.add_argument(
        "--heuristic",
        choices=("uncomp", "arbit", "length", "values"),
        default="values",
    )
    add_scale_args(p_atpg)
    add_budget_args(p_atpg)
    add_cache_arg(p_atpg)
    p_atpg.add_argument("--show-tests", action="store_true")
    p_atpg.set_defaults(func=_cmd_atpg)

    p_enrich = sub.add_parser("enrich", help="test enrichment (P0 + P1)")
    p_enrich.add_argument("circuit")
    add_scale_args(p_enrich)
    add_budget_args(p_enrich)
    add_cache_arg(p_enrich)
    p_enrich.set_defaults(func=_cmd_enrich)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.add_argument("--scale", choices=sorted(SCALES), default="default")
    p_tables.add_argument("--out", help="also write results JSON here")
    p_tables.add_argument("--from-json", help="render from cached results JSON")
    p_tables.add_argument(
        "--quick", action="store_true", help="only one circuit (smoke run)"
    )
    p_tables.add_argument(
        "--max-faults", type=int, default=None, help="override the scale's N_P"
    )
    p_tables.add_argument(
        "--p0-min-faults", type=int, default=None, help="override the scale's N_P0"
    )
    p_tables.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        metavar="N",
        help="worker processes for the per-circuit sweep "
        "(default: all CPUs; 1 = in-process serial path)",
    )
    p_tables.add_argument(
        "--shards",
        type=_positive_int_arg,
        default=None,
        metavar="K",
        help="split each circuit's primary-fault universe into K pool "
        "tasks (deterministic merge; output is independent of K and "
        "--jobs, with --shards 1 --jobs 1 as the serial reference). "
        "Default: no sharding (legacy per-circuit semantics)",
    )
    p_tables.add_argument(
        "--shard-min-faults",
        type=_positive_int_arg,
        default=1,
        metavar="N",
        help="minimum primary faults per shard; circuits with fewer than "
        "K*N primaries use fewer shards (default 1)",
    )
    p_tables.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist each result to DIR as it completes "
        "(<circuit>.json, or <circuit>.shardK.json with --shards; "
        "cleared first unless --resume)",
    )
    p_tables.add_argument(
        "--resume",
        action="store_true",
        help="skip circuits already checkpointed under --checkpoint-dir "
        "(output is identical to an uninterrupted run)",
    )
    p_tables.add_argument(
        "--max-retries",
        type=_nonnegative_int_arg,
        default=1,
        metavar="N",
        help="extra attempts per circuit after a worker failure (default 1)",
    )
    p_tables.add_argument(
        "--timeout",
        type=_positive_float_arg,
        default=None,
        metavar="SECONDS",
        help="per-circuit wall-clock budget on the pool path "
        "(default: unlimited)",
    )
    p_tables.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append a structured run record (sha, machine, config, "
        "per-circuit runtimes, abort taxonomy, cache hit rates) to this "
        "JSONL run journal after the run; experiment output is "
        "unaffected",
    )
    add_budget_args(p_tables)
    add_cache_arg(p_tables)
    p_tables.set_defaults(func=_cmd_tables)

    p_cache = sub.add_parser(
        "cache", help="persistent artifact store: ls / verify / gc"
    )
    csub = p_cache.add_subparsers(dest="cache_command", required=True)

    p_cls = csub.add_parser("ls", help="list stored artifacts (newest first)")
    add_cache_arg(p_cls)
    p_cls.set_defaults(func=_cmd_cache_ls)

    p_cverify = csub.add_parser(
        "verify",
        help="decode and integrity-check every entry (exit 1 on corruption)",
    )
    add_cache_arg(p_cverify)
    p_cverify.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt entries and drain the quarantine "
        "directory (exit 0: the store is healed, intact entries kept)",
    )
    p_cverify.set_defaults(func=_cmd_cache_verify)

    p_cgc = csub.add_parser(
        "gc",
        help="evict least-recently-used entries until the store fits the "
        "size bound (loads refresh an entry's mtime)",
    )
    add_cache_arg(p_cgc)
    p_cgc.add_argument(
        "--max-bytes",
        type=_nonnegative_int_arg,
        required=True,
        metavar="N",
        help="keep at most N bytes of newest-used entries (0 clears all)",
    )
    p_cgc.set_defaults(func=_cmd_cache_gc)

    p_journal = sub.add_parser(
        "journal", help="persistent run journal: report / gate / validate"
    )
    jsub = p_journal.add_subparsers(dest="journal_command", required=True)

    def add_journal_path(p):
        p.add_argument(
            "--journal",
            metavar="PATH",
            default="benchmarks/journal.jsonl",
            help="JSONL run journal (default: benchmarks/journal.jsonl)",
        )

    def add_journal_args(p):
        add_journal_path(p)
        p.add_argument(
            "--kind",
            choices=("tables", "bench", "service"),
            default=None,
            help="restrict to one entry kind (default: all kinds)",
        )

    p_jreport = jsub.add_parser(
        "report", help="render per-sha trend tables of the recorded metrics"
    )
    add_journal_args(p_jreport)
    p_jreport.add_argument(
        "--last",
        type=_positive_int_arg,
        default=8,
        metavar="N",
        help="newest runs shown per kind (default 8)",
    )
    p_jreport.add_argument("--out", metavar="PATH", help="also write the report here")
    p_jreport.set_defaults(func=_cmd_journal_report)

    p_jgate = jsub.add_parser(
        "gate",
        help="fail when a metric regressed against its trajectory "
        "(median of the last N recorded values, tolerance band)",
    )
    add_journal_args(p_jgate)
    p_jgate.add_argument(
        "--window",
        type=_positive_int_arg,
        default=5,
        metavar="N",
        help="history window per metric: median of the last N prior "
        "values is the reference (default 5)",
    )
    p_jgate.add_argument(
        "--tolerance",
        type=_positive_float_arg,
        default=0.25,
        metavar="T",
        help="allowed slowdown over the reference median before failing "
        "(default 0.25 = 25%%)",
    )
    p_jgate.add_argument(
        "--min-history",
        type=_positive_int_arg,
        default=1,
        metavar="N",
        help="prior values a metric needs before it is gated; younger "
        "series are reported as skipped (default 1)",
    )
    p_jgate.add_argument(
        "--all",
        action="store_true",
        help="gate every entry against its own past instead of only the "
        "newest one (validates a whole committed trajectory)",
    )
    p_jgate.set_defaults(func=_cmd_journal_gate)

    p_jvalidate = jsub.add_parser(
        "validate", help="schema-check every line of the journal file"
    )
    add_journal_path(p_jvalidate)
    p_jvalidate.set_defaults(func=_cmd_journal_validate)

    # -- service verbs --------------------------------------------------

    def add_queue_arg(p):
        p.add_argument(
            "--queue",
            metavar="DIR",
            required=True,
            help="queue directory (the whole service state: job files, "
            "WAL, checkpoints, outputs, logs, journal)",
        )

    p_serve = sub.add_parser(
        "serve",
        help="run the supervised job daemon over a file-based queue",
    )
    add_queue_arg(p_serve)
    p_serve.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue is empty instead of polling forever "
        "(the CI mode)",
    )
    p_serve.add_argument(
        "--poll-interval",
        type=_positive_float_arg,
        default=0.5,
        metavar="SECONDS",
        help="idle sleep between queue polls (default 0.5)",
    )
    p_serve.add_argument(
        "--job-retries",
        type=_nonnegative_int_arg,
        default=1,
        metavar="N",
        help="whole-job re-runs after the parallel runner exhausted its "
        "own retries; each resumes from the job's checkpoints "
        "(default 1)",
    )
    p_serve.add_argument(
        "--heartbeat-interval",
        type=_positive_float_arg,
        default=1.0,
        metavar="SECONDS",
        help="how often pool workers prove liveness via per-shard "
        "heartbeat files (default 1.0)",
    )
    p_serve.add_argument(
        "--stale-after",
        type=_positive_float_arg,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat silence after which a started shard counts as "
        "stuck and is killed and retried (default 30.0)",
    )
    add_cache_arg(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="enqueue a tables sweep for the serve daemon"
    )
    add_queue_arg(p_submit)
    p_submit.add_argument("--scale", choices=sorted(SCALES), default="default")
    p_submit.add_argument(
        "--quick", action="store_true", help="only one circuit (smoke run)"
    )
    p_submit.add_argument(
        "--max-faults", type=int, default=None, help="override the scale's N_P"
    )
    p_submit.add_argument(
        "--p0-min-faults", type=int, default=None, help="override the scale's N_P0"
    )
    p_submit.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N",
        help="worker processes for the sweep (default: all CPUs)",
    )
    p_submit.add_argument(
        "--shards", type=_positive_int_arg, default=None, metavar="K",
        help="fault shards per circuit (shard-granular checkpoints make "
        "crash recovery finer-grained)",
    )
    p_submit.add_argument(
        "--shard-min-faults", type=_positive_int_arg, default=1, metavar="N",
        help="minimum primary faults per shard (default 1)",
    )
    p_submit.add_argument(
        "--timeout", type=_positive_float_arg, default=None, metavar="SECONDS",
        help="per-shard wall-clock budget inside the runner",
    )
    p_submit.add_argument(
        "--max-retries", type=_nonnegative_int_arg, default=None, metavar="N",
        help="runner-level retry budget per shard (default: the runner's "
        "own default with exponential backoff)",
    )
    add_budget_args(p_submit)
    add_cache_arg(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="daemon liveness and per-job states of a queue"
    )
    add_queue_arg(p_status)
    p_status.add_argument("job", nargs="?", default=None, help="one job id")
    p_status.set_defaults(func=_cmd_status)

    p_cancel = sub.add_parser("cancel", help="withdraw a pending job")
    add_queue_arg(p_cancel)
    p_cancel.add_argument("job", help="job id to cancel")
    p_cancel.set_defaults(func=_cmd_cancel)

    p_logs = sub.add_parser("logs", help="print one job's supervision log")
    add_queue_arg(p_logs)
    p_logs.add_argument("job", help="job id")
    p_logs.set_defaults(func=_cmd_logs)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not getattr(args, "checkpoint_dir", None):
        parser.error("--resume requires --checkpoint-dir")
    # --artifact-cache wins over REPRO_ARTIFACT_CACHE; with neither set,
    # Engine() leaves persistent caching off (the seed behaviour).
    cache_dir = getattr(args, "artifact_cache", None)
    engine = Engine(artifacts=ArtifactStore(cache_dir) if cache_dir else None)
    code = args.func(args, engine)
    if args.stats:
        print(engine.stats.format(), file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
