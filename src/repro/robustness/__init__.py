"""Resource budgets, graceful degradation, and the typed error hierarchy.

One :class:`Budget` object expresses every resource cap (wall-clock
deadline, justification node/attempt limits, path-enumeration cap,
aborted-fault limit) and is threaded through the enumeration, ATPG,
engine-session and parallel layers.  Tripped caps surface as structured
:class:`BudgetExceeded` errors at checked seams; per-fault trips are
recorded as :class:`AbortedFault` entries (the ``aborted`` leg of the
detected / untestable / aborted / undetected taxonomy) and the run keeps
going, so a budgeted run always terminates with a usable, honestly
reported test set.
"""

from .budget import (
    ABORT_LIMIT,
    ABORT_REASONS,
    ATTEMPT_LIMIT,
    BUDGET_PROFILES,
    DEADLINE,
    ENUMERATION_CAP,
    FAULT_STATUSES,
    NODE_LIMIT,
    AbortedFault,
    Budget,
    budget_from_profile,
)
from .errors import BudgetExceeded, InternalInvariantError, ReproError
from .retry import RetryPolicy

__all__ = [
    "Budget",
    "RetryPolicy",
    "AbortedFault",
    "BudgetExceeded",
    "InternalInvariantError",
    "ReproError",
    "ABORT_REASONS",
    "FAULT_STATUSES",
    "DEADLINE",
    "NODE_LIMIT",
    "ATTEMPT_LIMIT",
    "ENUMERATION_CAP",
    "ABORT_LIMIT",
    "BUDGET_PROFILES",
    "budget_from_profile",
]
