"""Retry policy with exponential backoff, deterministic jitter and a cap.

PR 3 gave the parallel runner retries, but they resubmit *immediately*:
a deterministically failing shard burns through its attempts in a hot
loop, and a transiently overloaded machine gets hit again at the worst
possible moment.  :class:`RetryPolicy` replaces that with the standard
supervised-service discipline:

* **exponential backoff** -- the ``k``-th retry waits
  ``base_delay * multiplier**(k-1)`` seconds;
* **cap** -- the wait never exceeds ``max_delay``, so a deep retry
  budget cannot stall a sweep for hours;
* **jitter** -- the wait is perturbed by up to ``+-jitter`` (fraction),
  decorrelating retries of different jobs so they do not thundering-herd
  the pool.  The perturbation is *deterministic* -- derived by hashing
  the job key and attempt number -- so tests (and reruns of the same
  failing job) see reproducible waits without any RNG state;
* **retry budget** -- ``max_retries`` extra attempts after the first,
  after which the failure is final and handed to the caller's
  degradation path.

The policy is a frozen value object: it travels through the parallel
runner, the service supervisor and job records without aliasing issues,
and ``spec()``/``from_spec()`` round-trip it through JSON envelopes
(service queue job files, the supervisor's write-ahead state).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


def _jitter_fraction(key: str, attempt: int) -> float:
    """Deterministic pseudo-random fraction in ``[-1, 1)`` per (key, attempt)."""
    digest = hashlib.blake2b(
        f"{key}#{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64) * 2.0 - 1.0


@dataclass(frozen=True)
class RetryPolicy:
    """How failed work is retried: budget, backoff curve, jitter.

    ``max_retries`` is the retry *budget*: extra attempts after the
    first (0 = never retry).  ``delay(attempt)`` is the wait before
    retry number ``attempt`` (1-based); attempt 0 -- the first try --
    never waits.
    """

    max_retries: int = 1
    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @classmethod
    def immediate(cls, max_retries: int = 1) -> "RetryPolicy":
        """The pre-backoff (PR 3) semantics: retry at once, no waits.

        Kept for tests and for callers that retry work whose failure
        mode is known to be attempt-count-keyed rather than load-keyed
        (e.g. chaos injection)."""
        return cls(max_retries=max_retries, base_delay=0.0, max_delay=0.0, jitter=0.0)

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry ``attempt`` (1-based) of ``key``.

        Exponential in ``attempt``, capped at :attr:`max_delay`, then
        jittered by the deterministic per-``(key, attempt)`` fraction.
        ``attempt <= 0`` (the first try) waits nothing.
        """
        if attempt <= 0 or self.base_delay <= 0:
            return 0.0
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * _jitter_fraction(key, attempt)
        return max(0.0, min(raw, self.max_delay))

    def total_delay(self, key: str = "") -> float:
        """Upper-bound wall clock spent waiting if every retry is used."""
        return sum(
            self.delay(attempt, key) for attempt in range(1, self.max_retries + 1)
        )

    def spec(self) -> dict:
        """JSON-ready parameter envelope (see :meth:`from_spec`)."""
        return {
            "max_retries": self.max_retries,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
        }

    @classmethod
    def from_spec(cls, payload: dict) -> "RetryPolicy":
        """Rebuild a policy from :meth:`spec` (unknown keys ignored)."""
        fields = ("max_retries", "base_delay", "multiplier", "max_delay", "jitter")
        return cls(**{name: payload[name] for name in fields if name in payload})
