"""Resource budgets and the fault-status taxonomy.

Real ATPG flows never assume every fault either gets a test or is proven
untestable: on large circuits justification and path enumeration can blow
past any practical limit, so production tools classify every fault as
*detected*, *untestable* or *aborted* and still emit a usable test set.
This module is the single place that expresses those limits:

* :class:`Budget` -- one object holding every cap (wall-clock deadline,
  justification node/attempt limits, path-enumeration expansion cap,
  aborted-fault limit), threaded through the enumeration, justification,
  generation, engine-session and parallel layers.  An unset cap means
  unlimited; the default ``Budget()`` is a no-op and the budget-free code
  paths are byte-identical to the pre-budget behaviour.
* :class:`~repro.robustness.errors.BudgetExceeded` -- the structured
  signal a tripped cap raises at a checked seam.  Per-fault trips are
  caught by the generator and recorded as :class:`AbortedFault`; run-level
  trips (deadline, abort limit) stop targeting new faults but the run
  still finishes and reports what it has.
* the fault-status taxonomy (:data:`FAULT_STATUSES`) used by result
  containers and table formatters to report per-fault outcomes
  explicitly, following the n-detection analysis literature: coverage
  claims only mean something when the aborted faults are listed.

Determinism: every cap except the wall-clock deadline is a pure function
of the work performed, so ``same seed + same budget`` implies an identical
aborted-fault set and identical ``canonical_json`` output.  Deadline trips
depend on the host's speed and are the one intentionally nondeterministic
reason (that is what a deadline *is*); tests that need reproducible aborts
use the node/attempt/enumeration/abort caps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from .errors import BudgetExceeded

__all__ = [
    "Budget",
    "AbortedFault",
    "ABORT_REASONS",
    "FAULT_STATUSES",
    "DEADLINE",
    "NODE_LIMIT",
    "ATTEMPT_LIMIT",
    "ENUMERATION_CAP",
    "ABORT_LIMIT",
    "BUDGET_PROFILES",
    "budget_from_profile",
]

# -- abort reasons (machine-readable, stable: serialized in results) ------

DEADLINE = "deadline"
NODE_LIMIT = "node_limit"
ATTEMPT_LIMIT = "attempt_limit"
ENUMERATION_CAP = "enumeration_cap"
ABORT_LIMIT = "abort_limit"

#: Every reason an :class:`AbortedFault` / ``budget_exhausted`` field can carry.
ABORT_REASONS = (DEADLINE, NODE_LIMIT, ATTEMPT_LIMIT, ENUMERATION_CAP, ABORT_LIMIT)

#: Per-fault outcome taxonomy reported by result containers:
#: ``detected`` (a test covers it), ``untestable`` (proven unsensitizable
#: by the type-1/type-2 filters), ``aborted`` (a budget tripped before a
#: verdict) and ``undetected`` (considered, no test found, no proof).
FAULT_STATUSES = ("detected", "untestable", "aborted", "undetected")

#: Spec fields of a :class:`Budget` (runtime clock state excluded).
_SPEC_FIELDS = (
    "deadline_seconds",
    "node_limit",
    "attempt_limit",
    "enumeration_cap",
    "abort_limit",
)


@dataclass
class Budget:
    """Resource caps for one run, plus the running wall clock.

    Attributes
    ----------
    deadline_seconds:
        Wall-clock budget for the whole run.  The clock starts at
        :meth:`start`; expiry degrades the run (faults not yet decided
        are recorded as aborted) instead of killing it.
    node_limit:
        Per-justification work cap: fixpoint rounds for the simulation
        engine, search nodes for branch-and-bound.  Replaces the old
        ad-hoc ``bnb_node_limit``-style knobs when set.
    attempt_limit:
        Justification attempts per target fault (caps
        ``AtpgConfig.retry_primaries`` and the per-candidate secondary
        attempts).
    enumeration_cap:
        Path-enumeration expansion cap.  Unlike the legacy
        ``max_expansions`` safety valve (which raises
        ``EnumerationOverflow``), hitting this cap keeps the complete
        paths found so far.
    abort_limit:
        Maximum number of aborted faults before the run stops targeting
        new primaries (the classic "too many aborts, give up" policy).

    The runtime clock fields are process-local; a budget shipped to a
    worker process carries its remaining allowance via :meth:`forked`.
    """

    deadline_seconds: float | None = None
    node_limit: int | None = None
    attempt_limit: int | None = None
    enumeration_cap: int | None = None
    abort_limit: int | None = None
    # Runtime state (not part of the spec / equality is fine to include:
    # two budgets compare equal only when in the same clock state).
    _deadline_at: float | None = field(default=None, repr=False)
    _cancelled: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        for name in ("node_limit", "attempt_limit", "enumeration_cap", "abort_limit"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    # -- spec ----------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when no cap is set (the budget can never trip)."""
        return all(getattr(self, name) is None for name in _SPEC_FIELDS)

    def spec(self) -> dict:
        """The caps as a plain dict (stable; excludes clock state).

        Used as the checkpoint parameter envelope: two runs with equal
        specs produce comparable results (up to deadline nondeterminism).
        """
        return {name: getattr(self, name) for name in _SPEC_FIELDS}

    @classmethod
    def from_spec(cls, payload: dict) -> "Budget":
        """Rebuild a (not yet started) budget from :meth:`spec`."""
        return cls(**{name: payload.get(name) for name in _SPEC_FIELDS})

    # -- clock ---------------------------------------------------------

    def start(self) -> "Budget":
        """Start the deadline clock (idempotent); returns ``self``."""
        if self.deadline_seconds is not None and self._deadline_at is None:
            self._deadline_at = time.monotonic() + self.deadline_seconds
        return self

    def cancel(self) -> None:
        """Cooperatively expire the budget now (e.g. from a SIGTERM
        handler); every subsequent deadline check trips."""
        self._cancelled = True

    def remaining_seconds(self) -> float | None:
        """Seconds left on the deadline (``None`` = no deadline)."""
        if self._cancelled:
            return 0.0
        if self._deadline_at is not None:
            return max(0.0, self._deadline_at - time.monotonic())
        return self.deadline_seconds

    def deadline_expired(self) -> bool:
        """True once the started deadline has passed (or on cancel)."""
        if self._cancelled:
            return True
        return self._deadline_at is not None and time.monotonic() > self._deadline_at

    def check_deadline(self, phase: str, **progress) -> None:
        """Raise :class:`BudgetExceeded` when the deadline has expired."""
        if self.deadline_expired():
            raise BudgetExceeded(DEADLINE, phase, progress=progress)

    # -- derived budgets -----------------------------------------------

    def forked(self) -> "Budget":
        """A fresh (unstarted) budget carrying the *remaining* allowance.

        Used when handing work to another process: monotonic clocks are
        not portable across processes, so the child re-anchors the
        remaining wall-clock budget on its own clock at :meth:`start`.
        """
        remaining = self.remaining_seconds()
        if remaining is not None and remaining <= 0:
            remaining = 1e-6  # already expired: trip on the child's first check
        return replace(
            self, deadline_seconds=remaining, _deadline_at=None, _cancelled=False
        )

    def split(self, n: int) -> "list[Budget]":
        """``n`` fresh shard budgets whose run-level caps sum to this one.

        Used by intra-circuit fault sharding: every shard of a circuit
        gets one share, so the shards *together* respect the caps the
        user configured for the circuit:

        * ``deadline_seconds`` -- the remaining allowance divided by
          ``n`` (the shares sum to the global deadline when shards run
          serially; with parallel workers the combined wall-clock cap is
          conservative, never looser);
        * ``abort_limit`` -- distributed as evenly as possible with the
          remainder going to the lowest shard indices, so the shares sum
          to the global cap.  Each share is at least 1 (an ``abort_limit``
          of 0 is not expressible), so splitting further than the cap
          (``n`` > ``abort_limit``) is the one case where the combined
          cap exceeds the configured one -- the parent cap is then
          re-applied when the shards are merged
          (:func:`repro.parallel.sharding.merge_shard_results` counts
          aborts across shards against it in canonical pool order);
        * per-fault caps (``node_limit``, ``attempt_limit``,
          ``enumeration_cap``) are copied unchanged -- they bound each
          fault individually, which keeps a fault's verdict independent
          of the shard geometry.

        Like :meth:`forked`, the shares are unstarted and carry the
        *remaining* wall-clock allowance, ready to ship to workers.
        """
        if n < 1:
            raise ValueError(f"split count must be >= 1, got {n}")
        base = self.forked()
        shares: list[Budget] = []
        quota, remainder = (
            divmod(base.abort_limit, n) if base.abort_limit is not None else (0, 0)
        )
        for index in range(n):
            share = replace(base)
            if base.deadline_seconds is not None:
                share.deadline_seconds = max(base.deadline_seconds / n, 1e-6)
            if base.abort_limit is not None:
                share.abort_limit = max(1, quota + (1 if index < remainder else 0))
            shares.append(share)
        return shares

    def limited(self, seconds: float | None) -> "Budget":
        """A copy whose deadline is tightened to at most ``seconds``.

        The per-job ``--timeout`` of the parallel runner is expressed this
        way: the worker's effective budget is the run budget limited to
        the job timeout.  ``None`` leaves the deadline unchanged.
        """
        if seconds is None:
            return self
        current = self.remaining_seconds()
        tightened = seconds if current is None else min(current, seconds)
        if tightened <= 0:
            tightened = 1e-6
        return replace(
            self, deadline_seconds=tightened, _deadline_at=None, _cancelled=False
        )

    # -- caps ----------------------------------------------------------

    def check_nodes(self, nodes: int, phase: str, **progress) -> None:
        """Raise when ``nodes`` work units exceed :attr:`node_limit`."""
        if self.node_limit is not None and nodes > self.node_limit:
            raise BudgetExceeded(NODE_LIMIT, phase, progress={"nodes": nodes, **progress})

    def attempts_allowed(self, requested: int) -> int:
        """Cap a per-fault attempt count at :attr:`attempt_limit`."""
        if self.attempt_limit is None:
            return requested
        return min(requested, self.attempt_limit)

    def abort_limit_reached(self, aborted_count: int) -> bool:
        """True once ``aborted_count`` faults hit :attr:`abort_limit`."""
        return self.abort_limit is not None and aborted_count >= self.abort_limit


@dataclass(frozen=True)
class AbortedFault:
    """One fault the run gave up on, with the machine-readable why.

    ``fault`` is the stable human-readable identity (path node names plus
    transition), ``pool`` the target-pool index it came from (0 = P0),
    ``reason`` one of :data:`ABORT_REASONS` and ``phase`` the pipeline
    stage that tripped.
    """

    fault: str
    pool: int
    reason: str
    phase: str = "justify"

    def as_row(self) -> list:
        """JSON-ready ``[fault, pool, reason, phase]`` row."""
        return [self.fault, self.pool, self.reason, self.phase]

    @classmethod
    def from_row(cls, row) -> "AbortedFault":
        fault, pool, reason, phase = row
        return cls(fault=fault, pool=int(pool), reason=reason, phase=phase)


#: Named cap presets for ``--budget-profile``.  Deliberately deadline-free
#: so profile-driven runs stay deterministic; combine with ``--deadline``
#: for a wall-clock ceiling on top.
BUDGET_PROFILES: dict[str, dict] = {
    "lenient": {
        "node_limit": 200_000,
        "attempt_limit": 8,
        "enumeration_cap": 2_000_000,
        "abort_limit": 10_000,
    },
    "strict": {
        "node_limit": 20_000,
        "attempt_limit": 2,
        "enumeration_cap": 200_000,
        "abort_limit": 500,
    },
}


def budget_from_profile(name: str) -> Budget:
    """A fresh :class:`Budget` for a profile name (see ``--budget-profile``)."""
    try:
        caps = BUDGET_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown budget profile {name!r}; presets: {sorted(BUDGET_PROFILES)}"
        ) from None
    return Budget(**caps)
