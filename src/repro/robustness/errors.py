"""Typed exception hierarchy for the resource-budget subsystem.

Before this module existed the engine signalled resource exhaustion and
internal bugs through ad-hoc exception types scattered across layers:
``SearchExhausted`` (a bare ``RuntimeError``) from the branch-and-bound
justifier, ``EnumerationOverflow`` from the path enumerator, and bare
``AssertionError`` for violated engine invariants.  Callers could not tell
"the circuit is too hard for this budget" (expected, degrade gracefully)
from "the engine is broken" (a bug, fail loudly).

The hierarchy fixes that:

``ReproError``
    Root of every typed error the engine raises deliberately.

``BudgetExceeded``
    A resource budget tripped.  Carries the machine-readable ``reason``
    (one of :data:`repro.robustness.budget.ABORT_REASONS`), the ``phase``
    that was executing (``justify``, ``bnb``, ``enumerate``, ``generate``,
    ...) and a ``progress`` dict of work counters at the moment of the
    trip, so the seam that catches it can record an aborted fault with
    full context.  Subclasses ``RuntimeError`` so legacy ``except
    RuntimeError`` call sites keep working.

``InternalInvariantError``
    A *violated engine invariant* -- always a bug, never a budget issue.
    Subclasses ``AssertionError`` so existing harnesses that treat
    assertion failures as hard errors keep doing so, while new callers can
    discriminate it from :class:`BudgetExceeded`.
"""

from __future__ import annotations

__all__ = ["ReproError", "BudgetExceeded", "InternalInvariantError"]


class ReproError(Exception):
    """Root of the engine's typed exception hierarchy."""


class InternalInvariantError(ReproError, AssertionError):
    """An engine invariant was violated: this is a bug, not exhaustion.

    Raised instead of a bare ``AssertionError`` (e.g. the justifier's
    monotonicity check) so callers draining a budget can distinguish
    "out of resources, record the fault as aborted" from "the engine
    miscomputed, abort the run and report the defect".
    """


class BudgetExceeded(ReproError, RuntimeError):
    """A resource budget tripped during ``phase``.

    Parameters
    ----------
    reason:
        Machine-readable cause; one of
        :data:`repro.robustness.budget.ABORT_REASONS`
        (``deadline``, ``node_limit``, ``attempt_limit``,
        ``enumeration_cap``, ``abort_limit``).
    phase:
        The pipeline stage that was executing when the budget tripped
        (``justify``, ``bnb``, ``enumerate``, ``target_sets``,
        ``generate``, ...).
    message:
        Optional human-readable detail; a default is derived from
        ``reason`` when omitted.
    progress:
        Work counters at the moment of the trip (rounds simulated, nodes
        expanded, ...), preserved for diagnostics on the aborted-fault
        record.
    """

    def __init__(
        self,
        reason: str,
        phase: str,
        message: str = "",
        progress: dict | None = None,
    ) -> None:
        self.reason = reason
        self.phase = phase
        self.progress = dict(progress) if progress else {}
        detail = message or f"{reason} budget exhausted"
        if self.progress:
            extras = ", ".join(f"{k}={v}" for k, v in sorted(self.progress.items()))
            detail = f"{detail} ({extras})"
        super().__init__(f"[{phase}] {detail}")
