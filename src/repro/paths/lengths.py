"""Path-length statistics over a fault population (Table 2 of the paper).

Given the enumerated fault set ``P``, the paper tabulates, for the distinct
path lengths ``L_0 > L_1 > ...``:

* ``n_p(L_i)`` -- the number of faults on paths of length exactly ``L_i``;
* ``N_p(L_i)`` -- the cumulative count ``sum(n_p(L_j) for L_j >= L_i)``.

The cumulative column drives the selection of the first target set ``P0``
(the smallest ``i_0`` with ``N_p(L_{i_0}) >= N_P0``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..faults.fault import PathDelayFault
from .enumerate import FAULTS_PER_PATH

__all__ = ["LengthRow", "LengthTable", "length_table_for_faults", "length_table_for_paths"]


@dataclass(frozen=True)
class LengthRow:
    """One row of the length table."""

    index: int  # i
    length: int  # L_i
    faults: int  # n_p(L_i)
    cumulative: int  # N_p(L_i)


class LengthTable:
    """Length histogram of a fault population, longest length first."""

    def __init__(self, rows: Sequence[LengthRow]) -> None:
        self.rows = tuple(rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index: int) -> LengthRow:
        return self.rows[index]

    @property
    def total_faults(self) -> int:
        """Total number of faults covered by the table."""
        return self.rows[-1].cumulative if self.rows else 0

    def select_index(self, min_faults: int) -> int:
        """Smallest ``i_0`` with ``N_p(L_{i_0}) >= min_faults``.

        This is the paper's ``P0`` selection rule.  When even the full
        population is smaller than ``min_faults`` the last row is selected
        (``P0 = P``).
        """
        for row in self.rows:
            if row.cumulative >= min_faults:
                return row.index
        return max(len(self.rows) - 1, 0)

    def length_at(self, index: int) -> int:
        """``L_i`` for a given row index."""
        return self.rows[index].length

    def format(self, max_rows: int | None = 20) -> str:
        """Render the table in the layout of the paper's Table 2."""
        lines = [f"{'i':>4} {'L_i':>6} {'N_p(L_i)':>10}"]
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        for row in rows:
            lines.append(f"{row.index:>4} {row.length:>6} {row.cumulative:>10}")
        return "\n".join(lines)


def _table_from_counter(counts: Counter[int]) -> LengthTable:
    rows: list[LengthRow] = []
    cumulative = 0
    for i, length in enumerate(sorted(counts, reverse=True)):
        cumulative += counts[length]
        rows.append(
            LengthRow(index=i, length=length, faults=counts[length], cumulative=cumulative)
        )
    return LengthTable(rows)


def length_table_for_faults(faults: Iterable[PathDelayFault]) -> LengthTable:
    """Build the length table for an explicit fault population."""
    counts: Counter[int] = Counter()
    for fault in faults:
        counts[fault.length] += 1
    return _table_from_counter(counts)


def length_table_for_paths(paths: Iterable) -> LengthTable:
    """Build the length table for a path population (two faults per path)."""
    counts: Counter[int] = Counter()
    for path in paths:
        counts[path.length] += FAULTS_PER_PATH
    return _table_from_counter(counts)
