"""Bounded enumeration of the longest circuit paths (Section 3.1).

Paths are enumerated from the primary inputs towards the primary outputs.
At any point the working set ``P`` holds *complete* paths (ending at a
primary output) and *partial* paths.  Whenever the number of faults in ``P``
reaches the cap ``N_P`` (every path carries two faults), faults associated
with the least promising paths are removed.  Two variants are implemented,
matching the paper:

**Basic** (``use_distances=False``) -- suitable for moderate path counts:
partial paths are extended in FIFO order, and overflow removes only the
*shortest complete* paths, never the longest complete ones and never
partial paths.  (On circuits with huge path populations this cannot keep
``P`` bounded; a safety limit raises :class:`EnumerationOverflow`.)

**Distance-based** (``use_distances=True``, the default) -- uses
``len(p) = |p| + d(g)``, the maximum length any completion of ``p`` can
reach (``d(g)`` from :func:`repro.circuit.analysis.distance_to_outputs`,
Figure 2 of the paper):

1. the partial path with maximum ``len(p)`` is always extended next;
2. overflow removes the paths (partial *or* complete) with minimum
   ``len(p)``, until the fault count drops below ``N_P`` or every remaining
   path has the same, maximum ``len(p)``.

The result keeps only complete paths, sorted longest first.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from ..circuit.analysis import distance_to_outputs
from ..circuit.netlist import Netlist
from ..faults.path import Path
from ..robustness import DEADLINE, ENUMERATION_CAP, Budget, ReproError

__all__ = ["EnumerationResult", "EnumerationOverflow", "enumerate_paths"]

#: Each path carries two path delay faults (slow-to-rise, slow-to-fall).
FAULTS_PER_PATH = 2

#: Budget deadline checks are amortised over this many expansions.
_DEADLINE_STRIDE = 64


class EnumerationOverflow(ReproError, RuntimeError):
    """Raised when the basic procedure cannot keep ``P`` within bounds."""


@dataclass
class EnumerationResult:
    """Outcome of a bounded path enumeration.

    Attributes
    ----------
    paths:
        Complete paths, sorted by (length desc, nodes) -- deterministic.
    cap_hit:
        True when the fault cap forced removals (the enumeration is then a
        *longest-paths* subset rather than the full population).
    expansions / pruned_complete / pruned_partial:
        Work counters for diagnostics and tests.
    min_kept_length / max_kept_length:
        Length range of the surviving complete paths (0/0 when empty).
    budget_exhausted:
        ``None`` for a full enumeration; otherwise the budget reason
        (``enumeration_cap`` or ``deadline``) that stopped the walk early.
        The complete paths found so far are kept either way -- a budgeted
        enumeration degrades to a shallower longest-paths subset instead
        of raising.
    """

    paths: list[Path]
    cap_hit: bool
    expansions: int
    pruned_complete: int
    pruned_partial: int
    min_kept_length: int = 0
    max_kept_length: int = 0
    budget_exhausted: str | None = None

    @property
    def num_faults(self) -> int:
        """Number of path delay faults represented (two per path)."""
        return FAULTS_PER_PATH * len(self.paths)


@dataclass
class _Record:
    """One live entry of the working set."""

    path: Path
    reach: int  # len(p): length + d(sink); equals length for complete paths
    complete: bool
    alive: bool = True
    seq: int = 0  # tiebreaker for deterministic heap ordering


def enumerate_paths(
    netlist: Netlist,
    max_faults: int = 10000,
    use_distances: bool = True,
    max_expansions: int = 2_000_000,
    budget: Budget | None = None,
) -> EnumerationResult:
    """Enumerate the faults on the longest paths, capped at ``max_faults``.

    Parameters
    ----------
    netlist:
        A frozen combinational netlist.
    max_faults:
        The paper's ``N_P``: upper bound on the number of faults (2 x paths,
        counting partial paths) held in the working set.
    use_distances:
        Select the distance-based variant (default) or the basic one.
    max_expansions:
        Safety valve for the basic variant on path-rich circuits.
    budget:
        Optional :class:`~repro.robustness.Budget`.  Its ``enumeration_cap``
        and deadline stop the walk *gracefully*: the complete paths found so
        far survive and ``budget_exhausted`` records the reason, unlike the
        ``max_expansions`` valve which raises.  ``None`` (or a null budget)
        reproduces the unbudgeted behaviour exactly.
    """
    if max_faults < FAULTS_PER_PATH:
        raise ValueError("max_faults must allow at least one path")
    if budget is not None and budget.is_null:
        budget = None

    distance = distance_to_outputs(netlist)
    is_output = [False] * len(netlist)
    for out in netlist.output_indices:
        is_output[out] = True

    records: list[_Record] = []
    live_count = 0
    cap_hit = False
    expansions = 0
    pruned_complete = 0
    pruned_partial = 0

    # extend_heap: partial paths by -reach (distance variant).
    extend_heap: list[tuple[int, int, int]] = []
    extend_fifo: deque[int] = deque()
    # prune_heap: all paths by reach (distance variant) or complete paths
    # by length (basic variant); lazy deletion against records[i].alive.
    prune_heap: list[tuple[int, int, int]] = []

    def add_record(path: Path, complete: bool) -> None:
        nonlocal live_count, max_complete_length
        reach = path.length if complete else path.length + distance[path.sink]
        if complete and path.length > max_complete_length:
            max_complete_length = path.length
        record = _Record(path=path, reach=reach, complete=complete, seq=len(records))
        records.append(record)
        live_count += 1
        index = record.seq
        if not complete:
            if use_distances:
                heapq.heappush(extend_heap, (-reach, index, index))
            else:
                extend_fifo.append(index)
        if use_distances:
            heapq.heappush(prune_heap, (reach, index, index))
        elif complete:
            heapq.heappush(prune_heap, (path.length, index, index))

    def kill(record: _Record) -> None:
        nonlocal live_count
        if record.alive:
            record.alive = False
            live_count -= 1

    # Protection thresholds ("never remove the longest paths"):
    # - distance variant: the global maximum reach.  Some alive record always
    #   attains it (extending a maximum-reach partial along its critical
    #   successor preserves the reach), so it is a constant of the run.
    # - basic variant: the longest *complete* length seen so far, which only
    #   grows (maximum-length complete paths are never removed).
    max_reach_protect = max(
        (distance[pi] + 1 for pi in netlist.input_indices if distance[pi] >= 0),
        default=0,
    )
    max_complete_length = 0

    def enforce_cap() -> None:
        """Drop the least promising faults once the cap is reached."""
        nonlocal cap_hit, pruned_complete, pruned_partial
        if live_count * FAULTS_PER_PATH < max_faults:
            return
        cap_hit = True
        protect = max_reach_protect if use_distances else max_complete_length
        while live_count * FAULTS_PER_PATH >= max_faults and prune_heap:
            reach, _, index = prune_heap[0]
            record = records[index]
            if not record.alive:
                heapq.heappop(prune_heap)
                continue
            if reach >= protect:
                break  # only maximum-reach paths remain: keep them all
            heapq.heappop(prune_heap)
            kill(record)
            if record.complete:
                pruned_complete += 1
            else:
                pruned_partial += 1

    # Seed: one single-node partial path per primary input that can reach
    # an output (a PI that is also declared an output forms a 1-node path).
    for pi in netlist.input_indices:
        if is_output[pi]:
            add_record(Path((pi,)), complete=True)
        if distance[pi] > 0:
            add_record(Path((pi,)), complete=False)
    enforce_cap()

    def next_partial() -> _Record | None:
        if use_distances:
            while extend_heap:
                _, _, index = heapq.heappop(extend_heap)
                record = records[index]
                if record.alive and not record.complete:
                    return record
            return None
        while extend_fifo:
            index = extend_fifo.popleft()
            record = records[index]
            if record.alive and not record.complete:
                return record
        return None

    budget_exhausted: str | None = None
    while True:
        record = next_partial()
        if record is None:
            break
        if budget is not None:
            if (
                budget.enumeration_cap is not None
                and expansions >= budget.enumeration_cap
            ):
                budget_exhausted = ENUMERATION_CAP
                break
            if expansions % _DEADLINE_STRIDE == 0 and budget.deadline_expired():
                budget_exhausted = DEADLINE
                break
        expansions += 1
        if expansions > max_expansions:
            raise EnumerationOverflow(
                f"exceeded {max_expansions} expansions; the basic procedure "
                "cannot bound this circuit -- use use_distances=True"
            )
        kill(record)  # replaced by its extensions
        sink = record.path.sink
        for succ in netlist.fanout(sink):
            if distance[succ] < 0:
                continue  # dead region: no output reachable
            extended = record.path.extended(succ)
            if is_output[succ]:
                add_record(extended, complete=True)
            if distance[succ] > 0:
                add_record(extended, complete=False)
        enforce_cap()

    survivors = [r.path for r in records if r.alive and r.complete]
    survivors.sort(key=lambda p: (-p.length, p.nodes))
    result = EnumerationResult(
        paths=survivors,
        cap_hit=cap_hit,
        expansions=expansions,
        pruned_complete=pruned_complete,
        pruned_partial=pruned_partial,
        budget_exhausted=budget_exhausted,
    )
    if survivors:
        result.max_kept_length = survivors[0].length
        result.min_kept_length = survivors[-1].length
    return result
