"""Bounded longest-path enumeration and length statistics."""

from .enumerate import (
    FAULTS_PER_PATH,
    EnumerationOverflow,
    EnumerationResult,
    enumerate_paths,
)
from .lengths import (
    LengthRow,
    LengthTable,
    length_table_for_faults,
    length_table_for_paths,
)
from .sampling import PathSampler, sample_paths

__all__ = [
    "enumerate_paths",
    "EnumerationResult",
    "EnumerationOverflow",
    "FAULTS_PER_PATH",
    "LengthRow",
    "LengthTable",
    "length_table_for_faults",
    "length_table_for_paths",
    "PathSampler",
    "sample_paths",
]
