"""Exact uniform sampling of circuit paths.

Circuits have far too many paths to enumerate (the paper cites its own
non-enumerative coverage estimation work [2] precisely because of this).
Sampling gives an unbiased window into the whole population: draw paths
uniformly at random, fault-simulate the associated faults, and the
detected fraction estimates the *overall* path-delay-fault coverage of a
test set -- including the paths the bounded enumeration never looked at.

Uniformity is exact, not heuristic: using the suffix-path counts
``S(v) = number of PI->PO paths starting at v`` (big-integer dynamic
programming, same recurrence as :func:`repro.circuit.analysis.count_paths`),
a path is grown from a primary input chosen with probability proportional
to ``S(pi)``, then at each node the successor (or termination at an
output) is chosen with probability proportional to its suffix count.
Every complete path has probability exactly ``1 / total_paths``.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..circuit.netlist import Netlist
from ..faults.path import Path

__all__ = ["PathSampler", "sample_paths"]


class PathSampler:
    """Uniform sampler over all PI->PO paths of a netlist."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        n = len(netlist)
        suffix = [0] * n
        is_output = [False] * n
        for out_index in netlist.output_indices:
            is_output[out_index] = True
        for index in reversed(netlist.topo_order):
            total = 1 if is_output[index] else 0
            for successor in netlist.fanout(index):
                total += suffix[successor]
            suffix[index] = total
        self._suffix = suffix
        self._is_output = is_output
        self._sources = [
            pi for pi in netlist.input_indices if suffix[pi] > 0
        ]
        self._source_weights = [suffix[pi] for pi in self._sources]
        self.total_paths = sum(self._source_weights)

    def sample(self, rng: random.Random) -> Path:
        """Draw one path uniformly at random."""
        if self.total_paths == 0:
            raise ValueError("circuit has no PI->PO paths")
        node = rng.choices(self._sources, weights=self._source_weights)[0]
        nodes = [node]
        while True:
            # Decide between terminating here (when the node is an output)
            # and continuing into each successor, weighted by path counts.
            choices: list[int | None] = []
            weights: list[int] = []
            if self._is_output[node]:
                choices.append(None)
                weights.append(1)
            for successor in self.netlist.fanout(node):
                if self._suffix[successor] > 0:
                    choices.append(successor)
                    weights.append(self._suffix[successor])
            pick = rng.choices(choices, weights=weights)[0]
            if pick is None:
                return Path(nodes)
            nodes.append(pick)
            node = pick

    def sample_many(
        self, count: int, rng: random.Random, unique: bool = False
    ) -> list[Path]:
        """Draw ``count`` paths (with replacement unless ``unique``)."""
        if not unique:
            return [self.sample(rng) for _ in range(count)]
        seen: set[tuple[int, ...]] = set()
        out: list[Path] = []
        attempts = 0
        limit = max(50 * count, 1000)
        while len(out) < count and attempts < limit:
            attempts += 1
            path = self.sample(rng)
            if path.nodes not in seen:
                seen.add(path.nodes)
                out.append(path)
        return out


def sample_paths(
    netlist: Netlist, count: int, seed: int = 0, unique: bool = False
) -> list[Path]:
    """Convenience wrapper: uniformly sample ``count`` paths."""
    return PathSampler(netlist).sample_many(count, random.Random(seed), unique=unique)
