"""Path delay faults, sensitization conditions, and target-set selection."""

from .conditions import Mode, Sensitization, SensitizationError, sensitize
from .fault import PathDelayFault, Transition, faults_of_path, faults_of_paths
from .path import Path, PathError
from .universe import (
    FaultRecord,
    TargetSets,
    build_target_sets,
    partition_by_lengths,
)

__all__ = [
    "Path",
    "PathError",
    "PathDelayFault",
    "Transition",
    "faults_of_path",
    "faults_of_paths",
    "sensitize",
    "Sensitization",
    "SensitizationError",
    "Mode",
    "FaultRecord",
    "TargetSets",
    "build_target_sets",
    "partition_by_lengths",
]
