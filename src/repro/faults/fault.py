"""Path delay faults.

A path delay fault associates a physical path with a transition direction at
the path's source:

* **slow-to-rise** (STR): the source launches a rising transition (``0x1``)
  and the fault is that the resulting transition arrives too late at the
  path's output;
* **slow-to-fall** (STF): likewise for a falling launch (``1x0``).

Every path therefore carries exactly two faults.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

from ..algebra.triple import FALL, RISE, Triple
from ..circuit.netlist import Netlist
from .path import Path

__all__ = ["Transition", "PathDelayFault", "faults_of_path", "faults_of_paths"]


class Transition(enum.Enum):
    """Direction of the transition launched at the path source."""

    RISE = "str"  # slow-to-rise fault: source rises
    FALL = "stf"  # slow-to-fall fault: source falls

    @property
    def source_triple(self) -> Triple:
        """Waveform the source line must carry (``0x1`` or ``1x0``)."""
        return RISE if self is Transition.RISE else FALL

    @property
    def opposite(self) -> "Transition":
        """The other transition direction."""
        return Transition.FALL if self is Transition.RISE else Transition.RISE

    def __str__(self) -> str:
        return "slow-to-rise" if self is Transition.RISE else "slow-to-fall"


class PathDelayFault:
    """A path delay fault: a path plus a source transition direction."""

    __slots__ = ("path", "transition")

    def __init__(self, path: Path, transition: Transition) -> None:
        object.__setattr__(self, "path", path)
        object.__setattr__(self, "transition", transition)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PathDelayFault is immutable")

    @property
    def length(self) -> int:
        """Length of the associated path (number of nodes)."""
        return self.path.length

    @property
    def source(self) -> int:
        """Dense index of the launching primary input."""
        return self.path.source

    @property
    def sink(self) -> int:
        """Dense index of the path's last node."""
        return self.path.sink

    def key(self) -> tuple[tuple[int, ...], str]:
        """Stable, hashable identity used in ordering and reports."""
        return (self.path.nodes, self.transition.value)

    def __hash__(self) -> int:
        return hash((self.path.nodes, self.transition))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PathDelayFault)
            and self.path == other.path
            and self.transition is other.transition
        )

    def __repr__(self) -> str:
        return f"PathDelayFault({self.path!r}, {self.transition.name})"

    def format(self, netlist: Netlist) -> str:
        """Human-readable rendering, e.g. ``(G1, G12, G13) slow-to-rise``."""
        return f"{self.path.format(netlist)} {self.transition}"


def faults_of_path(path: Path) -> tuple[PathDelayFault, PathDelayFault]:
    """The two faults (STR, STF) associated with one path."""
    return (
        PathDelayFault(path, Transition.RISE),
        PathDelayFault(path, Transition.FALL),
    )


def faults_of_paths(paths: Iterable[Path]) -> Iterator[PathDelayFault]:
    """All faults for a collection of paths, two per path."""
    for path in paths:
        yield PathDelayFault(path, Transition.RISE)
        yield PathDelayFault(path, Transition.FALL)
