"""Physical paths through a combinational netlist.

A :class:`Path` is an ordered sequence of node indices
``(n_0, n_1, ..., n_k)`` where ``n_0`` is a primary input, every consecutive
pair ``(n_i, n_{i+1})`` means *node n_i drives gate n_{i+1}*, and -- for a
*complete* path -- ``n_k`` is a primary output.  Partial paths (used during
enumeration) end before reaching an output.

The path *length* is its node count, matching the paper's unit-delay model
(see DESIGN.md for the fanout-branch caveat).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..circuit.netlist import Netlist

__all__ = ["Path", "PathError"]


class PathError(ValueError):
    """Raised for structurally invalid paths."""


class Path:
    """An immutable path, stored as a tuple of dense node indices."""

    __slots__ = ("nodes",)

    def __init__(self, nodes: Sequence[int]) -> None:
        if not nodes:
            raise PathError("a path needs at least one node")
        object.__setattr__(self, "nodes", tuple(nodes))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Path is immutable")

    @classmethod
    def from_names(cls, netlist: Netlist, names: Sequence[str]) -> "Path":
        """Build a path from node names, validating connectivity."""
        path = cls(tuple(netlist.index_of(name) for name in names))
        path.validate(netlist)
        return path

    # ------------------------------------------------------------------

    @property
    def source(self) -> int:
        """First node (the launching primary input)."""
        return self.nodes[0]

    @property
    def sink(self) -> int:
        """Last node."""
        return self.nodes[-1]

    @property
    def length(self) -> int:
        """Path length = number of nodes on the path."""
        return len(self.nodes)

    def extended(self, node: int) -> "Path":
        """Return a new path with ``node`` appended."""
        return Path(self.nodes + (node,))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over consecutive (driver, gate) pairs."""
        for i in range(len(self.nodes) - 1):
            yield self.nodes[i], self.nodes[i + 1]

    def names(self, netlist: Netlist) -> tuple[str, ...]:
        """Node names along the path."""
        return tuple(netlist.node_at(i).name for i in self.nodes)

    def is_complete(self, netlist: Netlist) -> bool:
        """True when the path starts at a PI and ends at a PO."""
        return (
            netlist.node_at(self.source).is_input
            and self.sink in netlist.output_indices
        )

    def validate(self, netlist: Netlist) -> None:
        """Raise :class:`PathError` unless every edge is a real connection.

        Checks that the first node is a primary input and each node on the
        path is a fanin of the next.  Completeness (ending at a primary
        output) is *not* required -- partial paths are legal.
        """
        if not netlist.node_at(self.source).is_input:
            raise PathError(
                f"path source {netlist.node_at(self.source).name!r} "
                "is not a primary input"
            )
        for driver, gate in self.edges():
            if driver not in netlist.fanin_indices(gate):
                raise PathError(
                    f"{netlist.node_at(driver).name!r} does not drive "
                    f"{netlist.node_at(gate).name!r}"
                )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __getitem__(self, index: int) -> int:
        return self.nodes[index]

    def __hash__(self) -> int:
        return hash(self.nodes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and self.nodes == other.nodes

    def __lt__(self, other: "Path") -> bool:
        return self.nodes < other.nodes

    def __repr__(self) -> str:
        return f"Path{self.nodes}"

    def format(self, netlist: Netlist) -> str:
        """Human-readable rendering, e.g. ``(G1, G12, G13)``."""
        return "(" + ", ".join(self.names(netlist)) + ")"
