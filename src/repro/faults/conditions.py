"""Sensitization conditions ``A(p)`` for path delay faults.

Section 2.1 of the paper: to robustly detect a path delay fault ``p``, a
two-pattern test must assign

* the launching transition (``0x1`` for slow-to-rise, ``1x0`` for
  slow-to-fall) to the path's source, and
* the values required for robust propagation to every *off-path input*
  (side input) of every gate along the path.

For a gate with controlling value ``c`` (AND/NAND: 0, OR/NOR: 1) and
non-controlling value ``nc``, with the on-path input carrying transition
``t``:

* ``t`` ends at the **non-controlling** value (the on-path input *leaves*
  the controlling value): the output transition is launched by the on-path
  input, and any glitch on a side input could mask it -- every side input
  must be **steady non-controlling** (``nc nc nc``).
* ``t`` ends at the **controlling** value: the on-path input itself forces
  the output after the transition -- side inputs only need the
  non-controlling value **under the second pattern** (``x x nc``).

These are exactly the two requirement shapes of the paper's s27 example
(``000`` and ``xx0`` for NOR gates).

*Non-robust* tests relax the first case to ``x x nc`` as well; they are
provided as an extension (``mode="non_robust"``).

``A(p)`` is returned as a mapping from node index to a single merged
:class:`~repro.algebra.triple.Triple`.  If two requirements on the same line
disagree, the fault is undetectable (the paper's type-1 elimination) and
``None`` is returned.

Model note: paths are sequences of *nodes* (no separate fanout-branch
lines, see DESIGN.md).  Consequently a gate whose fanin repeats the on-path
node (``AND(a, a)``) contributes no side requirement -- the duplicated
input carries the on-path transition itself, which matches the waveform
simulation (``AND(0x1, 0x1) = 0x1``) used for detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping

from ..algebra.triple import Triple
from ..algebra.ternary import ONE, X, ZERO
from ..circuit.netlist import CONTROLLING_VALUE, GateType, Netlist
from .fault import PathDelayFault, Transition

__all__ = ["Sensitization", "sensitize", "SensitizationError", "Mode"]

Mode = Literal["robust", "non_robust"]


class SensitizationError(ValueError):
    """Raised when a fault's path traverses an unsupported gate type."""


@dataclass(frozen=True)
class Sensitization:
    """The full sensitization record for one path delay fault.

    Attributes
    ----------
    fault:
        The fault this record belongs to.
    requirements:
        ``A(p)``: node index -> required waveform triple (source transition
        and merged off-path requirements).
    on_path:
        The waveform each on-path node carries when the path propagates the
        transition, aligned with ``fault.path.nodes``.  Entry 0 is the
        source transition.
    mode:
        ``"robust"`` or ``"non_robust"``.
    """

    fault: PathDelayFault
    requirements: Mapping[int, Triple]
    on_path: tuple[Triple, ...]
    mode: str

    @property
    def num_values(self) -> int:
        """Total number of specified value components in ``A(p)``.

        This is the quantity the value-based compaction heuristic reasons
        about (the size of the value set a test must satisfy).
        """
        return sum(t.specified_count() for t in self.requirements.values())

    def format(self, netlist: Netlist) -> str:
        """Human-readable listing of the required values."""
        parts = [
            f"{netlist.node_at(node).name}={triple}"
            for node, triple in sorted(self.requirements.items())
        ]
        return f"A({self.fault.format(netlist)}) = {{{', '.join(parts)}}}"


def _off_path_requirement(
    gate_type: GateType, on_path_final: int, mode: Mode
) -> Triple:
    """Requirement for one side input of a gate on the path."""
    controlling = CONTROLLING_VALUE[gate_type]
    non_controlling = 1 - controlling
    if mode == "robust" and on_path_final == non_controlling:
        # Transition away from the controlling value: side inputs must be
        # glitch-free non-controlling for the whole test.
        return Triple.stable(non_controlling)
    # Transition to the controlling value (or non-robust mode): the side
    # input only matters under the second pattern.
    return Triple.of(X, X, non_controlling)


def sensitize(
    netlist: Netlist, fault: PathDelayFault, mode: Mode = "robust"
) -> Sensitization | None:
    """Compute ``A(p)`` for ``fault``, or ``None`` when self-conflicting.

    ``None`` corresponds to the paper's first class of undetectable faults:
    the requirement set assigns conflicting values to some line (for
    example because the same node appears as a side input with incompatible
    requirements at two gates of the path, or as both source and side
    input).

    Raises :class:`SensitizationError` if the path goes through an
    unsupported gate type (XOR/XNOR must be expanded first, see
    :func:`repro.circuit.transform.expand_xor`).
    """
    path = fault.path
    requirements: dict[int, Triple] = {path.source: fault.transition.source_triple}
    current = fault.transition.source_triple
    on_path = [current]

    for driver, gate in path.edges():
        node = netlist.node_at(gate)
        gate_type = node.gate_type
        if gate_type in (GateType.NOT, GateType.BUF):
            current = current.inverted() if gate_type is GateType.NOT else current
            on_path.append(current)
            continue
        if gate_type not in CONTROLLING_VALUE:
            raise SensitizationError(
                f"gate {node.name!r} has type {gate_type.name}, which the "
                "path-delay-fault engine does not support; expand XOR/XNOR "
                "first (repro.circuit.transform.expand_xor)"
            )
        on_path_final = current.v3
        assert on_path_final in (ZERO, ONE), "on-path waveform must transition"
        side_req = _off_path_requirement(gate_type, on_path_final, mode)
        for fanin_index in netlist.fanin_indices(gate):
            if fanin_index == driver:
                continue
            merged = requirements.get(fanin_index, None)
            merged = side_req if merged is None else merged.merge(side_req)
            if merged is None:
                return None  # conflicting requirements: undetectable (type 1)
            requirements[fanin_index] = merged
        inverting = gate_type in (GateType.NAND, GateType.NOR)
        current = current.inverted() if inverting else current
        on_path.append(current)

    # A side input of a later gate may coincide with the source or with an
    # internal on-path node (the path reconverges with itself).  The source
    # case was handled by merging into `requirements`.  For internal nodes
    # the waveform the path carries there is forced; if it does not already
    # satisfy the side requirement the fault cannot be robustly detected.
    for node_index, waveform in zip(path.nodes, on_path):
        required = requirements.get(node_index)
        if required is None or node_index == path.source:
            continue
        if not waveform.covers(required):
            return None
    return Sensitization(
        fault=fault,
        requirements=requirements,
        on_path=tuple(on_path),
        mode=mode,
    )
