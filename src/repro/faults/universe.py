"""Target-fault-set construction: ``P``, ``P0`` and ``P1`` (Section 3.1).

Pipeline:

1. enumerate the faults on the longest paths (``repro.paths.enumerate``),
   capped at ``N_P``;
2. compute ``A(p)`` for each fault and drop self-conflicting faults (the
   paper's type-1 undetectable elimination); optionally apply an
   implication-based filter (type 2) supplied by the ATPG layer;
3. build the length table and pick the smallest ``i_0`` such that the
   faults on paths of length ``>= L_{i_0}`` number at least ``N_P0``;
4. ``P0`` = those faults, ``P1`` = the remainder of ``P``.

The resulting :class:`TargetSets` carries a :class:`FaultRecord` (fault +
its sensitization requirements) for every surviving fault, which is the
currency the test generator, fault simulator and enrichment driver trade
in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..circuit.netlist import Netlist
from ..robustness import DEADLINE, Budget
from .conditions import Mode, Sensitization, sensitize
from .fault import PathDelayFault, faults_of_paths

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..paths.enumerate import EnumerationResult
    from ..paths.lengths import LengthTable

__all__ = [
    "FaultRecord",
    "TargetSets",
    "build_target_sets",
    "partition_by_lengths",
    "effective_shard_count",
    "shard_slice",
]


@dataclass(frozen=True)
class FaultRecord:
    """A detectable-so-far fault together with its requirement set."""

    fault: PathDelayFault
    sens: Sensitization

    @property
    def length(self) -> int:
        """Path length of the fault."""
        return self.fault.length

    def __repr__(self) -> str:
        return f"FaultRecord({self.fault!r}, |A|={self.sens.num_values})"


@dataclass
class TargetSets:
    """The sets of target faults the enrichment procedure works with."""

    netlist: Netlist
    #: First (mandatory) target set: faults on the longest paths.
    p0: list[FaultRecord]
    #: Second (opportunistic) target set: faults on next-to-longest paths.
    p1: list[FaultRecord]
    #: Row index i_0 selecting the P0/P1 length boundary.
    i0: int
    #: Length table over all surviving faults of P (Table 2 layout).
    length_table: LengthTable
    #: Faults removed because A(p) is self-conflicting (type 1).
    dropped_conflict: int = 0
    #: Faults removed by the implication filter (type 2).
    dropped_implication: int = 0
    #: Raw enumeration diagnostics.
    enumeration: EnumerationResult | None = None
    #: Budget reason (e.g. ``deadline``) that cut target-set construction
    #: short, or ``None`` for a complete build.  When set, faults past the
    #: cut-off were never sensitized and are absent from ``P0``/``P1``.
    budget_exhausted: str | None = None

    @property
    def all_records(self) -> list[FaultRecord]:
        """``P = P0 + P1`` (P0 first)."""
        return self.p0 + self.p1

    @property
    def boundary_length(self) -> int:
        """``L_{i_0}``: minimum path length admitted to ``P0``."""
        return self.length_table.length_at(self.i0) if len(self.length_table) else 0

    def summary(self) -> str:
        """One-line description used by reports."""
        return (
            f"{self.netlist.name}: i0={self.i0} (L_i0={self.boundary_length}), "
            f"|P0|={len(self.p0)}, |P1|={len(self.p1)}, "
            f"dropped: {self.dropped_conflict} conflicting, "
            f"{self.dropped_implication} by implication"
        )


def build_target_sets(
    netlist: Netlist,
    max_faults: int = 10000,
    p0_min_faults: int = 1000,
    mode: Mode = "robust",
    use_distances: bool = True,
    implication_filter: Callable[[FaultRecord], bool] | None = None,
    enumeration: "EnumerationResult | None" = None,
    justifier=None,
    budget: Budget | None = None,
) -> "TargetSets":
    """Construct ``P0`` and ``P1`` for a circuit.

    Parameters mirror the paper: ``max_faults`` is ``N_P`` (default 10000)
    and ``p0_min_faults`` is ``N_P0`` (default 1000).  The optional
    ``implication_filter`` receives each surviving record and returns False
    for faults proven undetectable by implications (see
    :func:`repro.atpg.justify.has_implication_conflict` for the standard
    choice).  Alternatively pass a session-owned
    :class:`repro.atpg.justify.Justifier` as ``justifier`` to apply that
    standard filter without building a throwaway justifier (and its
    compiled simulator) per call; ``implication_filter`` wins when both are
    given.  A precomputed ``enumeration`` (e.g. from a
    :class:`repro.engine.CircuitSession` cache) skips the path enumeration;
    it must have been produced with the same ``max_faults`` cap.

    A non-null ``budget`` bounds the build: its caps flow into the path
    enumeration, and its deadline is checked between faults during
    sensitization -- on expiry the sets are built from the faults
    processed so far and ``budget_exhausted`` records the cut.
    """
    from ..paths.enumerate import enumerate_paths
    from ..paths.lengths import length_table_for_faults

    if budget is not None and budget.is_null:
        budget = None
    if budget is not None:
        budget.start()

    if implication_filter is None and justifier is not None:
        # Lazy import: faults must not depend on atpg at module level.
        from ..atpg.justify import has_implication_conflict
        from ..atpg.requirements import RequirementSet

        def implication_filter(record: FaultRecord) -> bool:
            requirements = RequirementSet(record.sens.requirements)
            return not has_implication_conflict(justifier, requirements)

    if enumeration is None:
        enumeration = enumerate_paths(
            netlist, max_faults=max_faults, use_distances=use_distances, budget=budget
        )

    records: list[FaultRecord] = []
    dropped_conflict = 0
    dropped_implication = 0
    budget_exhausted = enumeration.budget_exhausted
    for fault in faults_of_paths(enumeration.paths):
        if budget is not None and budget.deadline_expired():
            budget_exhausted = DEADLINE
            break
        sens = sensitize(netlist, fault, mode=mode)
        if sens is None:
            dropped_conflict += 1
            continue
        record = FaultRecord(fault, sens)
        if implication_filter is not None and not implication_filter(record):
            dropped_implication += 1
            continue
        records.append(record)

    table = length_table_for_faults(record.fault for record in records)
    i0 = table.select_index(p0_min_faults)
    boundary = table.length_at(i0) if len(table) else 0
    p0 = [record for record in records if record.length >= boundary]
    p1 = [record for record in records if record.length < boundary]
    return TargetSets(
        netlist=netlist,
        p0=p0,
        p1=p1,
        i0=i0,
        length_table=table,
        dropped_conflict=dropped_conflict,
        dropped_implication=dropped_implication,
        enumeration=enumeration,
        budget_exhausted=budget_exhausted,
    )


def effective_shard_count(
    n_primaries: int, shard_count: int, min_faults: int = 1
) -> int:
    """The shard count actually used for ``n_primaries`` primary targets.

    A requested ``shard_count`` collapses when the pool is too small to
    justify it: each shard must receive at least ``min_faults`` primaries
    (and at least one shard always exists, even for an empty pool).  The
    arithmetic is a pure function of its arguments, so every worker and
    the merging parent agree on the plan without coordination.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if min_faults < 1:
        raise ValueError(f"min_faults must be >= 1, got {min_faults}")
    if n_primaries < 0:
        raise ValueError(f"n_primaries must be >= 0, got {n_primaries}")
    return max(1, min(shard_count, n_primaries // min_faults))


def shard_slice(
    n_primaries: int, shard_index: int, shard_count: int, min_faults: int = 1
) -> range:
    """Ordered-pool indices assigned to one shard (round-robin plan).

    Shard ``i`` of ``k`` owns indices ``i, i+k, i+2k, ...`` of the
    heuristic-ordered primary pool.  Round-robin (rather than contiguous
    blocks) balances work when the pool is ordered longest-path-first:
    long paths carry the most expensive justifications, and dealing them
    out interleaves cheap and costly primaries across shards.  Indices of
    a shard beyond :func:`effective_shard_count` come back as an empty
    range, so over-sharded runs degrade to fewer busy workers instead of
    failing.
    """
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    k_eff = effective_shard_count(n_primaries, shard_count, min_faults)
    if shard_index >= k_eff:
        return range(0)
    return range(shard_index, n_primaries, k_eff)


def partition_by_lengths(
    records: Sequence[FaultRecord], boundaries: Iterable[int]
) -> list[list[FaultRecord]]:
    """Split records into subsets ``P0, P1, ..., Pk`` by length thresholds.

    ``boundaries`` are decreasing minimum lengths; records with length
    ``>= boundaries[0]`` go to the first subset, then ``>= boundaries[1]``,
    and so on; anything below the last boundary forms the final subset.
    This generalizes the two-set scheme the paper evaluates ("it is
    possible to partition P into a larger number of subsets").
    """
    thresholds = sorted(set(boundaries), reverse=True)
    subsets: list[list[FaultRecord]] = [[] for _ in range(len(thresholds) + 1)]
    for record in records:
        for rank, threshold in enumerate(thresholds):
            if record.length >= threshold:
                subsets[rank].append(record)
                break
        else:
            subsets[-1].append(record)
    return subsets
