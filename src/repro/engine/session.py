"""Per-circuit engine sessions with artifact caching.

Every entry point used to rebuild the expensive per-circuit artifacts from
scratch: the compiled :class:`~repro.sim.batch.BatchSimulator`, the
:class:`~repro.atpg.justify.Justifier`, per-population fault simulators and
the enumerated target sets.  A :class:`CircuitSession` owns all of them
behind memoizing accessors, so any number of generation runs, table
experiments or fault simulations against one circuit share one enumeration
and one compiled simulator.

An :class:`Engine` pools sessions across circuits (one per netlist) behind
a single shared :class:`~repro.engine.stats.EngineStats`, which is what the
CLI and the table drivers use for whole-invocation instrumentation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..artifacts import (
    ArtifactStore,
    load_enumeration,
    load_target_sets,
    netlist_digest,
    publish_enumeration,
    publish_target_sets,
)
from ..atpg.enrich import generate_enriched
from ..atpg.generator import AtpgConfig, generate_basic
from ..atpg.justify import Justifier
from ..circuit.library import load_circuit
from ..circuit.netlist import Netlist
from ..circuit.transform import pdf_ready
from ..envflags import artifact_cache_dir
from ..faults.conditions import Mode
from ..faults.universe import FaultRecord, TargetSets, build_target_sets
from ..robustness import Budget
from ..sim.batch import BatchSimulator
from ..sim.faultsim import FaultSimulator
from .stats import EngineStats

if TYPE_CHECKING:
    from ..atpg.enrich import EnrichmentReport
    from ..atpg.generator import PrimaryOutcome
    from ..atpg.result import GenerationResult
    from ..paths.enumerate import EnumerationResult

__all__ = ["CircuitSession", "Engine"]


class CircuitSession:
    """All derived artifacts of one PDF-ready netlist, built once.

    Accessors are memoized: repeated calls with the same key return the
    *same object* and record a cache hit in :attr:`stats`.  The session is
    the unit of reuse -- pass one session through ``api``/``cli``/
    ``experiments`` calls and path enumeration, requirement compilation and
    simulator construction happen exactly once per key.
    """

    def __init__(
        self,
        circuit: str | Netlist,
        stats: EngineStats | None = None,
        simulator: BatchSimulator | None = None,
        budget: Budget | None = None,
        artifacts: ArtifactStore | None = None,
    ) -> None:
        """``budget`` is the session-wide resource budget, applied to every
        accessor unless a call passes its own.  Memoized artifacts are
        cached per parameter key regardless of budget: a session lives
        inside one run and shares that run's budget, so a degraded
        artifact is exactly the one every later stage should reuse.

        ``artifacts`` is an optional persistent :class:`ArtifactStore`:
        enumeration/target-set accessors consult it before computing and
        publish after, but only for *unbudgeted* calls -- budgeted builds
        are wall-clock dependent and bypass the store entirely, so cached
        entries are always complete and deterministic."""
        self.stats = stats if stats is not None else EngineStats()
        self.budget = budget if budget is None or not budget.is_null else None
        netlist = load_circuit(circuit) if isinstance(circuit, str) else circuit
        self.netlist = pdf_ready(netlist)
        self.artifacts = artifacts
        self._artifact_digest: str | None = None
        self._simulator = simulator
        if simulator is not None and simulator.stats is None:
            simulator.stats = self.stats
        self._justifier: Justifier | None = None
        self._enumerations: dict[tuple[int, bool], "EnumerationResult"] = {}
        self._target_sets: dict[tuple[int, int, Mode, bool], TargetSets] = {}
        self._fault_simulators: dict[tuple, FaultSimulator] = {}

    # -- core artifacts ------------------------------------------------

    @property
    def simulator(self) -> BatchSimulator:
        """The compiled batch simulator (compiled on first access)."""
        if self._simulator is None:
            self.stats.count("simulator.build")
            with self.stats.timer("simulator.build"):
                self._simulator = BatchSimulator(self.netlist, stats=self.stats)
        return self._simulator

    @property
    def justifier(self) -> Justifier:
        """The justification engine, bound to :attr:`simulator`."""
        if self._justifier is None:
            self.stats.count("justifier.build")
            self._justifier = Justifier(
                self.netlist, self.simulator, stats=self.stats
            )
        return self._justifier

    def _budget(self, budget: Budget | None) -> Budget | None:
        """The effective budget for one call (argument wins, null is None)."""
        if budget is None:
            return self.budget
        return None if budget.is_null else budget

    def _store_for(self, budget: Budget | None) -> ArtifactStore | None:
        """The artifact store to consult for one call, if any.

        Only unbudgeted calls see the store: a budget may truncate the
        artifact, and a truncated artifact must neither be replayed nor
        shadow the degraded build this run's later stages should reuse.
        """
        if self.artifacts is None or budget is not None:
            return None
        return self.artifacts

    @property
    def artifact_digest(self) -> str:
        """Content digest of the session's PDF-ready netlist (lazy)."""
        if self._artifact_digest is None:
            self._artifact_digest = netlist_digest(self.netlist)
        return self._artifact_digest

    def enumeration(
        self,
        max_faults: int,
        use_distances: bool = True,
        budget: Budget | None = None,
    ) -> "EnumerationResult":
        """Bounded longest-path enumeration, cached per ``(cap, variant)``."""
        from ..paths.enumerate import enumerate_paths

        key = (max_faults, use_distances)
        cached = self._enumerations.get(key)
        if cached is not None:
            self.stats.hit("enumerate")
            return cached
        self.stats.miss("enumerate")
        budget = self._budget(budget)
        store = self._store_for(budget)
        if store is not None:
            with self.stats.timer("artifact.load"):
                loaded = load_enumeration(
                    store,
                    self.netlist,
                    max_faults=max_faults,
                    use_distances=use_distances,
                    digest=self.artifact_digest,
                    stats=self.stats,
                )
            if loaded is not None:
                self._enumerations[key] = loaded
                return loaded
        with self.stats.timer("enumerate"):
            result = enumerate_paths(
                self.netlist,
                max_faults=max_faults,
                use_distances=use_distances,
                budget=budget,
            )
        if store is not None:
            publish_enumeration(
                store,
                self.netlist,
                result,
                max_faults=max_faults,
                use_distances=use_distances,
                digest=self.artifact_digest,
                stats=self.stats,
            )
        self._enumerations[key] = result
        return result

    def target_sets(
        self,
        max_faults: int = 10000,
        p0_min_faults: int = 1000,
        mode: Mode = "robust",
        filter_implications: bool = True,
        budget: Budget | None = None,
    ) -> TargetSets:
        """``P0`` / ``P1`` construction, cached per full parameter key."""
        key = (max_faults, p0_min_faults, mode, filter_implications)
        cached = self._target_sets.get(key)
        if cached is not None:
            self.stats.hit("target_sets")
            return cached
        self.stats.miss("target_sets")
        budget = self._budget(budget)
        store = self._store_for(budget)
        if store is not None:
            with self.stats.timer("artifact.load"):
                loaded = load_target_sets(
                    store,
                    self.netlist,
                    max_faults=max_faults,
                    p0_min_faults=p0_min_faults,
                    mode=mode,
                    filter_implications=filter_implications,
                    digest=self.artifact_digest,
                    stats=self.stats,
                )
            if loaded is not None:
                self._target_sets[key] = loaded
                return loaded
        enumeration = self.enumeration(max_faults, budget=budget)
        with self.stats.timer("target_sets"):
            targets = build_target_sets(
                self.netlist,
                max_faults=max_faults,
                p0_min_faults=p0_min_faults,
                mode=mode,
                enumeration=enumeration,
                justifier=self.justifier if filter_implications else None,
                budget=budget,
            )
        if store is not None:
            publish_target_sets(
                store,
                self.netlist,
                targets,
                max_faults=max_faults,
                p0_min_faults=p0_min_faults,
                mode=mode,
                filter_implications=filter_implications,
                digest=self.artifact_digest,
                stats=self.stats,
            )
        self._target_sets[key] = targets
        return targets

    def fault_simulator(self, records: Sequence[FaultRecord]) -> FaultSimulator:
        """A fault simulator for ``records``, cached per fault population.

        The key is the ordered tuple of fault identities, so two record
        lists describing the same population share one set of compiled
        requirement matrices.
        """
        records = list(records)
        key = tuple(record.fault.key() for record in records)
        cached = self._fault_simulators.get(key)
        if cached is not None:
            self.stats.hit("fault_simulator")
            return cached
        self.stats.miss("fault_simulator")
        with self.stats.timer("fault_simulator"):
            simulator = FaultSimulator(
                self.netlist, records, simulator=self.simulator
            )
        self._fault_simulators[key] = simulator
        return simulator

    # -- generation front ends -----------------------------------------

    def generate_basic(
        self,
        records: Sequence[FaultRecord],
        config: AtpgConfig | None = None,
        budget: Budget | None = None,
    ) -> "GenerationResult":
        """Basic test generation reusing the session's simulator/justifier."""
        with self.stats.timer("generate"):
            return generate_basic(
                self.netlist,
                records,
                config,
                simulator=self.simulator,
                justifier=self.justifier,
                budget=self._budget(budget),
            )

    def generate_enriched(
        self,
        targets: TargetSets | list[list[FaultRecord]],
        config: AtpgConfig | None = None,
        budget: Budget | None = None,
    ) -> "EnrichmentReport | GenerationResult":
        """Test enrichment reusing the session's simulator/justifier."""
        with self.stats.timer("generate"):
            return generate_enriched(
                self.netlist,
                targets,
                config,
                simulator=self.simulator,
                justifier=self.justifier,
                budget=self._budget(budget),
            )

    def generate_shard_outcomes(
        self,
        targets: TargetSets,
        config: AtpgConfig,
        indices: Sequence[int],
        kind: str = "basic",
        budget: Budget | None = None,
    ) -> "list[PrimaryOutcome]":
        """Shard-stable per-primary outcomes for a slice of ``P0``.

        The front end of intra-circuit fault sharding (see
        :meth:`repro.atpg.generator.TestGenerator.generate_primary_outcomes`):
        ``kind`` selects the compaction pools (``"basic"`` -> ``[P0]``,
        ``"enrich"`` -> ``[P0, P1]``), detection is always evaluated over
        the full ``P0 + P1`` universe, and ``indices`` address the
        heuristic-ordered ``P0``.  Wall clock lands in the session's
        ``generate`` timer like the other generation front ends.
        """
        from ..atpg.generator import TestGenerator

        if kind not in ("basic", "enrich"):
            raise ValueError(f"unknown shard sweep kind {kind!r}")
        pools = [targets.p0] if kind == "basic" else [targets.p0, targets.p1]
        generator = TestGenerator(
            self.netlist,
            config,
            simulator=self.simulator,
            justifier=self.justifier,
            budget=self._budget(budget),
        )
        with self.stats.timer("generate"):
            return generator.generate_primary_outcomes(
                pools,
                targets.all_records,
                indices,
                tag=f"{kind}:{config.heuristic}",
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitSession({self.netlist.name!r}, "
            f"{len(self._target_sets)} target sets, "
            f"{len(self._fault_simulators)} fault simulators)"
        )


class Engine:
    """A pool of :class:`CircuitSession` objects sharing one stats sink.

    One engine per CLI invocation / experiment sweep: ``session(circuit)``
    returns the existing session for a circuit when there is one, so every
    stage of a multi-circuit run reuses the per-circuit artifacts.
    """

    def __init__(
        self,
        stats: EngineStats | None = None,
        budget: Budget | None = None,
        artifacts: ArtifactStore | None = None,
    ) -> None:
        """``budget`` is handed to every session this engine creates (it
        may be (re)assigned before the first ``session()`` call, which is
        how the CLI applies ``--deadline``/``--budget-profile`` to an
        engine built earlier).

        ``artifacts`` is the persistent artifact store shared by every
        session.  When omitted, ``REPRO_ARTIFACT_CACHE`` is consulted, so
        pool workers (which inherit the environment) warm-start without
        explicit plumbing; unset means caching stays off."""
        self.stats = stats if stats is not None else EngineStats()
        self.budget = budget
        if artifacts is None:
            directory = artifact_cache_dir()
            if directory:
                artifacts = ArtifactStore(directory)
        self.artifacts = artifacts
        #: Per-job completion records appended by the parallel runner
        #: (key, kind, wall seconds; resumed checkpoints are flagged).
        #: The run journal embeds them so a sweep's per-shard cost
        #: breakdown survives alongside its aggregate numbers.
        self.job_records: list[dict] = []
        self._by_name: dict[str, CircuitSession] = {}
        self._by_identity: dict[int, CircuitSession] = {}

    def session(self, circuit: str | Netlist) -> CircuitSession:
        """Get-or-create the session for a registry name or netlist."""
        if isinstance(circuit, str):
            session = self._by_name.get(circuit)
            if session is None:
                session = CircuitSession(
                    circuit,
                    stats=self.stats,
                    budget=self.budget,
                    artifacts=self.artifacts,
                )
                self._by_name[circuit] = session
            return session
        # Netlist objects are pooled by identity; the session keeps the
        # netlist alive, so ids cannot be recycled while pooled.
        session = self._by_identity.get(id(circuit))
        if session is None:
            session = CircuitSession(
                circuit,
                stats=self.stats,
                budget=self.budget,
                artifacts=self.artifacts,
            )
            self._by_identity[id(circuit)] = session
        return session

    def sessions(self) -> list[CircuitSession]:
        """Every pooled session (creation order)."""
        return list(self._by_name.values()) + list(self._by_identity.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine({len(self._by_name) + len(self._by_identity)} sessions)"
