"""Engine layer: per-circuit sessions, artifact caches, instrumentation.

See DESIGN.md, "Architecture: engine layer".  The short version: construct
one :class:`CircuitSession` per circuit (or one :class:`Engine` per
process/invocation) and route every pipeline stage through it; expensive
artifacts -- path enumerations, target sets, compiled simulators, the
justifier -- are then built exactly once and shared.
"""

from .session import CircuitSession, Engine
from .stats import EngineStats

__all__ = ["CircuitSession", "Engine", "EngineStats"]
