"""Instrumentation for the engine layer.

:class:`EngineStats` is a light counters-plus-timers sink shared by every
artifact a :class:`~repro.engine.session.CircuitSession` builds.  Lower
layers (``sim.batch``, ``atpg.justify``) accept it duck-typed -- anything
with ``count(name, n)`` and ``timer(name)`` works -- so they stay free of
engine imports.

Counter naming convention:

* ``<cache>.hit`` / ``<cache>.miss`` -- memoized-accessor outcomes
  (``enumerate``, ``target_sets``, ``fault_simulator``, and the
  cone-compilation cache ``cone`` with its extra ``cone.compile`` for
  misses that could not reuse another seed key's compilation);
* ``batch.runs`` / ``batch.columns`` -- batch simulations and their total
  column count (cone-restricted runs are included, and additionally
  counted as ``cone.runs`` / ``cone.columns``);
* ``justify.calls`` -- justification attempts;
* ``justify.cone_nodes`` / ``justify.full_nodes`` -- node-columns the
  justifier actually simulated vs what full-netlist simulation would have
  cost; their ratio is the cone restriction's saving (equal when
  ``REPRO_FULL_SIM=1``);
* ``compact.screen_calls`` / ``compact.screen_columns`` -- batched
  candidate screens in the generator (covered / conflict / ``n_delta``)
  and the fault columns they covered;
* ``simulator.build`` / ``justifier.build`` -- artifact constructions;
* ``parallel.*`` -- runner fault-tolerance bookkeeping (``jobs``,
  ``retries``, ``timeouts``, ``failures``, ``pool_broken``, ``fallback``,
  ``resumed``, ``checkpointed``);
* ``budget.*`` -- graceful-degradation bookkeeping: ``budget.aborted``
  (faults recorded as aborted), ``budget.<reason>_trips`` per abort
  reason (``deadline``, ``node_limit``, ``attempt_limit``, ...) and
  ``budget.run_stops`` (run-level stops: deadline expiry / abort limit);
* ``checkpoint.corrupt`` -- checkpoint files that existed but could not
  be decoded (distinguished from simply missing ones, which stay silent);
* ``artifact.*`` -- persistent artifact store outcomes
  (:mod:`repro.artifacts`): every consult counts exactly one of
  ``artifact.hit`` / ``artifact.miss``; corrupt or stale entries count an
  additional ``artifact.corrupt`` (they degrade to misses, never errors)
  and every publish counts ``artifact.write``.  Load wall clock lands in
  the ``artifact.load`` timer; the compute it replaces would have landed
  in ``enumerate`` / ``target_sets``.

Timers accumulate wall-clock seconds under the same names (``enumerate``,
``target_sets``, ``justify``, ``generate``).  ``maxima`` are max-semantics
timers (:meth:`EngineStats.max_time`): merging keeps the largest observed
value instead of summing, which is what per-shard wall clocks need
(``shard.wall`` reports the *critical path* of a sharded circuit, not the
sum of its workers' clocks).

Every instance carries a random ``origin`` token, and :meth:`merge`
records the origins it has folded: re-merging the same stats object (or a
snapshot round-trip of it) is a no-op, so a seam that accidentally folds
one worker's snapshot twice cannot double-count.
"""

from __future__ import annotations

import time
import uuid
from collections import Counter
from contextlib import contextmanager
from typing import Iterator

__all__ = ["EngineStats"]


class EngineStats:
    """Counters and wall-clock timers for one engine or session."""

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self.timers: dict[str, float] = {}
        self.maxima: dict[str, float] = {}
        self.origin: str = uuid.uuid4().hex
        self._merged_origins: set[str] = set()

    # -- counters ------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] += n

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def hit(self, cache: str) -> None:
        """Record a cache hit for ``cache``."""
        self.count(f"{cache}.hit")

    def miss(self, cache: str) -> None:
        """Record a cache miss for ``cache``."""
        self.count(f"{cache}.miss")

    def hits(self, cache: str) -> int:
        return self.counter(f"{cache}.hit")

    def misses(self, cache: str) -> int:
        return self.counter(f"{cache}.miss")

    # -- timers --------------------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall-clock time under ``name``."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block into ``timers[name]``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def max_time(self, name: str, seconds: float) -> None:
        """Record ``seconds`` under max semantics: keep the largest value.

        Use for quantities where summing across merges would lie -- e.g.
        the wall clock of one shard worker, whose merged value should be
        the slowest worker (the critical path), not the workers' total.
        """
        current = self.maxima.get(name)
        if current is None or seconds > current:
            self.maxima[name] = seconds

    # -- reporting -----------------------------------------------------

    def merge(self, other: "EngineStats") -> None:
        """Fold another stats object into this one (idempotent per origin).

        A stats object (or a snapshot round-trip of one) whose ``origin``
        was already folded -- including this object itself -- is skipped
        entirely: counters and sum-semantics timers would double-count on
        a second fold, and re-merge bugs at the runner/checkpoint seams
        are otherwise silent.
        """
        if other is self or other.origin == self.origin:
            return
        if other.origin in self._merged_origins:
            return
        self._merged_origins.add(other.origin)
        self._merged_origins.update(other._merged_origins)
        self.counters.update(other.counters)
        for name, seconds in other.timers.items():
            self.add_time(name, seconds)
        for name, seconds in other.maxima.items():
            self.max_time(name, seconds)

    def snapshot(self) -> dict:
        """Plain-dict view (stable for JSON serialization and tests).

        ``origin`` rides along so a round-tripped snapshot still
        deduplicates in :meth:`merge`; ``maxima`` appears only when
        max-semantics timers were recorded (keeping older payloads
        byte-stable).
        """
        payload = {
            "counters": dict(sorted(self.counters.items())),
            "timers": dict(sorted(self.timers.items())),
            "origin": self.origin,
        }
        if self.maxima:
            payload["maxima"] = dict(sorted(self.maxima.items()))
        return payload

    @classmethod
    def from_snapshot(cls, payload: dict) -> "EngineStats":
        """Rebuild a stats object from a :meth:`snapshot` dict.

        Used by the parallel runner's checkpoint files, which persist a
        worker's instrumentation alongside its results.  The stored
        ``origin`` is restored (snapshots without one -- written before
        merge deduplication existed -- get a fresh token).
        """
        stats = cls()
        stats.counters.update(payload.get("counters", {}))
        for name, seconds in payload.get("timers", {}).items():
            stats.add_time(name, float(seconds))
        for name, seconds in payload.get("maxima", {}).items():
            stats.max_time(name, float(seconds))
        origin = payload.get("origin")
        if origin:
            stats.origin = origin
        return stats

    def format(self) -> str:
        """Readable report for ``repro-pdf --stats``."""
        lines = ["engine stats"]
        if self.counters:
            lines.append("  counters:")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(f"    {name:<{width}}  {self.counters[name]}")
        if self.timers:
            lines.append("  timers (s):")
            width = max(len(name) for name in self.timers)
            for name in sorted(self.timers):
                lines.append(f"    {name:<{width}}  {self.timers[name]:.3f}")
        if self.maxima:
            lines.append("  maxima (s):")
            width = max(len(name) for name in self.maxima)
            for name in sorted(self.maxima):
                lines.append(f"    {name:<{width}}  {self.maxima[name]:.3f}")
        if len(lines) == 1:
            lines.append("  (no activity recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EngineStats({sum(self.counters.values())} events, "
            f"{len(self.timers)} timers)"
        )
