"""Structural analysis of combinational netlists.

Provides the quantities the path-enumeration and ATPG layers rely on:

* ``distance_to_outputs`` -- the paper's ``d(g)`` (Figure 2): for every line
  ``g``, the maximum number of *additional* lines on any path from ``g`` to a
  primary output.  ``d(g) = 0`` for lines whose only continuation is ending
  at a primary output; ``-1`` marks lines from which no primary output is
  reachable.
* ``count_paths`` / ``path_length_counts`` -- exact path population counts
  via dynamic programming (no enumeration), used to select circuits with at
  least 1000 paths and to validate Table 2 style length histograms.
* input/output cones, and a :class:`CircuitStats` summary.

Path length convention: the *length* of a path is the number of nodes on it
(primary input and every gate-output line it traverses), matching the
paper's unit-delay model "the delay of a path is equal to the number of
lines along the path" up to the treatment of fanout branches (see
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from .netlist import Netlist

__all__ = [
    "distance_to_outputs",
    "count_paths",
    "path_length_counts",
    "longest_path_length",
    "input_cone",
    "output_cone",
    "support_inputs",
    "CircuitStats",
    "analyze",
]


def distance_to_outputs(netlist: Netlist) -> list[int]:
    """Compute ``d(g)`` for every node, indexed by dense node index.

    ``d(g)`` is the maximum number of additional nodes on any path from
    ``g`` to a primary output; a primary output itself contributes 0 (a
    path may end there).  Nodes from which no primary output is reachable
    get ``-1``.
    """
    n = len(netlist)
    distance = [-1] * n
    is_output = [False] * n
    for out_index in netlist.output_indices:
        is_output[out_index] = True
    # Reverse topological pass: every successor is processed first.
    for index in reversed(netlist.topo_order):
        best = 0 if is_output[index] else -1
        for succ in netlist.fanout(index):
            if distance[succ] >= 0 and distance[succ] + 1 > best:
                best = distance[succ] + 1
        distance[index] = best
    return distance


def count_paths(netlist: Netlist) -> int:
    """Exact number of primary-input-to-primary-output paths.

    Uses big-integer dynamic programming over the DAG, so it is safe for
    circuits whose path count is astronomically large.
    """
    n = len(netlist)
    suffix_paths = [0] * n
    is_output = [False] * n
    for out_index in netlist.output_indices:
        is_output[out_index] = True
    for index in reversed(netlist.topo_order):
        total = 1 if is_output[index] else 0
        for succ in netlist.fanout(index):
            total += suffix_paths[succ]
        suffix_paths[index] = total
    return sum(suffix_paths[i] for i in netlist.input_indices)


def path_length_counts(netlist: Netlist) -> dict[int, int]:
    """Exact histogram {path length (in nodes) -> number of paths}.

    Dynamic programming: for every node, the multiset of suffix-path lengths
    to the primary outputs, represented as a dict length -> count.  The
    result is the aggregate over all primary inputs.  Cost is
    O(nodes * depth), independent of the (possibly exponential) path count.
    """
    n = len(netlist)
    suffix: list[dict[int, int]] = [dict() for _ in range(n)]
    is_output = [False] * n
    for out_index in netlist.output_indices:
        is_output[out_index] = True
    for index in reversed(netlist.topo_order):
        table = suffix[index]
        if is_output[index]:
            table[1] = table.get(1, 0) + 1
        for succ in netlist.fanout(index):
            for length, count in suffix[succ].items():
                table[length + 1] = table.get(length + 1, 0) + count
    histogram: dict[int, int] = {}
    for pi in netlist.input_indices:
        for length, count in suffix[pi].items():
            histogram[length] = histogram.get(length, 0) + count
    return histogram


def longest_path_length(netlist: Netlist) -> int:
    """Length (in nodes) of the longest primary-input-to-output path."""
    distance = distance_to_outputs(netlist)
    best = 0
    for pi in netlist.input_indices:
        if distance[pi] >= 0:
            best = max(best, distance[pi] + 1)
    return best


def input_cone(netlist: Netlist, nodes: Iterable[int | str]) -> set[int]:
    """Transitive fanin (including the seed nodes) as dense indices."""
    stack = [
        netlist.index_of(node) if isinstance(node, str) else node for node in nodes
    ]
    seen: set[int] = set()
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        stack.extend(netlist.fanin_indices(index))
    return seen


def output_cone(netlist: Netlist, nodes: Iterable[int | str]) -> set[int]:
    """Transitive fanout (including the seed nodes) as dense indices."""
    stack = [
        netlist.index_of(node) if isinstance(node, str) else node for node in nodes
    ]
    seen: set[int] = set()
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        stack.extend(netlist.fanout(index))
    return seen


def support_inputs(netlist: Netlist, nodes: Iterable[int | str]) -> list[int]:
    """Primary inputs in the transitive fanin of ``nodes`` (sorted indices)."""
    cone = input_cone(netlist, nodes)
    return sorted(i for i in netlist.input_indices if i in cone)


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics for a combinational netlist."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_nodes: int
    depth: int
    num_paths: int
    longest_path: int
    gate_counts: Mapping[str, int]

    def __str__(self) -> str:
        gates = ", ".join(f"{k}={v}" for k, v in sorted(self.gate_counts.items()))
        return (
            f"{self.name}: {self.num_inputs} PIs, {self.num_outputs} POs, "
            f"{self.num_gates} gates, depth {self.depth}, "
            f"{self.num_paths} paths (longest {self.longest_path}) [{gates}]"
        )


def analyze(netlist: Netlist) -> CircuitStats:
    """Compute a :class:`CircuitStats` summary for a frozen netlist."""
    depth = max((netlist.level(i) for i in range(len(netlist))), default=0)
    gate_counts = {
        gate_type.name: count
        for gate_type, count in netlist.gate_type_counts().items()
    }
    return CircuitStats(
        name=netlist.name,
        num_inputs=len(netlist.input_names),
        num_outputs=len(netlist.output_names),
        num_gates=netlist.num_gates,
        num_nodes=len(netlist),
        depth=depth,
        num_paths=count_paths(netlist),
        longest_path=longest_path_length(netlist),
        gate_counts=gate_counts,
    )
