"""Gate-level combinational netlist model.

A :class:`Netlist` is a DAG of named *nodes*.  Each node is either a primary
input or the output signal of exactly one gate; gate inputs reference other
nodes by name.  Sequential circuits are handled upstream by the ``.bench``
parser, which extracts the combinational core (flip-flop outputs become
pseudo primary inputs, flip-flop data inputs become pseudo primary outputs).

Netlists are built incrementally through :meth:`Netlist.add_input` /
:meth:`Netlist.add_gate` / :meth:`Netlist.add_output` and then *frozen*.
Freezing checks structural sanity (acyclic, no dangling references) and
computes the derived data every downstream algorithm relies on: topological
order, per-node logic level, and fanout lists.  A frozen netlist is
immutable.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Sequence


class GateType(enum.Enum):
    """Supported gate functions.

    ``INPUT`` marks primary-input nodes (no fanin).  ``CONST0``/``CONST1``
    are tie cells.  All multi-input types accept any fanin count >= 1.
    """

    INPUT = "input"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    CONST0 = "const0"
    CONST1 = "const1"


#: Gate types whose output inverts the sensitized input's transition.
INVERTING_TYPES = frozenset({GateType.NOT, GateType.NAND, GateType.NOR})

#: Gate types with a controlling value (value that alone determines output).
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: Gate types the path-delay-fault engine accepts (XOR must be expanded).
PDF_SUPPORTED_TYPES = frozenset(
    {
        GateType.INPUT,
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
    }
)


class NetlistError(ValueError):
    """Raised for structurally invalid netlists or illegal mutations."""


class Node:
    """One signal in the netlist: a primary input or a gate output."""

    __slots__ = ("name", "gate_type", "fanin", "index")

    def __init__(
        self, name: str, gate_type: GateType, fanin: tuple[str, ...], index: int
    ) -> None:
        self.name = name
        self.gate_type = gate_type
        self.fanin = fanin
        self.index = index

    @property
    def is_input(self) -> bool:
        """True for primary-input nodes."""
        return self.gate_type is GateType.INPUT

    def __repr__(self) -> str:
        if self.is_input:
            return f"Node({self.name!r}, INPUT)"
        args = ", ".join(self.fanin)
        return f"Node({self.name!r} = {self.gate_type.name}({args}))"


class Netlist:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"s27"``).
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._nodes: list[Node] = []
        self._index: dict[str, int] = {}
        self._outputs: list[str] = []
        self._frozen = False
        # Derived data, filled in by freeze().
        self._topo: list[int] = []
        self._level: list[int] = []
        self._fanout: list[tuple[int, ...]] = []
        self._input_indices: list[int] = []
        self._output_indices: list[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise NetlistError("netlist is frozen and cannot be modified")

    def _add_node(self, name: str, gate_type: GateType, fanin: tuple[str, ...]) -> Node:
        self._check_mutable()
        if not name:
            raise NetlistError("node name must be non-empty")
        if name in self._index:
            raise NetlistError(f"duplicate node name: {name!r}")
        node = Node(name, gate_type, fanin, len(self._nodes))
        self._index[name] = node.index
        self._nodes.append(node)
        return node

    def add_input(self, name: str) -> Node:
        """Declare a primary input."""
        return self._add_node(name, GateType.INPUT, ())

    def add_gate(self, name: str, gate_type: GateType, fanin: Sequence[str]) -> Node:
        """Declare a gate whose output signal is ``name``.

        Fanin nodes may be declared later; references are resolved at
        :meth:`freeze` time.
        """
        if gate_type is GateType.INPUT:
            raise NetlistError("use add_input() for primary inputs")
        if gate_type in (GateType.CONST0, GateType.CONST1):
            if fanin:
                raise NetlistError(f"{gate_type.name} takes no fanin")
        elif gate_type in (GateType.BUF, GateType.NOT):
            if len(fanin) != 1:
                raise NetlistError(f"{gate_type.name} takes exactly one fanin")
        elif len(fanin) < 1:
            raise NetlistError(f"{gate_type.name} needs at least one fanin")
        return self._add_node(name, gate_type, tuple(fanin))

    def add_output(self, name: str) -> None:
        """Declare ``name`` (an existing or future node) a primary output."""
        self._check_mutable()
        if name in self._outputs:
            raise NetlistError(f"duplicate primary output: {name!r}")
        self._outputs.append(name)

    def freeze(self) -> "Netlist":
        """Validate the structure and compute derived data.

        Returns ``self`` for chaining.  Raises :class:`NetlistError` on
        dangling references, cycles, or missing outputs.
        """
        if self._frozen:
            return self
        for node in self._nodes:
            for ref in node.fanin:
                if ref not in self._index:
                    raise NetlistError(
                        f"node {node.name!r} references undeclared signal {ref!r}"
                    )
        for out in self._outputs:
            if out not in self._index:
                raise NetlistError(f"primary output {out!r} is not a declared node")
        if not self._outputs:
            raise NetlistError("netlist declares no primary outputs")

        n = len(self._nodes)
        fanout_lists: list[list[int]] = [[] for _ in range(n)]
        indegree = [0] * n
        for node in self._nodes:
            indegree[node.index] = len(node.fanin)
            for ref in node.fanin:
                fanout_lists[self._index[ref]].append(node.index)

        # Kahn topological sort; also assigns levels (inputs at level 0).
        level = [0] * n
        ready = [i for i in range(n) if indegree[i] == 0]
        topo: list[int] = []
        remaining = indegree[:]
        while ready:
            current = ready.pop()
            topo.append(current)
            for succ in fanout_lists[current]:
                if level[current] + 1 > level[succ]:
                    level[succ] = level[current] + 1
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    ready.append(succ)
        if len(topo) != n:
            cyclic = [self._nodes[i].name for i in range(n) if remaining[i] > 0]
            raise NetlistError(f"netlist contains a combinational cycle: {cyclic[:5]}")

        self._topo = topo
        self._level = level
        self._fanout = [tuple(sorted(f)) for f in fanout_lists]
        self._input_indices = [
            node.index for node in self._nodes if node.is_input
        ]
        self._output_indices = [self._index[out] for out in self._outputs]
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has run."""
        return self._frozen

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise NetlistError("netlist must be frozen first")

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def node(self, name: str) -> Node:
        """Return the node named ``name``."""
        try:
            return self._nodes[self._index[name]]
        except KeyError:
            raise NetlistError(f"no such node: {name!r}") from None

    def node_at(self, index: int) -> Node:
        """Return the node with dense index ``index``."""
        return self._nodes[index]

    def index_of(self, name: str) -> int:
        """Return the dense index of node ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise NetlistError(f"no such node: {name!r}") from None

    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes in declaration order."""
        return tuple(self._nodes)

    @property
    def input_names(self) -> tuple[str, ...]:
        """Primary-input names in declaration order."""
        return tuple(node.name for node in self._nodes if node.is_input)

    @property
    def output_names(self) -> tuple[str, ...]:
        """Primary-output names in declaration order."""
        return tuple(self._outputs)

    @property
    def input_indices(self) -> tuple[int, ...]:
        """Dense indices of primary inputs (frozen netlists only)."""
        self._require_frozen()
        return tuple(self._input_indices)

    @property
    def output_indices(self) -> tuple[int, ...]:
        """Dense indices of primary outputs (frozen netlists only)."""
        self._require_frozen()
        return tuple(self._output_indices)

    @property
    def topo_order(self) -> tuple[int, ...]:
        """Node indices in topological (fanin-before-fanout) order."""
        self._require_frozen()
        return tuple(self._topo)

    def level(self, name_or_index: str | int) -> int:
        """Logic level of a node (primary inputs are level 0)."""
        self._require_frozen()
        if isinstance(name_or_index, str):
            name_or_index = self.index_of(name_or_index)
        return self._level[name_or_index]

    def fanout(self, name_or_index: str | int) -> tuple[int, ...]:
        """Indices of the gates driven by a node."""
        self._require_frozen()
        if isinstance(name_or_index, str):
            name_or_index = self.index_of(name_or_index)
        return self._fanout[name_or_index]

    def fanin_indices(self, name_or_index: str | int) -> tuple[int, ...]:
        """Dense indices of a node's fanin signals."""
        if isinstance(name_or_index, str):
            name_or_index = self.index_of(name_or_index)
        node = self._nodes[name_or_index]
        return tuple(self._index[ref] for ref in node.fanin)

    @property
    def num_gates(self) -> int:
        """Number of non-input nodes."""
        return len(self._nodes) - len(self.input_names)

    def gate_type_counts(self) -> dict[GateType, int]:
        """Histogram of gate types (excluding INPUT)."""
        counts: dict[GateType, int] = {}
        for node in self._nodes:
            if node.is_input:
                continue
            counts[node.gate_type] = counts.get(node.gate_type, 0) + 1
        return counts

    def is_pdf_ready(self) -> bool:
        """True when every gate type is supported by the PDF engine."""
        return all(node.gate_type in PDF_SUPPORTED_TYPES for node in self._nodes
                   if node.gate_type not in (GateType.CONST0, GateType.CONST1))

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "building"
        return (
            f"Netlist({self.name!r}, inputs={len(self.input_names)}, "
            f"gates={self.num_gates}, outputs={len(self._outputs)}, {state})"
        )


def build_netlist(
    name: str,
    inputs: Iterable[str],
    gates: Iterable[tuple[str, GateType, Sequence[str]]],
    outputs: Iterable[str],
) -> Netlist:
    """Convenience one-shot constructor returning a frozen netlist."""
    netlist = Netlist(name)
    for pin in inputs:
        netlist.add_input(pin)
    for gate_name, gate_type, fanin in gates:
        netlist.add_gate(gate_name, gate_type, fanin)
    for pout in outputs:
        netlist.add_output(pout)
    return netlist.freeze()
