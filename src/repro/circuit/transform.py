"""Netlist transformations.

* :func:`expand_xor` -- rewrite XOR/XNOR gates into AND/OR/NOT logic.  The
  robust sensitization conditions of the path-delay-fault model are
  conjunctive (a fixed set of line values, Section 2.1 of the paper), but a
  robust side-input condition through an XOR gate is *disjunctive* (the side
  input must be stable at either 0 or 1).  Expanding XOR into AND/OR/NOT
  logic before path analysis is the standard resolution and the one this
  library uses; see DESIGN.md.
* :func:`strip_unreachable` -- drop logic that cannot reach any primary
  output (such logic would otherwise produce partial paths that can never
  complete).
* :func:`renamed` -- create a copy with a new circuit name.
"""

from __future__ import annotations

from .netlist import GateType, Netlist

__all__ = ["expand_xor", "strip_unreachable", "renamed", "pdf_ready"]


def _fresh(base: str, suffix: str, taken: set[str]) -> str:
    """Pick an unused node name derived from ``base``."""
    candidate = f"{base}{suffix}"
    counter = 0
    while candidate in taken:
        counter += 1
        candidate = f"{base}{suffix}_{counter}"
    taken.add(candidate)
    return candidate


def expand_xor(netlist: Netlist, name: str | None = None) -> Netlist:
    """Return a copy with every XOR/XNOR replaced by AND/OR/NOT logic.

    A two-input XOR ``y = a ^ b`` becomes::

        na = NOT(a); nb = NOT(b)
        t0 = AND(a, nb); t1 = AND(na, b)
        y  = OR(t0, t1)

    Wider XOR gates are first decomposed into a balanced tree of two-input
    XORs.  XNOR uses the complementary product terms ``AND(a, b)`` /
    ``AND(na, nb)``.  The output node keeps its original name, so primary
    outputs and fanout references are unaffected.
    """
    out = Netlist(name or netlist.name)
    taken = {node.name for node in netlist.nodes}

    def emit_xor2(result: str, a: str, b: str, invert: bool) -> None:
        not_a = _fresh(result, "__na", taken)
        not_b = _fresh(result, "__nb", taken)
        term0 = _fresh(result, "__t0", taken)
        term1 = _fresh(result, "__t1", taken)
        out.add_gate(not_a, GateType.NOT, (a,))
        out.add_gate(not_b, GateType.NOT, (b,))
        if invert:  # XNOR: a.b + na.nb
            out.add_gate(term0, GateType.AND, (a, b))
            out.add_gate(term1, GateType.AND, (not_a, not_b))
        else:  # XOR: a.nb + na.b
            out.add_gate(term0, GateType.AND, (a, not_b))
            out.add_gate(term1, GateType.AND, (not_a, b))
        out.add_gate(result, GateType.OR, (term0, term1))

    def emit_xor_tree(result: str, fanin: tuple[str, ...], invert: bool) -> None:
        signals = list(fanin)
        if len(signals) == 1:
            out.add_gate(result, GateType.NOT if invert else GateType.BUF, signals)
            return
        # Reduce pairwise until two signals remain, then emit the root.
        while len(signals) > 2:
            level: list[str] = []
            for i in range(0, len(signals) - 1, 2):
                inner = _fresh(result, f"__x{len(taken)}", taken)
                emit_xor2(inner, signals[i], signals[i + 1], invert=False)
                level.append(inner)
            if len(signals) % 2 == 1:
                level.append(signals[-1])
            signals = level
        emit_xor2(result, signals[0], signals[1], invert=invert)

    for node in netlist.nodes:
        if node.is_input:
            out.add_input(node.name)
        elif node.gate_type is GateType.XOR:
            emit_xor_tree(node.name, node.fanin, invert=False)
        elif node.gate_type is GateType.XNOR:
            emit_xor_tree(node.name, node.fanin, invert=True)
        else:
            out.add_gate(node.name, node.gate_type, node.fanin)
    for signal in netlist.output_names:
        out.add_output(signal)
    return out.freeze()


def strip_unreachable(netlist: Netlist, name: str | None = None) -> Netlist:
    """Return a copy without nodes that cannot reach any primary output.

    Primary inputs are always kept (removing circuit pins would change the
    interface); only internal gates are dropped.
    """
    from .analysis import distance_to_outputs

    distance = distance_to_outputs(netlist)
    out = Netlist(name or netlist.name)
    for node in netlist.nodes:
        if node.is_input:
            out.add_input(node.name)
        elif distance[node.index] >= 0:
            out.add_gate(node.name, node.gate_type, node.fanin)
    for signal in netlist.output_names:
        out.add_output(signal)
    return out.freeze()


def renamed(netlist: Netlist, name: str) -> Netlist:
    """Return a structurally identical copy with a different circuit name."""
    out = Netlist(name)
    for node in netlist.nodes:
        if node.is_input:
            out.add_input(node.name)
        else:
            out.add_gate(node.name, node.gate_type, node.fanin)
    for signal in netlist.output_names:
        out.add_output(signal)
    return out.freeze()


def pdf_ready(netlist: Netlist) -> Netlist:
    """Return a netlist the path-delay-fault engine accepts.

    Expands XOR/XNOR when present; otherwise returns the input unchanged.
    """
    if netlist.is_pdf_ready():
        return netlist
    return expand_xor(netlist)
